//! The on-disk checkpoint store — a segmented storage engine.
//!
//! One store per recorded run. Layout under the root directory:
//!
//! ```text
//! root/
//!   MANIFEST              one line per checkpoint:
//!                         "<block_id>\t<seq>\t<location>\t<raw>\t<crc32>\t<line_crc32>"
//!                         location is either a legacy file name under ckpt/
//!                         (v1 stores) or "@<seg>:<offset>:<len>[:r | :d<base>:<depth>]"
//!                         — a payload slice inside a segment (":r" = stored
//!                         uncompressed; ":d<base>:<depth>" = a delta frame
//!                         against the same block's seq <base>, at chain
//!                         depth <depth>). The delta suffix is a strict
//!                         extension of the v2 grammar: v2 lines parse
//!                         unchanged. line_crc32 covers the first five
//!                         fields, so a torn append is detectable.
//!   seg/<NNNNNNNN>.seg    append-only segment files packing many checkpoint
//!                         payloads (the write path for all new checkpoints)
//!   ckpt/<block>.<seq>    legacy file-per-checkpoint payloads (still
//!                         readable; compaction migrates them into segments)
//!   artifacts/<name>      named artifacts (recorded source, record logs)
//! ```
//!
//! # Segment format
//!
//! ```text
//! segment   := magic "FLRSEG1\n" entry* [footer trailer]
//! entry     := block_len:u16 seq:u64 raw:u64 comp:u32 crc:u32 flags:u8
//!              block_id payload            (all integers little-endian)
//! footer    := count:u32 { block_len:u16 block_id seq:u64 offset:u64
//!                          raw:u64 comp:u32 crc:u32 flags:u8 }*
//! trailer   := footer_len:u64 footer_crc:u32 magic "FLRSEGF1"
//! ```
//!
//! `flags` bit 0 set means the payload is stored raw (compression did not
//! shrink it); bit 1 set means the payload is a [`crate::delta`] frame
//! (whose own header carries the base seq, chain depth, and base CRC, so
//! segments stay self-describing). `crc` is always the CRC32 of the fully
//! reconstructed *uncompressed* payload.
//! The footer is written when a segment is sealed (rolled over or the store
//! is dropped cleanly) and makes a segment self-describing: the index can be
//! rebuilt from footers (or, failing that, an entry-header scan) without the
//! MANIFEST. The MANIFEST remains the authoritative index; an unsealed
//! segment (crash before roll) is still fully readable through it.
//!
//! # Delta chains
//!
//! Successive versions of one block differ only slightly (one optimizer
//! step), so [`WriteBatch::stage`] stores a version as a [`crate::delta`]
//! frame against the block's previous payload whenever that earns ≥ 2×
//! over storing it raw: XOR against the base, byte-shuffle into f32
//! lanes, zero-RLE, LZ. The store keeps a per-block last-payload cache
//! ([`Bytes`], refcounted) feeding the encode side, and full keyframes
//! every [`StoreOptions::delta_keyframe_interval`] versions bound every
//! restore to a short chain walk. Reads resolve chains iteratively with a
//! per-block restore cache (sequential replay restores pay O(1) links
//! each, not O(depth)); every level is CRC-verified, and each frame's
//! recorded base CRC is checked against the live base entry so a re-put
//! base fails loudly instead of decoding garbage. Open-time recovery
//! cascade-drops delta entries whose chain base is gone (their data is
//! unreachable — the same contract as a missing segment), and compaction
//! re-encodes delta-bearing blocks payload-by-payload, folding chains
//! into fresh keyframes when the current policy no longer supports them
//! ([`CompactionReport::chains_folded`]).
//!
//! # Read path: zero-copy `get_bytes`
//!
//! [`CheckpointStore::get_bytes`] resolves `(block, seq)` through a
//! *sharded* in-memory index (16 shards, read-write locks, borrowed-key
//! lookups — no allocation and no global lock on the read hot path), maps
//! the segment into a shared refcounted buffer (one `fs::read` per segment,
//! cached and shared by every reader), and returns a [`Bytes`] slice of that
//! buffer. Raw-stored payloads are returned without any copy at all;
//! compressed payloads pay exactly the decompression. The old
//! [`CheckpointStore::get`] survives as a thin `Vec<u8>` compatibility
//! wrapper. Every read is CRC-verified, so corruption surfaces as
//! [`StoreError::Corrupt`] instead of silent replay anomalies.
//!
//! # Open, recovery, and repair
//!
//! Opening a store reads the MANIFEST once and stats each *segment* once —
//! never one `stat` per checkpoint (the v1 engine statted every data file).
//! Entries whose data is gone (a missing legacy file or a missing segment)
//! are dropped from the index, surfaced in a [`RecoveryReport`], and the
//! MANIFEST is rewritten so byte totals stay truthful instead of silently
//! undercounting. Unreferenced ("orphaned") segments — the visible residue
//! of a crash between a compaction's rename and its manifest swap — are
//! reported and left invisible to the index (the next compaction reclaims
//! their disk space; open itself never deletes files, so a read-only open
//! cannot destroy a segment another process is mid-commit into); orphaned
//! legacy files are reported but left in
//! place. A segment that is present but too short for an entry it should
//! contain stays indexed and fails loudly at read time (truncation is
//! corruption, not a skipped checkpoint).
//!
//! # Group commit and the `WriteBatch` durability contract
//!
//! All writes go through [`WriteBatch`]: payloads are *staged* (compressed
//! and CRC-stamped, no I/O), then *committed* together. A commit appends
//! every staged payload to the active segment in **one `write_all`**, then
//! appends all manifest lines in one `write_all` to a persistent kept-open
//! `O_APPEND` handle. Under [`Durability::GroupCommit`] the segment is
//! fsynced *before* the manifest append, then the `seg/` directory, the
//! manifest, and the store root once per batch — the classic group-commit
//! amortization. The ordering (data before manifest) means a manifest line
//! is only ever durable after the payload it describes, so a crash anywhere
//! in a commit leaves a *prefix of whole checkpoints*: complete manifest
//! lines point at complete payload slices, the single torn tail line (if
//! the cut landed inside the batched append) is detected by its line CRC
//! and dropped on recovery, and a torn segment tail past the last durable
//! manifest line is unreferenced dead space that the next compaction
//! reclaims. Reopened stores never append to an existing segment — each
//! writer session starts a fresh one — so a torn tail can never corrupt
//! later offsets.
//!
//! Under [`Durability::Buffered`] (the default) no fsync is issued on the
//! put path: the same ordering is *issued*, but the OS may persist pages
//! out of order, so a crash can durably keep a manifest line whose payload
//! bytes were lost with the segment tail. Such an entry fails loudly as
//! [`StoreError::Corrupt`] at read time — the same contract the v1 engine
//! had for a torn data file — and is deliberately *not* dropped at open: a
//! present-but-short segment is indistinguishable from real truncation
//! corruption, and converting corruption into silent re-execution is the
//! one thing this store must never do. Record under
//! [`Durability::GroupCommit`] when checkpoints must survive power loss.
//!
//! # Compaction / GC
//!
//! Superseded re-puts and dropped entries leave dead bytes in old segments.
//! [`CheckpointStore::compact`] rewrites every *live* payload into fresh,
//! sealed segments (written to temp siblings, fsynced, renamed in), swaps
//! the MANIFEST atomically, and only then deletes the old segments and any
//! migrated legacy files — so a crash at any byte leaves either the
//! pre-compaction or the post-compaction view, never a store with a live
//! checkpoint missing. Legacy v1 stores are migrated into segments by the
//! same pass, which is the upgrade path for old-format data.

use crate::compress::{
    compress_auto_effort, decompress_any, DEFAULT_EFFORT, MAX_EFFORT, MIN_EFFORT,
};
use crate::dedup::{BlobMeta, DedupIndex, Interned};
use crate::delta;
use crate::mmap::MmapRegion;
use bytes::{Buf, Bytes};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::fs;
use std::hash::{Hash, Hasher};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Store failure.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// No checkpoint for the requested block/seq.
    Missing {
        /// Requested block id.
        block_id: String,
        /// Requested sequence number.
        seq: u64,
    },
    /// Entry exists but its payload fails CRC, bounds, or decompression.
    Corrupt {
        /// Affected block id.
        block_id: String,
        /// Affected sequence number.
        seq: u64,
        /// Detail.
        detail: String,
    },
    /// Malformed manifest.
    BadManifest(String),
    /// Write attempted on a store opened read-only.
    ReadOnly,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Missing { block_id, seq } => {
                write!(f, "no checkpoint for block {block_id:?} seq {seq}")
            }
            StoreError::Corrupt {
                block_id,
                seq,
                detail,
            } => {
                write!(f, "corrupt checkpoint {block_id:?}.{seq}: {detail}")
            }
            StoreError::BadManifest(d) => write!(f, "bad manifest: {d}"),
            StoreError::ReadOnly => write!(f, "store opened read-only"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Metadata of one stored checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptMeta {
    /// SkipBlock id.
    pub block_id: String,
    /// Execution sequence number of this block (0-based).
    pub seq: u64,
    /// Stored (compressed, delta-framed, or raw when incompressible)
    /// payload size.
    pub stored_bytes: u64,
    /// Uncompressed payload size.
    pub raw_bytes: u64,
    /// Delta-chain depth this checkpoint landed at (0 = full keyframe).
    pub chain_depth: u32,
}

/// When the put path reaches stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Writes are buffered by the OS; no fsync on the put path (the
    /// default — record-phase overhead is the paper's protected quantity).
    #[default]
    Buffered,
    /// Each [`WriteBatch::commit`] fsyncs its segment appends, then the
    /// manifest and its directory once per batch. Durable up to the last
    /// committed batch, at an amortized cost of one barrier per batch
    /// instead of one per checkpoint.
    GroupCommit,
}

/// On-disk write layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreFormat {
    /// Pack checkpoints into large append-only segment files (the default
    /// engine; what every new store should use).
    #[default]
    Segmented,
    /// One file per checkpoint under `ckpt/` — the v1 layout, kept
    /// writable for compatibility testing and before/after benchmarks.
    FilePerCheckpoint,
}

/// Which LZ encoder the plain (non-delta) stage path uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compressor {
    /// Hash-chain match finder + parallel chunked frames for large
    /// payloads — the production pipeline.
    #[default]
    Pipeline,
    /// The pre-delta single-threaded naive-scan encoder
    /// ([`crate::compress::compress_reference`]), kept writable for
    /// before/after benchmarks (`bench_compress_json`) the same way
    /// [`StoreFormat::FilePerCheckpoint`] is.
    Reference,
}

/// How a cold segment's bytes reach the in-memory buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmentRead {
    /// Memory-map the segment file (Linux raw-syscall backend); the kernel
    /// faults in only the pages a read actually touches, and the buffer
    /// stays reclaimable page cache instead of pinned heap. Falls back to
    /// [`SegmentRead::WholeFile`] automatically on platforms without a
    /// mapping backend.
    #[default]
    Mmap,
    /// Read the whole segment file into heap (`fs::read`) — the pre-tier
    /// engine's behavior, kept selectable for before/after benchmarks.
    WholeFile,
}

/// Open-time knobs. [`StoreOptions::default`] is a segmented, buffered
/// store with an 8 MiB segment roll target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Put-path durability policy.
    pub durability: Durability,
    /// Write layout for new checkpoints (either way, both layouts stay
    /// readable).
    pub format: StoreFormat,
    /// Roll the active segment once it grows past this many bytes.
    pub segment_target_bytes: u64,
    /// Inspect without mutating anything on disk: open-time recovery only
    /// *reports* (no manifest repair — clobbering the MANIFEST inode would
    /// sever a concurrent writer process's kept-open appender), and every
    /// write API returns [`StoreError::ReadOnly`]. This is what operator
    /// tooling (`flor store stats`) uses to stay safe against a store
    /// another process is recording into.
    pub read_only: bool,
    /// Delta-chain keyframe interval K: a checkpoint may be stored as a
    /// [`crate::delta`] frame against the previous version of the same
    /// block only while its chain depth stays below K, so every K-th
    /// version is a full keyframe and a restore resolves at most K − 1
    /// links. `0` disables delta encoding entirely (every checkpoint is a
    /// keyframe — the pre-delta pipeline).
    pub delta_keyframe_interval: u32,
    /// Payloads below this size are never delta-encoded (the frame header
    /// and the chain walk aren't worth it, and tiny payloads compress or
    /// store raw just fine).
    pub delta_min_bytes: u64,
    /// LZ encoder for the plain (non-delta) stage path.
    pub compressor: Compressor,
    /// How cold segment buffers are faulted into memory.
    pub segment_read: SegmentRead,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            durability: Durability::default(),
            format: StoreFormat::default(),
            segment_target_bytes: DEFAULT_SEGMENT_TARGET_BYTES,
            read_only: false,
            delta_keyframe_interval: DEFAULT_DELTA_KEYFRAME_INTERVAL,
            delta_min_bytes: DEFAULT_DELTA_MIN_BYTES,
            compressor: Compressor::default(),
            segment_read: SegmentRead::default(),
        }
    }
}

/// Default segment roll threshold.
pub const DEFAULT_SEGMENT_TARGET_BYTES: u64 = 8 * 1024 * 1024;
/// Default delta keyframe interval (chain length bound).
pub const DEFAULT_DELTA_KEYFRAME_INTERVAL: u32 = 8;
/// Default minimum payload size for delta encoding.
pub const DEFAULT_DELTA_MIN_BYTES: u64 = 1024;
/// Depth buckets in [`StoreStats::chain_depth_hist`] (deeper chains land
/// in the last bucket).
pub const CHAIN_DEPTH_BUCKETS: usize = 16;
/// Byte budget for the per-block last-reconstructed-payload cache that
/// makes sequential chain restores O(1) links each.
const RESTORE_CACHE_BUDGET_BYTES: u64 = 256 << 20;
/// Byte budget for the per-block last-committed-payload write cache (the
/// delta base source). An evicted block's next stage falls back to
/// reading the newest committed version from the index — chains survive,
/// the handle just stops pinning raw payloads it may never need again.
const DELTA_WRITE_BUDGET_BYTES: u64 = 256 << 20;
/// After this many consecutive failed delta-encode attempts for a block,
/// the stage path stops probing (and stops copying payloads into the base
/// cache) for it — a from-scratch training run that rewrites every
/// checkpoint must not pay an XOR pass plus a payload memcpy per submit
/// for deltas that never materialize.
const DELTA_REJECT_THRESHOLD: u32 = 4;
/// A back-off'd block re-probes once per this many sequence numbers, so a
/// regime change (training → fine-tuning) resumes chaining.
const DELTA_RETRY_PERIOD: u64 = 8;

const SEGMENT_MAGIC: &[u8; 8] = b"FLRSEG1\n";
const FOOTER_MAGIC: &[u8; 8] = b"FLRSEGF1";
/// Fixed part of a segment entry header (block id and payload follow).
const ENTRY_HEADER_BYTES: u64 = 2 + 8 + 8 + 4 + 4 + 1;
/// Trailer = footer_len (8) + footer_crc (4) + magic (8).
const TRAILER_BYTES: u64 = 20;
/// Payload stored uncompressed (compression did not shrink it).
const FLAG_RAW: u8 = 1;
/// Payload stored as a delta frame (the frame header carries the base
/// seq/depth, so segments stay self-describing).
const FLAG_DELTA: u8 = 2;
/// Index shards; reads lock exactly one, with no allocation.
const SHARDS: usize = 16;
/// Byte budget for cached whole-segment read buffers, per store handle
/// (a count cap would scale with `segment_target_bytes` and let one
/// handle pin arbitrarily much memory). Mmap buffers are charged at their
/// mapped length too — the budget bounds address-space use, not just heap.
const SEGMENT_CACHE_BUDGET_BYTES: u64 = 256 << 20;
/// Keyframes below this stored size skip content-addressed dedup: the
/// blob-file overhead plus the index entry would exceed the savings, and
/// tiny payloads are exactly the ones delta/compression already handle.
const DEDUP_MIN_BYTES: usize = 1024;
/// Pointer file (store root) naming the shared dedup arena directory.
const DEDUP_POINTER_FILE: &str = "DEDUP";
/// Pointer file (store root) naming the cold-tier spool directory.
const SPOOL_POINTER_FILE: &str = "SPOOL";
/// Artifact persisting the auto-tuned compression effort across reopens.
const EFFORT_ARTIFACT: &str = "compression_effort.txt";

/// CRC32 (IEEE, reflected) — hand-rolled so corruption detection has no
/// external dependency. Slicing-by-8: eight table lookups per 8 input
/// bytes instead of one per byte — the put path CRCs every payload, so
/// this sits on the record hot path (~5× over the byte-at-a-time loop,
/// bit-identical results).
pub fn crc32(data: &[u8]) -> u32 {
    // Build the eight tables once.
    static TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();
    let t = TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        let mut t0 = [0u32; 256];
        for (i, slot) in t0.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t[0] = t0;
        for k in 1..8usize {
            let prev_row = t[k - 1];
            for (slot, &prev) in t[k].iter_mut().zip(prev_row.iter()) {
                *slot = (prev >> 8) ^ t0[(prev & 0xff) as usize];
            }
        }
        t
    });
    let mut c = !0u32;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes(ch[0..4].try_into().expect("4 bytes")) ^ c;
        let hi = u32::from_le_bytes(ch[4..8].try_into().expect("4 bytes"));
        c = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// The pre-PR byte-at-a-time CRC32 — bit-identical to [`crc32`], kept as
/// the differential oracle and as part of the [`Compressor::Reference`]
/// pipeline so before/after benchmarks measure the true pre-PR submit
/// cost.
pub fn crc32_reference(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Where one checkpoint's stored payload lives.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Location {
    /// Legacy v1: a whole file under `ckpt/`, always compressed.
    File(String),
    /// A slice of a segment file.
    Segment {
        /// Segment id (file `seg/<id:08>.seg`).
        seg: u64,
        /// Payload byte offset within the segment file.
        offset: u64,
        /// Stored payload length.
        len: u32,
        /// Stored uncompressed (zero-copy readable).
        raw_stored: bool,
        /// `Some((base_seq, depth))` when the stored bytes are a
        /// [`crate::delta`] frame against the same block's `base_seq`
        /// version; `depth` is this entry's chain depth (keyframes are
        /// `None`). Mutually exclusive with `raw_stored`.
        delta: Option<(u64, u32)>,
    },
    /// A content-addressed reference into the shared dedup arena (MANIFEST
    /// v4): the stored bytes live in a blob keyed by `hash`, shared with
    /// every other run that checkpointed identical content.
    Dup {
        /// FNV-1a 64 content address of the stored representation.
        hash: u64,
        /// Same contract as [`Location::Segment::delta`]: the blob holds a
        /// delta frame against the same block's `base_seq` version.
        delta: Option<(u64, u32)>,
    },
}

impl Location {
    /// Renders the manifest `location` field.
    fn render(&self) -> String {
        match self {
            Location::File(f) => f.clone(),
            Location::Segment {
                seg,
                offset,
                len,
                raw_stored,
                delta,
            } => match (raw_stored, delta) {
                (true, _) => format!("@{seg}:{offset}:{len}:r"),
                (false, Some((base, depth))) => format!("@{seg}:{offset}:{len}:d{base}:{depth}"),
                (false, None) => format!("@{seg}:{offset}:{len}"),
            },
            Location::Dup { hash, delta } => match delta {
                Some((base, depth)) => format!("@dup:{hash:016x}:d{base}:{depth}"),
                None => format!("@dup:{hash:016x}"),
            },
        }
    }

    /// Parses a manifest `location` field. Anything that is not a strict
    /// `@<seg>:<offset>:<len>[:r | :d<base>:<depth>]` is a legacy file
    /// name (legacy names always contain a `.`-separated seq suffix, so
    /// they can never parse as a segment slice). The delta suffix is a
    /// strict extension of the v2 grammar: v2 lines parse unchanged.
    fn parse(s: &str) -> Location {
        if let Some(rest) = s.strip_prefix("@dup:") {
            // MANIFEST v4: `@dup:<hash:016x>[:d<base>:<depth>]`. Malformed
            // variants fall through to the legacy-file arm, same as every
            // other grammar extension.
            let parts: Vec<&str> = rest.split(':').collect();
            let delta = match parts.as_slice() {
                [_] => Some(None),
                [_, d, depth] if d.starts_with('d') && d.len() > 1 => {
                    match (d[1..].parse::<u64>(), depth.parse::<u32>()) {
                        (Ok(base), Ok(depth)) => Some(Some((base, depth))),
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(delta) = delta {
                if let Ok(hash) = u64::from_str_radix(parts[0], 16) {
                    return Location::Dup { hash, delta };
                }
            }
        }
        if let Some(rest) = s.strip_prefix('@') {
            let parts: Vec<&str> = rest.split(':').collect();
            let delta = match parts.as_slice() {
                [_, _, _] => Some(None),
                [_, _, _, "r"] => Some(None),
                [_, _, _, d, depth] if d.starts_with('d') && d.len() > 1 => {
                    match (d[1..].parse::<u64>(), depth.parse::<u32>()) {
                        (Ok(base), Ok(depth)) => Some(Some((base, depth))),
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(delta) = delta {
                if let (Ok(seg), Ok(offset), Ok(len)) =
                    (parts[0].parse(), parts[1].parse(), parts[2].parse())
                {
                    return Location::Segment {
                        seg,
                        offset,
                        len,
                        raw_stored: parts.len() == 4 && parts[3] == "r",
                        delta,
                    };
                }
            }
        }
        Location::File(s.to_string())
    }

    /// The delta chain link of this location, if any.
    fn delta_link(&self) -> Option<(u64, u32)> {
        match self {
            Location::Segment { delta, .. } | Location::Dup { delta, .. } => *delta,
            Location::File(_) => None,
        }
    }
}

/// Index entry for one stored checkpoint.
#[derive(Debug, Clone)]
struct IndexEntry {
    loc: Location,
    /// Uncompressed payload length.
    raw: u64,
    /// CRC32 of the uncompressed payload.
    crc: u32,
    /// Stored payload length (compressed size, or raw size when stored
    /// uncompressed; for legacy files, the file size).
    stored: u64,
}

/// One record of a segment footer (and of the in-memory pending footer of
/// the active segment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentIndexEntry {
    /// Block id.
    pub block_id: String,
    /// Sequence number.
    pub seq: u64,
    /// Payload offset within the segment file.
    pub offset: u64,
    /// Uncompressed payload length.
    pub raw: u64,
    /// Stored payload length.
    pub stored: u32,
    /// CRC32 of the uncompressed payload.
    pub crc: u32,
    /// True when the payload is stored uncompressed.
    pub raw_stored: bool,
    /// True when the payload is a delta frame (the frame's own header
    /// carries the base seq, depth, and base CRC).
    pub delta_stored: bool,
}

fn entry_flags(raw_stored: bool, delta_stored: bool) -> u8 {
    (if raw_stored { FLAG_RAW } else { 0 }) | (if delta_stored { FLAG_DELTA } else { 0 })
}

fn encode_footer(recs: &[SegmentIndexEntry]) -> Vec<u8> {
    let mut body = Vec::with_capacity(16 + recs.len() * 40);
    body.extend_from_slice(&(recs.len() as u32).to_le_bytes());
    for r in recs {
        body.extend_from_slice(&(r.block_id.len() as u16).to_le_bytes());
        body.extend_from_slice(r.block_id.as_bytes());
        body.extend_from_slice(&r.seq.to_le_bytes());
        body.extend_from_slice(&r.offset.to_le_bytes());
        body.extend_from_slice(&r.raw.to_le_bytes());
        body.extend_from_slice(&r.stored.to_le_bytes());
        body.extend_from_slice(&r.crc.to_le_bytes());
        body.push(entry_flags(r.raw_stored, r.delta_stored));
    }
    let crc = crc32(&body);
    let len = body.len() as u64;
    body.extend_from_slice(&len.to_le_bytes());
    body.extend_from_slice(&crc.to_le_bytes());
    body.extend_from_slice(FOOTER_MAGIC);
    body
}

/// Reads the footer index of a sealed segment file. Returns `Ok(None)` for
/// an unsealed (footerless) segment; errors only on I/O or a corrupt
/// footer. The footer makes segments self-describing — the index can be
/// rebuilt from it without the MANIFEST.
pub fn read_segment_footer(path: &Path) -> Result<Option<Vec<SegmentIndexEntry>>, StoreError> {
    let data = fs::read(path)?;
    parse_segment_footer(&data)
}

fn parse_segment_footer(data: &[u8]) -> Result<Option<Vec<SegmentIndexEntry>>, StoreError> {
    let bad = |d: &str| StoreError::BadManifest(format!("segment footer: {d}"));
    if data.len() < TRAILER_BYTES as usize + SEGMENT_MAGIC.len()
        || &data[data.len() - 8..] != FOOTER_MAGIC
    {
        return Ok(None);
    }
    let t = data.len() - TRAILER_BYTES as usize;
    let footer_len = u64::from_le_bytes(data[t..t + 8].try_into().expect("8 bytes")) as usize;
    let footer_crc = u32::from_le_bytes(data[t + 8..t + 12].try_into().expect("4 bytes"));
    if footer_len > t {
        return Err(bad("declared length exceeds file"));
    }
    let body = &data[t - footer_len..t];
    if crc32(body) != footer_crc {
        return Err(bad("crc mismatch"));
    }
    let mut recs = Vec::new();
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], StoreError> {
        let s = body
            .get(*pos..*pos + n)
            .ok_or_else(|| StoreError::BadManifest("segment footer: truncated body".into()))?;
        *pos += n;
        Ok(s)
    };
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
    for _ in 0..count {
        let block_len =
            u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes")) as usize;
        let block_id = String::from_utf8(take(&mut pos, block_len)?.to_vec())
            .map_err(|_| bad("non-UTF-8 block id"))?;
        let seq = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
        let offset = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
        let raw = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8 bytes"));
        let stored = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        let flags = take(&mut pos, 1)?[0];
        recs.push(SegmentIndexEntry {
            block_id,
            seq,
            offset,
            raw,
            stored,
            crc,
            raw_stored: flags & FLAG_RAW != 0,
            delta_stored: flags & FLAG_DELTA != 0,
        });
    }
    Ok(Some(recs))
}

/// One checkpoint whose data could not be found at open.
#[derive(Debug, Clone)]
pub struct MissingEntry {
    /// Block id.
    pub block_id: String,
    /// Sequence number.
    pub seq: u64,
    /// The manifest location that had no backing data.
    pub location: String,
}

/// What open-time recovery found and did. The v1 engine silently recorded
/// `stored = 0` for entries whose data file had vanished; the segmented
/// engine drops them, repairs the manifest, and tells you.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Manifest entries dropped because their data (legacy file or whole
    /// segment) is gone.
    pub missing_entries: Vec<MissingEntry>,
    /// Segment ids no manifest line references (the residue of a crashed
    /// compaction, or of a batch whose manifest append never became
    /// durable). Invisible to the index; their disk space is reclaimed by
    /// the next [`CheckpointStore::compact`] — open never deletes files,
    /// so a read-only open of a store another process is writing cannot
    /// destroy an in-flight segment.
    pub orphaned_segments: Vec<u64>,
    /// Legacy `ckpt/` files no manifest line references (reported, left in
    /// place).
    pub orphaned_files: Vec<String>,
    /// Stale temp files in `seg/` (reclaimed by the next compaction).
    pub stale_temp_files: u64,
    /// A torn (unterminated, CRC-failing) final manifest line was dropped.
    pub dropped_torn_tail: bool,
    /// The manifest was rewritten to match the recovered index.
    pub repaired_manifest: bool,
    /// A repair was needed but skipped because the store is open
    /// read-only (the next writable open performs it).
    pub repair_pending: bool,
}

impl RecoveryReport {
    /// True when open found nothing to recover or repair.
    pub fn is_clean(&self) -> bool {
        self.missing_entries.is_empty()
            && self.orphaned_segments.is_empty()
            && self.orphaned_files.is_empty()
            && self.stale_temp_files == 0
            && !self.dropped_torn_tail
            && !self.repaired_manifest
            && !self.repair_pending
    }
}

/// Aggregate counters for `flor store stats` and the registry surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live checkpoints in the index.
    pub entries: u64,
    /// Live checkpoints stored in segments.
    pub segment_entries: u64,
    /// Live checkpoints still in legacy per-checkpoint files.
    pub legacy_entries: u64,
    /// Segment files on disk.
    pub segments: u64,
    /// Segments with a valid footer trailer (sealed).
    pub sealed_segments: u64,
    /// Total bytes of all segment files.
    pub segment_disk_bytes: u64,
    /// Stored payload bytes of live segment entries.
    pub live_segment_bytes: u64,
    /// Estimated reclaimable segment bytes (superseded payloads and torn
    /// tails; segment/entry framing is accounted as live).
    pub dead_segment_bytes: u64,
    /// Total uncompressed bytes across live checkpoints.
    pub raw_bytes: u64,
    /// Total stored payload bytes across live checkpoints.
    pub stored_bytes: u64,
    /// `get`/`get_bytes` calls served.
    pub reads: u64,
    /// Reads satisfied by a zero-copy slice (raw-stored segment entries).
    pub zero_copy_reads: u64,
    /// Segment buffer cache hits.
    pub segment_cache_hits: u64,
    /// Segment buffer cache misses (one `fs::read` each).
    pub segment_cache_misses: u64,
    /// Compactions completed on this handle.
    pub compactions: u64,
    /// Disk bytes reclaimed by those compactions.
    pub compaction_reclaimed_bytes: u64,
    /// Live checkpoints stored as delta frames.
    pub delta_entries: u64,
    /// Live checkpoints stored as full keyframes (chain depth 0).
    pub keyframe_entries: u64,
    /// Live entries per chain depth (bucket 0 = keyframes; depths past
    /// the last bucket clamp into it).
    pub chain_depth_hist: [u64; CHAIN_DEPTH_BUCKETS],
    /// Reads that resolved a delta entry.
    pub delta_reads: u64,
    /// Chain links decoded across all delta reads (frames applied).
    pub chain_links_resolved: u64,
    /// Chain-base resolutions served by the per-block restore cache
    /// instead of a recursive decode.
    pub restore_cache_hits: u64,
    /// Live checkpoints stored as `@dup` references into the shared arena.
    pub dedup_entries: u64,
    /// Stages that resolved to an already-present dedup blob.
    pub dedup_hits: u64,
    /// Segments resident in the spool (cold) tier.
    pub tier_cold_segments: u64,
    /// Segment faults served from the spool tier.
    pub tier_cold_reads: u64,
    /// Sealed segments whose local copy was dropped after a verified
    /// spool copy existed.
    pub tier_demotions: u64,
    /// Segment buffers established via mmap (vs. whole-file heap reads).
    pub mmap_faults: u64,
    /// Current compression effort level (1–3).
    pub compression_effort: u64,
}

impl StoreStats {
    /// Compression ratio: raw bytes over stored bytes (> 1 means the
    /// store shrank the data; 1.0 when nothing is stored).
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.stored_bytes as f64
        }
    }

    /// Every scalar counter as `(name, value)`, in presentation order.
    /// Both [`StoreStats::to_json`] and the CLI's pretty printer iterate
    /// this list, so the two surfaces cannot drift.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("entries", self.entries),
            ("segment_entries", self.segment_entries),
            ("legacy_entries", self.legacy_entries),
            ("segments", self.segments),
            ("sealed_segments", self.sealed_segments),
            ("segment_disk_bytes", self.segment_disk_bytes),
            ("live_segment_bytes", self.live_segment_bytes),
            ("dead_segment_bytes", self.dead_segment_bytes),
            ("raw_bytes", self.raw_bytes),
            ("stored_bytes", self.stored_bytes),
            ("reads", self.reads),
            ("zero_copy_reads", self.zero_copy_reads),
            ("segment_cache_hits", self.segment_cache_hits),
            ("segment_cache_misses", self.segment_cache_misses),
            ("compactions", self.compactions),
            (
                "compaction_reclaimed_bytes",
                self.compaction_reclaimed_bytes,
            ),
            ("delta_entries", self.delta_entries),
            ("keyframe_entries", self.keyframe_entries),
            ("delta_reads", self.delta_reads),
            ("chain_links_resolved", self.chain_links_resolved),
            ("restore_cache_hits", self.restore_cache_hits),
            ("dedup_entries", self.dedup_entries),
            ("dedup_hits", self.dedup_hits),
            ("tier_cold_segments", self.tier_cold_segments),
            ("tier_cold_reads", self.tier_cold_reads),
            ("tier_demotions", self.tier_demotions),
            ("mmap_faults", self.mmap_faults),
            ("compression_effort", self.compression_effort),
        ]
    }

    /// Serializes through the shared [`flor_obs::json::JsonWriter`] — the
    /// payload of `flor store stats --json`.
    pub fn to_json(&self) -> String {
        let mut w = flor_obs::json::JsonWriter::new();
        w.begin_obj();
        for (name, v) in self.fields() {
            w.field_u64(name, v);
        }
        w.field_f64("compression_ratio", self.compression_ratio());
        w.key("chain_depth_hist");
        w.begin_arr();
        for b in &self.chain_depth_hist {
            w.u64_val(*b);
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }
}

/// What one [`CheckpointStore::compact`] pass did.
#[derive(Debug, Clone, Default)]
pub struct CompactionReport {
    /// Live entries rewritten into new segments.
    pub rewritten_entries: u64,
    /// Legacy per-checkpoint files migrated into segments.
    pub migrated_files: u64,
    /// Old segment files deleted.
    pub segments_removed: u64,
    /// Migrated legacy files deleted.
    pub legacy_files_removed: u64,
    /// Net disk bytes freed (old bytes − new segment bytes).
    pub reclaimed_bytes: u64,
    /// Delta entries folded into fresh keyframes (their chain depth
    /// dropped to 0 — e.g. the store was reopened with a smaller
    /// keyframe interval, or the chain no longer earns its keep).
    pub chains_folded: u64,
    /// Entries of delta-bearing blocks re-encoded payload-by-payload
    /// (plain blocks move their stored bytes verbatim instead).
    pub reencoded_entries: u64,
    /// Ids of the segments the live data now lives in.
    pub new_segments: Vec<u64>,
}

/// Durably replaces `dest` with `bytes`: write to a temp sibling, fsync
/// it, rename over `dest`, fsync the parent directory. After a power
/// loss the file is either the old content or the complete new content —
/// never empty or truncated (a bare `write` + `rename` can persist the
/// rename before the data blocks).
pub fn write_atomic(dest: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = dest.parent().unwrap_or_else(|| Path::new("."));
    // Unique per invocation, not just per process: concurrent writers of
    // the same destination (e.g. a background spool ship racing an explicit
    // demotion) must not share a temp sibling, or one rename steals the
    // other's half-written file.
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        dest.file_name()
            .map(|n| n.to_string_lossy())
            .unwrap_or_default(),
        std::process::id(),
        WRITE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dest)?;
    // Persist the rename itself (directory entry). Best-effort on
    // platforms where directories cannot be opened for sync.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads a tier pointer file (`DEDUP` / `SPOOL`): the trimmed contents
/// name a directory, resolved against the store root when relative.
fn read_pointer_file(path: &Path, root: &Path) -> Option<PathBuf> {
    let text = fs::read_to_string(path).ok()?;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return None;
    }
    let p = PathBuf::from(trimmed);
    Some(if p.is_absolute() { p } else { root.join(p) })
}

/// Cold-tier path of one segment inside a spool directory.
pub(crate) fn spool_segment_path(spool: &Path, seg: u64) -> PathBuf {
    spool.join("segments").join(format!("{seg:08}.seg"))
}

/// block → seq → entry; one per shard.
type BlockMap = HashMap<String, BTreeMap<u64, IndexEntry>>;

/// Picks the stored representation for one payload: a delta frame when it
/// clearly wins (≤ 50% of raw — compression skipped entirely), otherwise
/// whichever of {marginal frame, compressed bytes, raw payload} is
/// smallest (raw only where the layout supports it, i.e. segments).
/// Shared by [`WriteBatch::stage`] and the compaction re-encode walk so
/// both sides apply exactly one policy. Returns
/// `(stored, raw_stored, delta_link)`.
fn arbitrate_stored(
    encoded: Option<(Vec<u8>, u64, u32)>,
    payload: &[u8],
    compressor: Compressor,
    raw_allowed: bool,
    effort: u8,
) -> (Vec<u8>, bool, Option<(u64, u32)>) {
    match encoded {
        Some((frame, base_seq, depth)) if delta::is_clear_win(&frame, payload.len()) => {
            (frame, false, Some((base_seq, depth)))
        }
        other => {
            let compressed = match compressor {
                Compressor::Pipeline => compress_auto_effort(payload, effort),
                Compressor::Reference => crate::compress::compress_reference(payload),
            };
            match other {
                Some((frame, base_seq, depth)) if frame.len() < compressed.len() => {
                    (frame, false, Some((base_seq, depth)))
                }
                _ if raw_allowed && compressed.len() >= payload.len() => {
                    (payload.to_vec(), true, None)
                }
                _ => (compressed, false, None),
            }
        }
    }
}

/// The active (append-target) segment of this writer session.
struct ActiveSegment {
    id: u64,
    file: fs::File,
    len: u64,
    footer: Vec<SegmentIndexEntry>,
}

#[derive(Default)]
struct WriterState {
    active: Option<ActiveSegment>,
}

#[derive(Default)]
struct ReadCounters {
    reads: AtomicU64,
    zero_copy: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    delta_reads: AtomicU64,
    chain_links: AtomicU64,
    restore_cache_hits: AtomicU64,
}

/// The last committed payload of one block — the base the next version of
/// that block delta-encodes against (the per-name last-payload cache the
/// materializer's write path leans on).
#[derive(Clone)]
struct DeltaBase {
    seq: u64,
    depth: u32,
    crc: u32,
    payload: Bytes,
}

#[derive(Default)]
struct CompactionCounters {
    runs: AtomicU64,
    reclaimed: AtomicU64,
}

/// One resident segment buffer plus its LRU stamp (bumped on every hit,
/// compared under the cache's write lock when the budget forces eviction).
struct SegBuffer {
    bytes: Bytes,
    last_use: AtomicU64,
}

/// Tiered-storage counters (all monotonic; surfaced via [`StoreStats`]).
#[derive(Default)]
struct TierCounters {
    /// Segment reads served by faulting bytes back from the spool tier.
    cold_reads: AtomicU64,
    /// Sealed segments whose local copy was dropped after a verified
    /// durable spool copy existed.
    demotions: AtomicU64,
    /// Segment buffers established via mmap (vs. whole-file heap reads).
    mmap_faults: AtomicU64,
    /// Stages that resolved to an existing dedup blob instead of new bytes.
    dedup_hits: AtomicU64,
}

/// An on-disk checkpoint store (thread-safe; background materializer workers
/// share it, and `flor-registry` pools one open handle per run — all clones
/// of a pooled `Arc<CheckpointStore>` share the same manifest appender,
/// active segment, and segment read cache).
pub struct CheckpointStore {
    root: PathBuf,
    /// Sharded (block, seq) index: readers lock one shard, by `&str`.
    shards: Vec<RwLock<BlockMap>>,
    /// Persistent `O_APPEND` manifest handle, opened lazily and kept open
    /// across appends (invalidated when recovery rewrites the manifest).
    appender: Mutex<Option<fs::File>>,
    opts: StoreOptions,
    /// Running totals, maintained on put so the accessors are O(1).
    stored_total: AtomicU64,
    raw_total: AtomicU64,
    /// Active-segment state; also the lock that serializes writers against
    /// compaction.
    writer: Mutex<WriterState>,
    next_seg: AtomicU64,
    /// seg id → whole-segment shared buffer (the zero-copy backing):
    /// mmap-backed when the platform supports it, heap otherwise.
    seg_cache: RwLock<HashMap<u64, SegBuffer>>,
    /// Total bytes resident in `seg_cache` (updated under its write lock).
    seg_cache_bytes: AtomicU64,
    /// LRU clock for `seg_cache`: bumped per lookup, so eviction demotes
    /// the least-recently-touched buffer instead of an arbitrary victim.
    seg_cache_tick: AtomicU64,
    /// Shared content-addressed keyframe arena, when a `DEDUP` pointer
    /// file (written by the registry at claim time) names one.
    dedup: RwLock<Option<Arc<DedupIndex>>>,
    /// Cold-tier spool directory, when a `SPOOL` pointer file names one
    /// (or [`CheckpointStore::attach_spool`] set it).
    spool_dir: RwLock<Option<PathBuf>>,
    /// Auto-tunable compression effort (clamped to
    /// [`MIN_EFFORT`]..=[`MAX_EFFORT`](crate::compress::MAX_EFFORT)).
    effort: AtomicU8,
    tier: TierCounters,
    /// block → last committed payload: the delta base for the block's
    /// next version (write-path cache; see [`DeltaBase`]).
    delta_write: Mutex<HashMap<String, DeltaBase>>,
    /// Payload bytes resident in `delta_write` (updated under its lock).
    delta_write_bytes: AtomicU64,
    /// block → consecutive failed delta-encode attempts (back-off state;
    /// see [`DELTA_REJECT_THRESHOLD`]).
    delta_rejects: Mutex<HashMap<String, u32>>,
    /// block → (seq, payload crc, reconstructed payload): the most recent
    /// chain resolution per block, so a sequential replay restores each
    /// delta with one link instead of re-walking to the keyframe.
    restore_cache: Mutex<HashMap<String, (u64, u32, Bytes)>>,
    /// Payload bytes resident in `restore_cache` (updated under its lock).
    restore_cache_bytes: AtomicU64,
    reads: ReadCounters,
    gc: CompactionCounters,
    recovery: RecoveryReport,
}

impl CheckpointStore {
    /// Creates (or opens) a store rooted at `root` with default options
    /// (segmented, [`Durability::Buffered`]).
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_opts(root, StoreOptions::default())
    }

    /// Creates (or opens) a store with an explicit durability policy.
    pub fn open_with(root: impl Into<PathBuf>, durability: Durability) -> Result<Self, StoreError> {
        Self::open_opts(
            root,
            StoreOptions {
                durability,
                ..StoreOptions::default()
            },
        )
    }

    /// Opens a store for inspection only: nothing on disk is created,
    /// repaired, or deleted, and every write API fails with
    /// [`StoreError::ReadOnly`]. Safe to run against a store another
    /// process is actively recording into.
    pub fn open_read_only(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_opts(
            root,
            StoreOptions {
                read_only: true,
                ..StoreOptions::default()
            },
        )
    }

    /// Creates (or opens) a store with explicit [`StoreOptions`].
    pub fn open_opts(root: impl Into<PathBuf>, opts: StoreOptions) -> Result<Self, StoreError> {
        let root = root.into();
        if opts.read_only {
            // Inspection of a path that holds no store must error, not
            // report a clean empty store — "entries: 0, recovery: clean"
            // for a typo'd path would read as data loss.
            let looks_like_store = root.join("MANIFEST").exists()
                || root.join("seg").is_dir()
                || root.join("ckpt").is_dir();
            if !looks_like_store {
                return Err(StoreError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("no checkpoint store at {}", root.display()),
                )));
            }
        } else {
            fs::create_dir_all(root.join("ckpt"))?;
            fs::create_dir_all(root.join("seg"))?;
            fs::create_dir_all(root.join("artifacts"))?;
        }
        let mut store = CheckpointStore {
            root,
            shards: (0..SHARDS).map(|_| RwLock::new(BlockMap::new())).collect(),
            appender: Mutex::new(None),
            opts,
            stored_total: AtomicU64::new(0),
            raw_total: AtomicU64::new(0),
            writer: Mutex::new(WriterState::default()),
            next_seg: AtomicU64::new(0),
            seg_cache: RwLock::new(HashMap::new()),
            seg_cache_bytes: AtomicU64::new(0),
            seg_cache_tick: AtomicU64::new(0),
            dedup: RwLock::new(None),
            spool_dir: RwLock::new(None),
            effort: AtomicU8::new(DEFAULT_EFFORT),
            tier: TierCounters::default(),
            delta_write: Mutex::new(HashMap::new()),
            delta_write_bytes: AtomicU64::new(0),
            delta_rejects: Mutex::new(HashMap::new()),
            restore_cache: Mutex::new(HashMap::new()),
            restore_cache_bytes: AtomicU64::new(0),
            reads: ReadCounters::default(),
            gc: CompactionCounters::default(),
            recovery: RecoveryReport::default(),
        };
        // Tier attachments must land before the manifest loads: spool
        // presence decides whether a referenced-but-locally-absent segment
        // is cold (readable) or missing (dropped), and dedup entries need
        // their arena to restore at all. A named-but-unopenable arena is a
        // loud failure — silently dropping it would turn every dup entry
        // into read-time corruption.
        if let Some(dir) = read_pointer_file(&store.root.join(SPOOL_POINTER_FILE), &store.root) {
            *store.spool_dir.get_mut() = Some(dir);
        }
        if let Some(dir) = read_pointer_file(&store.root.join(DEDUP_POINTER_FILE), &store.root) {
            *store.dedup.get_mut() = Some(DedupIndex::open(&dir)?);
        }
        if let Ok(text) = fs::read_to_string(store.root.join("artifacts").join(EFFORT_ARTIFACT)) {
            if let Ok(e) = text.trim().parse::<u8>() {
                store
                    .effort
                    .store(e.clamp(MIN_EFFORT, MAX_EFFORT), Ordering::Relaxed);
            }
        }
        let report = store.load_manifest()?;
        store.recovery = report;
        Ok(store)
    }

    /// Store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The durability policy this store was opened with.
    pub fn durability(&self) -> Durability {
        self.opts.durability
    }

    /// The write layout this store was opened with.
    pub fn format(&self) -> StoreFormat {
        self.opts.format
    }

    /// What open-time recovery found (missing data, orphans, repairs).
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("MANIFEST")
    }

    fn seg_dir(&self) -> PathBuf {
        self.root.join("seg")
    }

    fn segment_path(&self, seg: u64) -> PathBuf {
        self.seg_dir().join(format!("{seg:08}.seg"))
    }

    fn shard_of(block: &str) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        block.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    // ---- open / recovery ---------------------------------------------------

    fn load_manifest(&mut self) -> Result<RecoveryReport, StoreError> {
        let mut report = RecoveryReport::default();

        // Scan seg/: existing segment ids and sizes (one stat per segment,
        // never per checkpoint), stale temp files from crashed compactions.
        // The directory may not exist under a read-only open of a pure v1
        // store (read-only opens create nothing).
        let mut seg_sizes: HashMap<u64, u64> = HashMap::new();
        if let Ok(rd) = fs::read_dir(self.seg_dir()) {
            for entry in rd {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with('.') {
                    // A temp sibling from an interrupted compaction or
                    // atomic write. Reported only — another process may own
                    // it right now; the next compaction (which holds the
                    // writer lock) reclaims it.
                    report.stale_temp_files += 1;
                    continue;
                }
                if let Some(id) = name
                    .strip_suffix(".seg")
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    seg_sizes.insert(id, entry.metadata()?.len());
                }
            }
        }
        // Cold tier: segments shipped to the spool are present (readable
        // via fault-back), just not local. One scan, same shape as `seg/`.
        let mut spool_sizes: HashMap<u64, u64> = HashMap::new();
        if let Some(spool) = self.spool_dir.read().clone() {
            if let Ok(rd) = fs::read_dir(spool.join("segments")) {
                for entry in rd.flatten() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if let Some(id) = name
                        .strip_suffix(".seg")
                        .and_then(|s| s.parse::<u64>().ok())
                    {
                        if let Ok(m) = entry.metadata() {
                            spool_sizes.insert(id, m.len());
                        }
                    }
                }
            }
        }

        let path = self.manifest_path();
        let mut parsed: Vec<((String, u64), IndexEntry)> = Vec::new();
        let mut tail_unterminated = false;
        if path.exists() {
            let text = fs::read_to_string(&path)?;
            let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
            // A record phase killed mid-append leaves a final line without
            // its terminating newline; only such a tail may be dropped as
            // torn. Any malformed *complete* line is real corruption and
            // stays fatal.
            tail_unterminated = !text.is_empty() && !text.ends_with('\n');
            for (i, line) in lines.iter().enumerate() {
                match Self::parse_manifest_line(line, i + 1) {
                    Ok(pair) => parsed.push(pair),
                    Err(e) => {
                        if i + 1 == lines.len() && tail_unterminated {
                            // Drop the torn tail: its checkpoint data is at
                            // worst dead bytes; the run is not poisoned.
                            report.dropped_torn_tail = true;
                        } else {
                            return Err(e);
                        }
                    }
                }
            }
        }

        // Segments referenced by any manifest line (live *or* superseded —
        // superseded payloads stay until compaction rewrites them away).
        let referenced_segs: HashSet<u64> = parsed
            .iter()
            .filter_map(|(_, e)| match &e.loc {
                Location::Segment { seg, .. } => Some(*seg),
                Location::File(_) | Location::Dup { .. } => None,
            })
            .collect();
        let referenced_files: HashSet<String> = parsed
            .iter()
            .filter_map(|(_, e)| match &e.loc {
                Location::File(f) => Some(f.clone()),
                Location::Segment { .. } | Location::Dup { .. } => None,
            })
            .collect();

        // A fresh writer session must never reuse a segment id that lives
        // only in the spool (demoted) or only in the manifest (local copy
        // lost) — colliding ids would splice two runs' payloads together.
        self.next_seg = AtomicU64::new(
            seg_sizes
                .keys()
                .chain(spool_sizes.keys())
                .chain(referenced_segs.iter())
                .max()
                .map(|m| m + 1)
                .unwrap_or(0),
        );

        // Later manifest lines supersede earlier ones (re-puts): reduce to
        // the last-writer-wins entry per key *before* validating data
        // presence, so a vanished superseded payload is not misreported as
        // a missing live checkpoint.
        let mut winners: Vec<((String, u64), IndexEntry)> = Vec::with_capacity(parsed.len());
        {
            let mut at: HashMap<(String, u64), usize> = HashMap::with_capacity(parsed.len());
            for pair in parsed {
                match at.get(&pair.0) {
                    Some(&i) => winners[i] = pair,
                    None => {
                        at.insert(pair.0.clone(), winners.len());
                        winners.push(pair);
                    }
                }
            }
        }

        // Validate data presence.
        let mut dropped_missing = false;
        let mut alive: Vec<((String, u64), IndexEntry)> = Vec::with_capacity(winners.len());
        for ((block, seq), mut entry) in winners {
            match &entry.loc {
                Location::Segment { seg, .. } => {
                    if !seg_sizes.contains_key(seg) && !spool_sizes.contains_key(seg) {
                        report.missing_entries.push(MissingEntry {
                            block_id: block,
                            seq,
                            location: entry.loc.render(),
                        });
                        dropped_missing = true;
                        continue;
                    }
                    // A spool-only segment is cold, not missing: reads
                    // fault it back through the buffer pool. An in-bounds
                    // check happens at read time: a too-short segment is
                    // corruption and must fail loudly, not be silently
                    // skipped.
                }
                Location::Dup { .. } => {
                    // Blob presence is the dedup arena's contract (blobs
                    // are refcounted and synced before the manifest line
                    // that references them); a missing blob is corruption
                    // and fails loudly at read time, never a droppable
                    // entry here.
                }
                Location::File(file) => {
                    // Legacy entries carry no stored size in the manifest;
                    // stat the file (this is the v1-compat path only — a
                    // segmented store has no such entries).
                    match fs::metadata(self.root.join("ckpt").join(file)) {
                        Ok(m) => entry.stored = m.len(),
                        Err(_) => {
                            report.missing_entries.push(MissingEntry {
                                block_id: block,
                                seq,
                                location: entry.loc.render(),
                            });
                            dropped_missing = true;
                            continue;
                        }
                    }
                }
            }
            alive.push(((block, seq), entry));
        }

        // Cascade-drop delta entries whose chain base is gone (the base's
        // segment vanished, or the base itself was a dropped delta): a
        // delta frame without its base can never restore, so keeping it
        // indexed would turn a recoverable gap into a read-time error.
        // Mark-based fixpoint over borrowed keys — one map build, no
        // String clones, and delta-free stores skip it entirely (cold
        // open stays O(n) with a small constant). Chains are short
        // (≤ keyframe interval), so the fixpoint converges in a handful
        // of rounds even on deep legacy chains.
        let mut dead = vec![false; alive.len()];
        if alive.iter().any(|(_, e)| e.loc.delta_link().is_some()) {
            let mut index_by_block: HashMap<&str, HashMap<u64, usize>> = HashMap::new();
            for (i, ((block, seq), _)) in alive.iter().enumerate() {
                index_by_block
                    .entry(block.as_str())
                    .or_default()
                    .insert(*seq, i);
            }
            loop {
                let mut changed = false;
                for (i, ((block, _), entry)) in alive.iter().enumerate() {
                    if dead[i] {
                        continue;
                    }
                    if let Some((base_seq, _)) = entry.loc.delta_link() {
                        let base_alive = index_by_block
                            .get(block.as_str())
                            .and_then(|seqs| seqs.get(&base_seq))
                            .is_some_and(|&j| !dead[j]);
                        if !base_alive {
                            dead[i] = true;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        // Build the sharded index from the survivors; report the dropped.
        for (i, ((block, seq), entry)) in alive.into_iter().enumerate() {
            if dead[i] {
                report.missing_entries.push(MissingEntry {
                    block_id: block,
                    seq,
                    location: entry.loc.render(),
                });
                dropped_missing = true;
            } else {
                self.index_insert(block, seq, entry);
            }
        }

        // Orphaned segments: on disk, referenced by nothing. These are the
        // residue of a crashed compaction (new segment renamed in, manifest
        // swap never happened — or manifest swapped, old segments never
        // deleted) or of a batch whose manifest append was lost; either
        // way no live checkpoint points into them. Report only — a
        // concurrent writer process may be mid-commit into exactly such a
        // segment, so deletion belongs to compaction, not to open.
        for (&id, _) in seg_sizes.iter() {
            if !referenced_segs.contains(&id) {
                report.orphaned_segments.push(id);
            }
        }
        report.orphaned_segments.sort_unstable();

        // Orphaned legacy files: reported, not deleted.
        if let Ok(rd) = fs::read_dir(self.root.join("ckpt")) {
            for entry in rd.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if !name.starts_with('.') && !referenced_files.contains(name.as_str()) {
                    report.orphaned_files.push(name);
                }
            }
        }
        report.orphaned_files.sort_unstable();

        // Repair whenever entries were dropped or the tail lacks its
        // newline — even if the final line parsed (the crash can cut
        // exactly at the newline). Leaving an unterminated tail would make
        // the next O_APPEND write merge two lines into one, turning
        // recoverable damage into fatal corruption.
        if report.dropped_torn_tail || tail_unterminated || dropped_missing {
            if self.opts.read_only {
                // Never touch the MANIFEST from an inspection open: the
                // writer process that owns this store keeps an O_APPEND
                // handle to the current inode, and a rename here would
                // silently sever it. The in-memory view is still the
                // recovered one; the next writable open repairs the file.
                report.repair_pending = true;
            } else {
                self.rewrite_manifest()?;
                report.repaired_manifest = true;
            }
        }
        Ok(report)
    }

    /// Errors when this handle was opened read-only.
    fn ensure_writable(&self) -> Result<(), StoreError> {
        if self.opts.read_only {
            return Err(StoreError::ReadOnly);
        }
        Ok(())
    }

    /// Renders the manifest line for one entry, with its trailing
    /// self-CRC over the five data fields.
    fn manifest_line(block: &str, seq: u64, location: &str, raw: u64, crc: u32) -> String {
        let payload = format!("{block}\t{seq}\t{location}\t{raw}\t{crc}");
        let line_crc = crc32(payload.as_bytes());
        format!("{payload}\t{line_crc}")
    }

    fn parse_manifest_line(
        line: &str,
        lineno: usize,
    ) -> Result<((String, u64), IndexEntry), StoreError> {
        let parts: Vec<&str> = line.split('\t').collect();
        if parts.len() != 6 {
            return Err(StoreError::BadManifest(format!(
                "line {}: expected 6 fields, got {}",
                lineno,
                parts.len()
            )));
        }
        let (payload, line_crc_str) = line
            .rsplit_once('\t')
            .expect("6 tab-separated fields always split");
        let line_crc: u32 = line_crc_str
            .parse()
            .map_err(|_| StoreError::BadManifest(format!("line {lineno}: bad line crc")))?;
        if crc32(payload.as_bytes()) != line_crc {
            return Err(StoreError::BadManifest(format!(
                "line {lineno}: line crc mismatch (torn or corrupted)"
            )));
        }
        let seq: u64 = parts[1]
            .parse()
            .map_err(|_| StoreError::BadManifest(format!("line {lineno}: bad seq")))?;
        let raw: u64 = parts[3]
            .parse()
            .map_err(|_| StoreError::BadManifest(format!("line {lineno}: bad size")))?;
        let crc: u32 = parts[4]
            .parse()
            .map_err(|_| StoreError::BadManifest(format!("line {lineno}: bad crc")))?;
        let loc = Location::parse(parts[2]);
        let stored = match &loc {
            Location::Segment { len, .. } => *len as u64,
            Location::File(_) => 0, // statted by the caller (v1 compat)
            // Dup bytes live in the shared arena, not this store: charging
            // them here would double-count across every referencing run.
            Location::Dup { .. } => 0,
        };
        Ok((
            (parts[0].to_string(), seq),
            IndexEntry {
                loc,
                raw,
                crc,
                stored,
            },
        ))
    }

    /// All live entries, sorted by (block, seq), with their index data.
    fn sorted_index(&self) -> Vec<(String, u64, IndexEntry)> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let m = shard.read();
            for (block, seqs) in m.iter() {
                for (seq, e) in seqs.iter() {
                    all.push((block.clone(), *seq, e.clone()));
                }
            }
        }
        all.sort_by(|a, b| (a.0.as_str(), a.1).cmp(&(b.0.as_str(), b.1)));
        all
    }

    /// Rewrites the manifest from the in-memory index, crash-safely:
    /// the new content goes to a temp file which is atomically renamed
    /// over the manifest, so a crash leaves either the old or the new
    /// manifest — never a truncated hybrid. Invalidates the kept-open
    /// appender (its fd would point at the renamed-over inode).
    fn rewrite_manifest(&self) -> Result<(), StoreError> {
        let mut appender = self.appender.lock();
        *appender = None;
        let mut text = String::new();
        for (block, seq, e) in self.sorted_index() {
            text.push_str(&Self::manifest_line(
                &block,
                seq,
                &e.loc.render(),
                e.raw,
                e.crc,
            ));
            text.push('\n');
        }
        write_atomic(&self.manifest_path(), text.as_bytes())?;
        Ok(())
    }

    /// Appends pre-rendered, newline-terminated manifest text through the
    /// persistent appender (one `write_all`: `O_APPEND` keeps concurrent
    /// batches from interleaving mid-line).
    fn append_manifest_text(&self, text: &str) -> Result<(), StoreError> {
        let mut guard = self.appender.lock();
        if guard.is_none() {
            *guard = Some(
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.manifest_path())?,
            );
        }
        let f = guard.as_mut().expect("appender populated above");
        f.write_all(text.as_bytes())?;
        if self.opts.durability == Durability::GroupCommit {
            f.sync_data()?;
            // The MANIFEST's own directory entry must be durable too (it
            // may have just been created); errors propagate — a failed
            // barrier must not report durability it didn't achieve.
            fs::File::open(&self.root)?.sync_all()?;
        }
        Ok(())
    }

    /// Inserts an entry, maintaining the O(1) byte totals (a replaced
    /// entry's contribution is subtracted).
    fn index_insert(&self, block: String, seq: u64, entry: IndexEntry) {
        self.raw_total.fetch_add(entry.raw, Ordering::Relaxed);
        self.stored_total.fetch_add(entry.stored, Ordering::Relaxed);
        let shard = &self.shards[Self::shard_of(&block)];
        let old = shard.write().entry(block).or_default().insert(seq, entry);
        if let Some(old) = old {
            self.raw_total.fetch_sub(old.raw, Ordering::Relaxed);
            self.stored_total.fetch_sub(old.stored, Ordering::Relaxed);
        }
    }

    fn lookup(&self, block_id: &str, seq: u64) -> Option<IndexEntry> {
        // Borrowed-key lookup: no allocation while holding the shard lock.
        self.shards[Self::shard_of(block_id)]
            .read()
            .get(block_id)
            .and_then(|m| m.get(&seq))
            .cloned()
    }

    // ---- writes ------------------------------------------------------------

    /// Starts an empty write batch against this store.
    pub fn batch(&self) -> WriteBatch<'_> {
        WriteBatch {
            store: self,
            staged: Vec::new(),
            pending_bases: HashMap::new(),
        }
    }

    /// Writes a single checkpoint payload for `(block_id, seq)` — a batch
    /// of one; see [`WriteBatch`] for the durability contract.
    pub fn put(&self, block_id: &str, seq: u64, payload: &[u8]) -> Result<CkptMeta, StoreError> {
        let mut batch = self.batch();
        batch.stage(block_id, seq, payload);
        let mut metas = batch.commit()?;
        Ok(metas.pop().expect("batch of one yields one meta"))
    }

    /// Seals the active segment (writes its footer index), if any. Called
    /// automatically on drop and before rolling to a new segment; safe to
    /// call at any quiescent point (e.g. end of record).
    pub fn seal_active_segment(&self) -> Result<(), StoreError> {
        if self.opts.read_only {
            return Ok(()); // nothing to seal; called unconditionally by Drop
        }
        let mut w = self.writer.lock();
        self.seal_locked(&mut w)
    }

    fn seal_locked(&self, w: &mut WriterState) -> Result<(), StoreError> {
        let Some(active) = w.active.take() else {
            return Ok(());
        };
        let mut file = active.file;
        file.write_all(&encode_footer(&active.footer))?;
        if self.opts.durability == Durability::GroupCommit {
            file.sync_data()?;
        }
        // Cold tier: ship the freshly sealed segment in the background
        // (copy, not move — dropping the local copy is a separate, explicit
        // demotion step). Shipping is incremental: each seal ships exactly
        // one segment, so spool residency tracks commit progress instead of
        // arriving in one end-of-run burst.
        if let Some(spool) = self.spool_dir.read().clone() {
            let src = self.segment_path(active.id);
            let id = active.id;
            crate::exec::spawn(move || {
                let _ = crate::spool::ship_segment_file(&spool, id, &src);
            });
        }
        Ok(())
    }

    // ---- reads -------------------------------------------------------------

    /// Reads, verifies, and returns the checkpoint payload for
    /// `(block_id, seq)` as a refcounted [`Bytes`].
    ///
    /// The zero-copy contract: for raw-stored segment entries the returned
    /// buffer **is** a slice of the shared per-segment read buffer — no
    /// payload bytes are copied, and all readers of one segment share one
    /// backing allocation. Compressed entries pay exactly one decompression
    /// into a fresh buffer. Either way the payload CRC is verified on every
    /// read.
    pub fn get_bytes(&self, block_id: &str, seq: u64) -> Result<Bytes, StoreError> {
        // Disabled tracing costs one atomic load here — this is the ~1µs
        // restore read the replay bench gates.
        let mut span = flor_obs::span(flor_obs::Category::RestoreChain, "store_read");
        span.set_args(seq, 0);
        self.reads.reads.fetch_add(1, Ordering::Relaxed);
        self.read_with_relocation_retry(block_id, seq, |entry| {
            self.read_payload(block_id, seq, entry)
        })
    }

    /// Runs `read` against the entry's current location, re-resolving and
    /// retrying when the data file vanished underneath it — the benign
    /// race where a concurrent [`CheckpointStore::compact`] repointed the
    /// index and deleted the old segment between this reader's lookup and
    /// its `fs::read`. A `NotFound` at an *unchanged* location is a real
    /// error and propagates; each retry requires a fresh location, so the
    /// loop only spins while compactions actually land.
    fn read_with_relocation_retry<T>(
        &self,
        block_id: &str,
        seq: u64,
        read: impl Fn(&IndexEntry) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let missing = || StoreError::Missing {
            block_id: block_id.to_string(),
            seq,
        };
        let mut entry = self.lookup(block_id, seq).ok_or_else(missing)?;
        loop {
            match read(&entry) {
                Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    let fresh = self.lookup(block_id, seq).ok_or_else(missing)?;
                    if fresh.loc == entry.loc {
                        return Err(StoreError::Io(e));
                    }
                    entry = fresh;
                }
                other => return other,
            }
        }
    }

    /// Zero-copy slice of one segment-resident entry's stored bytes, with
    /// the shared bounds/truncation check (`get_stored` and the verified
    /// read path both go through here, so the truncation contract lives in
    /// one place).
    fn stored_slice(
        &self,
        block_id: &str,
        seq: u64,
        seg: u64,
        offset: u64,
        len: u32,
    ) -> Result<Bytes, StoreError> {
        let need = offset + len as u64;
        let buf = self.segment_bytes(seg, need)?;
        if (buf.len() as u64) < need {
            return Err(StoreError::Corrupt {
                block_id: block_id.to_string(),
                seq,
                detail: format!(
                    "segment {seg} truncated: need {need} bytes, have {}",
                    buf.len()
                ),
            });
        }
        let mut view = buf;
        view.advance(offset as usize);
        Ok(view.copy_to_bytes(len as usize))
    }

    /// Reads and verifies one entry's payload at its recorded location,
    /// resolving delta chains.
    fn read_payload(
        &self,
        block_id: &str,
        seq: u64,
        entry: &IndexEntry,
    ) -> Result<Bytes, StoreError> {
        if entry.loc.delta_link().is_some() {
            self.reads.delta_reads.fetch_add(1, Ordering::Relaxed);
            return self.resolve_delta(block_id, seq, entry);
        }
        self.read_keyframe_payload(block_id, seq, entry)
    }

    /// Reads and verifies a *non-delta* entry's payload.
    fn read_keyframe_payload(
        &self,
        block_id: &str,
        seq: u64,
        entry: &IndexEntry,
    ) -> Result<Bytes, StoreError> {
        let corrupt = |detail: String| StoreError::Corrupt {
            block_id: block_id.to_string(),
            seq,
            detail,
        };
        match &entry.loc {
            Location::File(file) => {
                let compressed = fs::read(self.root.join("ckpt").join(file))?;
                let payload = decompress_any(&compressed).map_err(|e| corrupt(e.message))?;
                if payload.len() as u64 != entry.raw || crc32(&payload) != entry.crc {
                    return Err(corrupt("crc or length mismatch".into()));
                }
                Ok(Bytes::from_vec(payload))
            }
            Location::Segment {
                seg,
                offset,
                len,
                raw_stored,
                ..
            } => {
                let slice = self.stored_slice(block_id, seq, *seg, *offset, *len)?;
                if *raw_stored {
                    if slice.len() as u64 != entry.raw || crc32(slice.as_ref()) != entry.crc {
                        return Err(corrupt("crc or length mismatch".into()));
                    }
                    self.reads.zero_copy.fetch_add(1, Ordering::Relaxed);
                    Ok(slice)
                } else {
                    let payload = decompress_any(slice.as_ref()).map_err(|e| corrupt(e.message))?;
                    if payload.len() as u64 != entry.raw || crc32(&payload) != entry.crc {
                        return Err(corrupt("crc or length mismatch".into()));
                    }
                    Ok(Bytes::from_vec(payload))
                }
            }
            Location::Dup { hash, .. } => {
                let (stored, flags) = self.dedup_read(block_id, seq, *hash)?;
                if flags & FLAG_RAW != 0 {
                    if stored.len() as u64 != entry.raw || crc32(&stored) != entry.crc {
                        return Err(corrupt("crc or length mismatch".into()));
                    }
                    Ok(Bytes::from_vec(stored))
                } else {
                    let payload = decompress_any(&stored).map_err(|e| corrupt(e.message))?;
                    if payload.len() as u64 != entry.raw || crc32(&payload) != entry.crc {
                        return Err(corrupt("crc or length mismatch".into()));
                    }
                    Ok(Bytes::from_vec(payload))
                }
            }
        }
    }

    /// Reads a dup entry's stored bytes (and blob flags) from the shared
    /// dedup arena. A missing arena or blob is loud per-entry corruption:
    /// the arena refcounts blobs and syncs them before the manifest line
    /// that references them, so absence here means real damage — never
    /// something to skip silently.
    fn dedup_read(&self, block_id: &str, seq: u64, hash: u64) -> Result<(Vec<u8>, u8), StoreError> {
        let corrupt = |detail: String| StoreError::Corrupt {
            block_id: block_id.to_string(),
            seq,
            detail,
        };
        let idx =
            self.dedup.read().clone().ok_or_else(|| {
                corrupt(format!("dup entry {hash:016x} but no dedup arena attached"))
            })?;
        let (stored, flags, _raw_len, _payload_crc) = idx
            .read_stored(hash)
            .map_err(|e| corrupt(format!("dedup blob {hash:016x}: {e}")))?;
        Ok((stored, flags))
    }

    /// The stored bytes of a delta-bearing entry (the delta frame itself),
    /// wherever they live — a segment slice or a dedup blob.
    fn delta_frame_bytes(
        &self,
        block_id: &str,
        seq: u64,
        entry: &IndexEntry,
    ) -> Result<Bytes, StoreError> {
        match &entry.loc {
            Location::Segment {
                seg, offset, len, ..
            } => self.stored_slice(block_id, seq, *seg, *offset, *len),
            Location::Dup { hash, .. } => {
                Ok(Bytes::from_vec(self.dedup_read(block_id, seq, *hash)?.0))
            }
            Location::File(_) => unreachable!("delta entries are never legacy files"),
        }
    }

    /// Resolves a delta entry: walks the chain toward its keyframe,
    /// stopping early at a per-block restore-cache hit, then applies the
    /// collected frames newest-last. Every reconstructed level is verified
    /// against its index entry's length and CRC, and every frame's
    /// recorded base CRC is checked against the base entry — a base that
    /// was re-put with different content fails loudly as corruption
    /// instead of silently decoding garbage.
    fn resolve_delta(
        &self,
        block_id: &str,
        seq: u64,
        entry: &IndexEntry,
    ) -> Result<Bytes, StoreError> {
        let corrupt = |s: u64, detail: String| StoreError::Corrupt {
            block_id: block_id.to_string(),
            seq: s,
            detail,
        };
        let mut span = flor_obs::span(flor_obs::Category::RestoreChain, "chain_resolve");
        let t0 = flor_obs::clock::now_ns();
        // The requested seq itself may be the cached reconstruction —
        // repeated reads of one delta entry must not re-walk its chain.
        {
            let cache = self.restore_cache.lock();
            if let Some((cseq, ccrc, cbytes)) = cache.get(block_id) {
                if *cseq == seq && *ccrc == entry.crc {
                    self.reads
                        .restore_cache_hits
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(cbytes.clone());
                }
            }
        }
        // Walk down: collect (seq, entry, frame) from the target toward
        // the keyframe.
        let mut frames: Vec<(u64, IndexEntry, Bytes)> = Vec::new();
        let mut cur_seq = seq;
        let mut cur = entry.clone();
        let base: Bytes = loop {
            let Some((base_seq, _depth)) = cur.loc.delta_link() else {
                // Keyframe reached: decode it plainly.
                break self.read_keyframe_payload(block_id, cur_seq, &cur)?;
            };
            let frame = self.delta_frame_bytes(block_id, cur_seq, &cur)?;
            let h = delta::header(frame.as_ref())
                .map_err(|e| corrupt(cur_seq, format!("delta frame: {}", e.message)))?;
            if h.base_seq != base_seq || h.raw_len != cur.raw {
                return Err(corrupt(
                    cur_seq,
                    "delta frame header disagrees with manifest".into(),
                ));
            }
            if frames.len() >= 1024 {
                return Err(corrupt(cur_seq, "delta chain implausibly deep".into()));
            }
            let base_entry = self
                .lookup(block_id, base_seq)
                .ok_or_else(|| corrupt(cur_seq, format!("delta base seq {base_seq} is missing")))?;
            if h.base_crc != base_entry.crc {
                return Err(corrupt(
                    cur_seq,
                    format!("delta base seq {base_seq} changed since encode (re-put?)"),
                ));
            }
            frames.push((cur_seq, cur, frame));
            // Restore-cache hit on the base ends the walk.
            {
                let cache = self.restore_cache.lock();
                if let Some((cseq, ccrc, cbytes)) = cache.get(block_id) {
                    if *cseq == base_seq && *ccrc == base_entry.crc {
                        self.reads
                            .restore_cache_hits
                            .fetch_add(1, Ordering::Relaxed);
                        break cbytes.clone();
                    }
                }
            }
            cur_seq = base_seq;
            cur = base_entry;
        };
        // Apply frames keyframe-first.
        let mut payload = base;
        for (fseq, fentry, frame) in frames.iter().rev() {
            let decoded = delta::decode(frame.as_ref(), payload.as_ref())
                .map_err(|e| corrupt(*fseq, format!("delta decode: {}", e.message)))?;
            if decoded.len() as u64 != fentry.raw || crc32(&decoded) != fentry.crc {
                return Err(corrupt(*fseq, "crc or length mismatch".into()));
            }
            self.reads.chain_links.fetch_add(1, Ordering::Relaxed);
            payload = Bytes::from_vec(decoded);
        }
        self.restore_cache_put(block_id, seq, entry.crc, payload.clone());
        span.set_args(frames.len() as u64, payload.len() as u64);
        flor_obs::histogram!("store.chain_resolve_ns").observe(flor_obs::clock::since_ns(t0));
        Ok(payload)
    }

    /// Parks the most recent reconstruction for a block (bounded by
    /// [`RESTORE_CACHE_BUDGET_BYTES`]; one entry per block).
    fn restore_cache_put(&self, block_id: &str, seq: u64, crc: u32, payload: Bytes) {
        let incoming = payload.len() as u64;
        let mut cache = self.restore_cache.lock();
        while self.restore_cache_bytes.load(Ordering::Relaxed) + incoming
            > RESTORE_CACHE_BUDGET_BYTES
            && !cache.is_empty()
        {
            let victim = cache.keys().next().expect("non-empty cache").clone();
            if let Some((_, _, evicted)) = cache.remove(&victim) {
                self.restore_cache_bytes
                    .fetch_sub(evicted.len() as u64, Ordering::Relaxed);
            }
        }
        if let Some((_, _, old)) = cache.insert(block_id.to_string(), (seq, crc, payload)) {
            self.restore_cache_bytes
                .fetch_sub(old.len() as u64, Ordering::Relaxed);
        }
        self.restore_cache_bytes
            .fetch_add(incoming, Ordering::Relaxed);
    }

    /// The delta chain link of a stored checkpoint: `Some((base_seq,
    /// depth))` for delta entries, `None` for keyframes (or when the
    /// checkpoint does not exist). Operator surfaces and the prefetcher
    /// use this to reason about chains without reading payloads.
    pub fn chain_info(&self, block_id: &str, seq: u64) -> Option<(u64, u32)> {
        self.lookup(block_id, seq)?.loc.delta_link()
    }

    /// The newest committed version of `block_id` strictly below
    /// `before_seq`, as a delta base: racing materializer batches commit
    /// out of order, so when the write cache has no usable base the stage
    /// path chains against whatever *is* durable (frames record their
    /// base seq explicitly, so a gap chain — seq 4 on seq 1 — is just as
    /// valid as a dense one).
    fn delta_base_from_index(&self, block_id: &str, before_seq: u64) -> Option<DeltaBase> {
        let (seq, depth, crc) = {
            let shard = self.shards[Self::shard_of(block_id)].read();
            let seqs = shard.get(block_id)?;
            let (seq, entry) = seqs.range(..before_seq).next_back()?;
            (
                *seq,
                entry.loc.delta_link().map_or(0, |(_, d)| d),
                entry.crc,
            )
        };
        let payload = self.get_bytes(block_id, seq).ok()?;
        Some(DeltaBase {
            seq,
            depth,
            crc,
            payload,
        })
    }

    /// O(1) snapshot of the delta read counters: `(delta_reads,
    /// chain_links_resolved, restore_cache_hits)`. Replay wraps its run in
    /// two snapshots to attribute chain work to one replay on a pooled
    /// handle without paying a full [`CheckpointStore::stats`] walk.
    pub fn delta_read_counters(&self) -> (u64, u64, u64) {
        (
            self.reads.delta_reads.load(Ordering::Relaxed),
            self.reads.chain_links.load(Ordering::Relaxed),
            self.reads.restore_cache_hits.load(Ordering::Relaxed),
        )
    }

    /// Reads and verifies the checkpoint payload for `(block_id, seq)`.
    /// Compatibility wrapper over [`CheckpointStore::get_bytes`] (pays one
    /// copy into an owned `Vec`; hot paths should use `get_bytes`).
    pub fn get(&self, block_id: &str, seq: u64) -> Result<Vec<u8>, StoreError> {
        Ok(self.get_bytes(block_id, seq)?.to_vec())
    }

    /// A *self-contained* stored representation of a checkpoint, suitable
    /// for shipping to object storage: non-delta entries return their
    /// on-disk bytes verbatim; delta entries are resolved through their
    /// chain and re-compressed standalone (a delta frame without its base
    /// would be unrestorable in a bucket). The `bool` reports whether a
    /// chain was resolved.
    pub fn export_stored(&self, block_id: &str, seq: u64) -> Result<(Vec<u8>, bool), StoreError> {
        if self.chain_info(block_id, seq).is_some() {
            let payload = self.get_bytes(block_id, seq)?;
            let compressed =
                compress_auto_effort(payload.as_ref(), self.effort.load(Ordering::Relaxed));
            let stored = if compressed.len() >= payload.len() {
                payload.to_vec()
            } else {
                compressed
            };
            return Ok((stored, true));
        }
        Ok((self.get_stored(block_id, seq)?, false))
    }

    /// The stored (possibly compressed; for delta entries, the raw delta
    /// frame) representation of a checkpoint as it sits on disk. Spooling
    /// uses [`CheckpointStore::export_stored`] instead, which resolves
    /// chains into self-contained objects.
    pub fn get_stored(&self, block_id: &str, seq: u64) -> Result<Vec<u8>, StoreError> {
        self.read_with_relocation_retry(block_id, seq, |entry| match &entry.loc {
            Location::File(file) => Ok(fs::read(self.root.join("ckpt").join(file))?),
            Location::Segment {
                seg, offset, len, ..
            } => Ok(self
                .stored_slice(block_id, seq, *seg, *offset, *len)?
                .to_vec()),
            Location::Dup { hash, .. } => Ok(self.dedup_read(block_id, seq, *hash)?.0),
        })
    }

    /// Returns the shared whole-segment buffer, establishing it at most
    /// once per cache residency. `min_len` forces a re-fault when a cached
    /// buffer predates appends to the active segment.
    fn segment_bytes(&self, seg: u64, min_len: u64) -> Result<Bytes, StoreError> {
        {
            let cache = self.seg_cache.read();
            if let Some(b) = cache.get(&seg) {
                if b.bytes.len() as u64 >= min_len {
                    b.last_use.store(
                        self.seg_cache_tick.fetch_add(1, Ordering::Relaxed) + 1,
                        Ordering::Relaxed,
                    );
                    self.reads.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(b.bytes.clone());
                }
            }
        }
        self.reads.cache_misses.fetch_add(1, Ordering::Relaxed);
        let b = self.fault_segment(seg)?;
        let incoming = b.len() as u64;
        let mut cache = self.seg_cache.write();
        // Demote least-recently-used residents until the byte budget fits —
        // never the whole cache, which would periodically cold-start every
        // concurrent reader. (Evicted buffers stay alive for readers still
        // holding slices of them; the budget bounds what the *cache* pins —
        // heap for whole-file reads, address space for mmaps.)
        while self.seg_cache_bytes.load(Ordering::Relaxed) + incoming > SEGMENT_CACHE_BUDGET_BYTES
            && !cache.is_empty()
        {
            let victim = *cache
                .iter()
                .min_by_key(|(_, buf)| buf.last_use.load(Ordering::Relaxed))
                .map(|(id, _)| id)
                .expect("non-empty cache");
            if let Some(evicted) = cache.remove(&victim) {
                self.seg_cache_bytes
                    .fetch_sub(evicted.bytes.len() as u64, Ordering::Relaxed);
            }
        }
        let stamped = SegBuffer {
            bytes: b.clone(),
            last_use: AtomicU64::new(self.seg_cache_tick.fetch_add(1, Ordering::Relaxed) + 1),
        };
        if let Some(old) = cache.insert(seg, stamped) {
            self.seg_cache_bytes
                .fetch_sub(old.bytes.len() as u64, Ordering::Relaxed);
        }
        self.seg_cache_bytes.fetch_add(incoming, Ordering::Relaxed);
        Ok(b)
    }

    /// Establishes a segment's shared buffer: the local file first, then —
    /// when the local copy was demoted — fault-back from the spool tier.
    fn fault_segment(&self, seg: u64) -> Result<Bytes, StoreError> {
        match self.read_segment_file(&self.segment_path(seg)) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let Some(spool) = self.spool_dir.read().clone() else {
                    return Err(StoreError::Io(e));
                };
                match self.read_segment_file(&spool_segment_path(&spool, seg)) {
                    Ok(b) => {
                        self.tier.cold_reads.fetch_add(1, Ordering::Relaxed);
                        flor_obs::counter!("store.tier_cold_reads").inc();
                        Ok(b)
                    }
                    // Report the *canonical* location's NotFound: the
                    // relocation-retry contract keys off it.
                    Err(ce) if ce.kind() == std::io::ErrorKind::NotFound => Err(StoreError::Io(e)),
                    Err(ce) => Err(StoreError::Io(ce)),
                }
            }
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// One segment file → shared buffer. Under [`SegmentRead::Mmap`] the
    /// buffer is a file-backed mapping (the kernel faults in only the
    /// pages reads touch; the memory stays reclaimable page cache), with a
    /// transparent whole-file heap fallback when mapping is unsupported or
    /// refused. `NotFound` from the open propagates untouched — both the
    /// relocation retry and the spool fault-back depend on it.
    fn read_segment_file(&self, path: &Path) -> std::io::Result<Bytes> {
        if self.opts.segment_read == SegmentRead::Mmap {
            let file = fs::File::open(path)?;
            let len = file.metadata()?.len() as usize;
            if let Ok(region) = MmapRegion::map(&file, len) {
                self.tier.mmap_faults.fetch_add(1, Ordering::Relaxed);
                flor_obs::counter!("store.mmap_faults").inc();
                return Ok(Bytes::from_file_backed_owner(region));
            }
            // Soft miss (no platform backend, or the kernel refused the
            // mapping): fall through to the heap read.
        }
        Ok(Bytes::from_vec(fs::read(path)?))
    }

    /// True if a checkpoint exists for `(block_id, seq)`.
    pub fn contains(&self, block_id: &str, seq: u64) -> bool {
        self.shards[Self::shard_of(block_id)]
            .read()
            .get(block_id)
            .is_some_and(|m| m.contains_key(&seq))
    }

    /// Number of checkpoints stored for a block.
    pub fn count(&self, block_id: &str) -> u64 {
        self.shards[Self::shard_of(block_id)]
            .read()
            .get(block_id)
            .map_or(0, |m| m.len() as u64)
    }

    /// Highest stored sequence number for a block, if any.
    pub fn latest_seq(&self, block_id: &str) -> Option<u64> {
        self.shards[Self::shard_of(block_id)]
            .read()
            .get(block_id)
            .and_then(|m| m.keys().next_back().copied())
    }

    /// All `(block_id, seq)` pairs, sorted.
    pub fn entries(&self) -> Vec<(String, u64)> {
        let mut all: Vec<(String, u64)> = Vec::new();
        for shard in &self.shards {
            let m = shard.read();
            for (block, seqs) in m.iter() {
                for seq in seqs.keys() {
                    all.push((block.clone(), *seq));
                }
            }
        }
        all.sort();
        all
    }

    /// Total stored payload bytes across all checkpoints. O(1): a running
    /// counter maintained on put.
    pub fn total_stored_bytes(&self) -> u64 {
        self.stored_total.load(Ordering::Relaxed)
    }

    /// Total uncompressed bytes across all checkpoints. O(1), same scheme.
    pub fn total_raw_bytes(&self) -> u64 {
        self.raw_total.load(Ordering::Relaxed)
    }

    // ---- stats -------------------------------------------------------------

    /// Aggregate storage-engine counters (segments, dead bytes, read/cache
    /// counters, compactions). Walks the index and stats segment files —
    /// cheap (segments are few), but not O(1); intended for `flor store
    /// stats` and operator surfaces, not hot paths.
    pub fn stats(&self) -> StoreStats {
        let mut s = StoreStats {
            raw_bytes: self.total_raw_bytes(),
            stored_bytes: self.total_stored_bytes(),
            reads: self.reads.reads.load(Ordering::Relaxed),
            zero_copy_reads: self.reads.zero_copy.load(Ordering::Relaxed),
            segment_cache_hits: self.reads.cache_hits.load(Ordering::Relaxed),
            segment_cache_misses: self.reads.cache_misses.load(Ordering::Relaxed),
            compactions: self.gc.runs.load(Ordering::Relaxed),
            compaction_reclaimed_bytes: self.gc.reclaimed.load(Ordering::Relaxed),
            delta_reads: self.reads.delta_reads.load(Ordering::Relaxed),
            chain_links_resolved: self.reads.chain_links.load(Ordering::Relaxed),
            restore_cache_hits: self.reads.restore_cache_hits.load(Ordering::Relaxed),
            ..StoreStats::default()
        };
        // Live framing overhead counts as live when estimating dead bytes.
        let mut live_overhead = 0u64;
        for shard in &self.shards {
            let m = shard.read();
            for (block, seqs) in m.iter() {
                for e in seqs.values() {
                    s.entries += 1;
                    match &e.loc {
                        Location::Segment { delta, .. } => {
                            s.segment_entries += 1;
                            s.live_segment_bytes += e.stored;
                            live_overhead += ENTRY_HEADER_BYTES + block.len() as u64;
                            let depth = delta.map_or(0, |(_, d)| d) as usize;
                            s.chain_depth_hist[depth.min(CHAIN_DEPTH_BUCKETS - 1)] += 1;
                            if delta.is_some() {
                                s.delta_entries += 1;
                            } else {
                                s.keyframe_entries += 1;
                            }
                        }
                        Location::Dup { delta, .. } => {
                            s.dedup_entries += 1;
                            let depth = delta.map_or(0, |(_, d)| d) as usize;
                            s.chain_depth_hist[depth.min(CHAIN_DEPTH_BUCKETS - 1)] += 1;
                            if delta.is_some() {
                                s.delta_entries += 1;
                            } else {
                                s.keyframe_entries += 1;
                            }
                        }
                        Location::File(_) => {
                            s.legacy_entries += 1;
                            s.keyframe_entries += 1;
                            s.chain_depth_hist[0] += 1;
                        }
                    }
                }
            }
        }
        if let Ok(rd) = fs::read_dir(self.seg_dir()) {
            for entry in rd.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with('.') || !name.ends_with(".seg") {
                    continue;
                }
                let Ok(meta) = entry.metadata() else { continue };
                s.segments += 1;
                s.segment_disk_bytes += meta.len();
                live_overhead += SEGMENT_MAGIC.len() as u64;
                // Sealed? Check the trailer magic and charge the footer as
                // live framing.
                if let Ok(Some(footer_len)) = read_trailer_footer_len(&entry.path(), meta.len()) {
                    s.sealed_segments += 1;
                    live_overhead += footer_len + TRAILER_BYTES;
                }
            }
        }
        s.dead_segment_bytes = s
            .segment_disk_bytes
            .saturating_sub(s.live_segment_bytes + live_overhead);
        s.dedup_hits = self.tier.dedup_hits.load(Ordering::Relaxed);
        s.tier_cold_reads = self.tier.cold_reads.load(Ordering::Relaxed);
        s.tier_demotions = self.tier.demotions.load(Ordering::Relaxed);
        s.mmap_faults = self.tier.mmap_faults.load(Ordering::Relaxed);
        s.compression_effort = u64::from(self.effort.load(Ordering::Relaxed));
        s.tier_cold_segments = self.cold_segment_ids().len() as u64;
        s
    }

    // ---- compaction / GC ---------------------------------------------------

    /// Rewrites all live checkpoints into fresh, sealed segments and
    /// deletes the old segments and any migrated legacy files. Crash-safe:
    /// new segments are written to temp siblings, fsynced, and renamed in;
    /// the MANIFEST swap is atomic; old data is deleted only after the new
    /// manifest is in place. A crash at any point leaves either the
    /// pre-compaction or the post-compaction view (the orphaned half is
    /// reported at the next open and reclaimed by the next compaction
    /// pass). Refuses (with
    /// [`StoreError::Corrupt`]) to destroy data it cannot re-read.
    ///
    /// Writers block for the duration (the active segment is consumed);
    /// readers keep going throughout. Those guarantees are *in-process*:
    /// compaction requires exclusive cross-process ownership of the store
    /// directory — it rewrites the MANIFEST and deletes segments, either
    /// of which would sever another process's kept-open handles. Don't
    /// compact a store a different process is actively recording into
    /// (registry-managed runs never share a store directory across
    /// concurrent recorders, so `Registry::compact_run` is safe there).
    pub fn compact(&self) -> Result<CompactionReport, StoreError> {
        self.ensure_writable()?;
        let mut span = flor_obs::span(flor_obs::Category::Compact, "compact");
        let t0 = flor_obs::clock::now_ns();
        let mut w = self.writer.lock();
        // The active segment's live entries get rewritten like everyone
        // else's; stop appending to it.
        w.active = None;

        let live = self.sorted_index();
        // Everything currently in seg/ is an "old" segment (new ids are
        // allocated past next_seg, so the two sets cannot collide) —
        // including orphans a crashed compaction left behind, which open
        // only *reports*. Stale temp siblings are reclaimed here too:
        // compaction holds the writer lock, so unlike open it cannot be
        // racing this store's own writers.
        let mut old_segs: BTreeSet<u64> = BTreeSet::new();
        if let Ok(rd) = fs::read_dir(self.seg_dir()) {
            for entry in rd.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with('.') {
                    let _ = fs::remove_file(entry.path());
                    continue;
                }
                if let Some(id) = name
                    .strip_suffix(".seg")
                    .and_then(|n| n.parse::<u64>().ok())
                {
                    old_segs.insert(id);
                }
            }
        }

        let mut report = CompactionReport::default();
        let mut old_bytes = 0u64;
        for &id in &old_segs {
            old_bytes += fs::metadata(self.segment_path(id))
                .map(|m| m.len())
                .unwrap_or(0);
        }

        // Blocks holding any delta entry are re-encoded payload-by-payload
        // (chains resolved, then folded or re-chained under the current
        // keyframe policy); every other block's entries move their stored
        // bytes verbatim. Group the verbatim entries by source segment so
        // old segments are read — and freed — one at a time: peak memory
        // is one old segment plus the new segment being assembled, never
        // the whole store.
        let delta_blocks: HashSet<String> = live
            .iter()
            .filter(|(_, _, e)| e.loc.delta_link().is_some())
            .map(|(block, _, _)| block.clone())
            .collect();
        type SegEntryRef = (String, u64, u64, u32, u64, u32, bool);
        let mut by_seg: BTreeMap<u64, Vec<SegEntryRef>> = BTreeMap::new();
        let mut legacy: Vec<(String, u64, String, u64, u32)> = Vec::new();
        let mut reencode: BTreeMap<String, Vec<(u64, IndexEntry)>> = BTreeMap::new();
        let mut reencoded_legacy: Vec<String> = Vec::new();
        for (block, seq, e) in &live {
            if delta_blocks.contains(block) {
                reencode
                    .entry(block.clone())
                    .or_default()
                    .push((*seq, e.clone()));
                // A re-encoded block may still hold legacy v1 files; they
                // migrate through the re-encode walk but must be deleted
                // (and accounted) like any other migrated file.
                if let Location::File(file) = &e.loc {
                    reencoded_legacy.push(file.clone());
                }
                continue;
            }
            match &e.loc {
                Location::Segment {
                    seg,
                    offset,
                    len,
                    raw_stored,
                    ..
                } => {
                    by_seg.entry(*seg).or_default().push((
                        block.clone(),
                        *seq,
                        *offset,
                        *len,
                        e.raw,
                        e.crc,
                        *raw_stored,
                    ));
                }
                Location::File(file) => {
                    legacy.push((block.clone(), *seq, file.clone(), e.raw, e.crc));
                }
                Location::Dup { .. } => {
                    // Dup bytes live in the shared arena, not in any local
                    // segment: there is nothing to rewrite, and touching
                    // the reference would disturb the arena refcount. The
                    // entry survives the manifest swap as-is.
                }
            }
        }

        if live.is_empty() && old_segs.is_empty() {
            return Ok(report);
        }

        // Rolling writer over new sealed segments (no decompression —
        // compaction moves stored representations verbatim): each fills to
        // the target size, then lands via temp sibling + fsync + rename.
        // An interrupted pass leaves only temp junk or unreferenced
        // segments, both invisible to the index and reclaimed by the next
        // compaction.
        struct NewSeg {
            id: u64,
            bytes: Vec<u8>,
            footer: Vec<SegmentIndexEntry>,
        }
        struct SegmentRewriter {
            cur: Option<NewSeg>,
            new_locs: Vec<(String, u64, Location, u64)>,
            new_segments: Vec<u64>,
            bytes_written: u64,
        }
        impl SegmentRewriter {
            // One parameter per on-disk entry field; splitting further
            // would just re-bundle them into an ad-hoc struct.
            #[allow(clippy::too_many_arguments)]
            fn push(
                &mut self,
                store: &CheckpointStore,
                block: &str,
                seq: u64,
                raw: u64,
                crc: u32,
                raw_stored: bool,
                delta: Option<(u64, u32)>,
                stored: &[u8],
            ) -> Result<(), StoreError> {
                let ns = self.cur.get_or_insert_with(|| {
                    let id = store.next_seg.fetch_add(1, Ordering::Relaxed);
                    let mut bytes =
                        Vec::with_capacity((store.opts.segment_target_bytes as usize).min(1 << 20));
                    bytes.extend_from_slice(SEGMENT_MAGIC);
                    NewSeg {
                        id,
                        bytes,
                        footer: Vec::new(),
                    }
                });
                let offset = append_entry(
                    &mut ns.bytes,
                    block,
                    seq,
                    raw,
                    crc,
                    raw_stored,
                    delta.is_some(),
                    stored,
                );
                ns.footer.push(SegmentIndexEntry {
                    block_id: block.to_string(),
                    seq,
                    offset,
                    raw,
                    stored: stored.len() as u32,
                    crc,
                    raw_stored,
                    delta_stored: delta.is_some(),
                });
                self.new_locs.push((
                    block.to_string(),
                    seq,
                    Location::Segment {
                        seg: ns.id,
                        offset,
                        len: stored.len() as u32,
                        raw_stored,
                        delta,
                    },
                    stored.len() as u64,
                ));
                if ns.bytes.len() as u64 >= store.opts.segment_target_bytes {
                    self.flush(store)?;
                }
                Ok(())
            }

            fn flush(&mut self, store: &CheckpointStore) -> Result<(), StoreError> {
                if let Some(full) = self.cur.take() {
                    self.bytes_written +=
                        store.write_compacted_segment(full.id, full.bytes, &full.footer)?;
                    self.new_segments.push(full.id);
                }
                Ok(())
            }
        }
        let mut rewriter = SegmentRewriter {
            cur: None,
            new_locs: Vec::with_capacity(live.len()),
            new_segments: Vec::new(),
            bytes_written: 0,
        };

        for (seg_id, entries) in &by_seg {
            // Through the buffer pool, not a bare `fs::read`: a demoted
            // segment's bytes fault back from the spool tier here exactly
            // like on the read path.
            let need = entries
                .iter()
                .map(|(_, _, offset, len, ..)| offset + *len as u64)
                .max()
                .unwrap_or(0);
            let data = self.segment_bytes(*seg_id, need)?;
            for (block, seq, offset, len, raw, crc, raw_stored) in entries {
                let end = (offset + *len as u64) as usize;
                if data.len() < end {
                    return Err(StoreError::Corrupt {
                        block_id: block.clone(),
                        seq: *seq,
                        detail: format!("segment {seg_id} truncated; refusing to compact"),
                    });
                }
                rewriter.push(
                    self,
                    block,
                    *seq,
                    *raw,
                    *crc,
                    *raw_stored,
                    None,
                    &data.as_ref()[*offset as usize..end],
                )?;
                report.rewritten_entries += 1;
            }
            // `data` (the whole old segment) drops here, before the next
            // segment is read.
        }
        let mut migrated_legacy: Vec<String> = Vec::new();
        for (block, seq, file, raw, crc) in &legacy {
            let path = self.root.join("ckpt").join(file);
            old_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let stored = fs::read(&path)?;
            // Legacy files are always compressed (raw_stored = false).
            rewriter.push(self, block, *seq, *raw, *crc, false, None, &stored)?;
            migrated_legacy.push(file.clone());
            report.migrated_files += 1;
        }

        // Delta-bearing blocks: resolve every payload through the normal
        // chain-aware read path (the old segments are still in place),
        // then re-encode under the current keyframe policy. Long or
        // orphan-prone chains fold into fresh keyframes here; healthy
        // chains re-chain against their rewritten neighbors. An entry
        // whose payload cannot be reconstructed (bit-rot, a re-put base)
        // is moved *verbatim* — stored bytes and chain link unchanged, so
        // it keeps failing loudly at read time — instead of aborting the
        // whole pass: one corrupt checkpoint must not permanently disable
        // GC for the entire store.
        let k = self.opts.delta_keyframe_interval;
        let min_bytes = self.opts.delta_min_bytes;
        let effort = self.effort.load(Ordering::Relaxed);
        for (block, mut entries) in reencode {
            entries.sort_by_key(|(seq, _)| *seq);
            let mut prev: Option<DeltaBase> = None;
            for (seq, entry) in entries {
                if let Location::Dup { .. } = &entry.loc {
                    // Arena-resident: kept verbatim (see the partition
                    // above), but its payload still serves as the chain
                    // base for the block's later re-encoded entries.
                    if k > 0 {
                        if let Ok(payload) = self.read_payload(&block, seq, &entry) {
                            if payload.len() as u64 >= min_bytes {
                                prev = Some(DeltaBase {
                                    seq,
                                    depth: entry.loc.delta_link().map_or(0, |(_, d)| d),
                                    crc: entry.crc,
                                    payload,
                                });
                            }
                        }
                    }
                    continue;
                }
                let payload = match self.read_payload(&block, seq, &entry) {
                    Ok(p) => p,
                    Err(_) => {
                        let (stored, raw_stored, delta_link) = match &entry.loc {
                            Location::Segment {
                                seg,
                                offset,
                                len,
                                raw_stored,
                                delta,
                            } => (
                                self.stored_slice(&block, seq, *seg, *offset, *len)?
                                    .to_vec(),
                                *raw_stored,
                                *delta,
                            ),
                            Location::File(file) => {
                                (fs::read(self.root.join("ckpt").join(file))?, false, None)
                            }
                            Location::Dup { .. } => {
                                unreachable!("dup entries are skipped before the read")
                            }
                        };
                        rewriter.push(
                            self, &block, seq, entry.raw, entry.crc, raw_stored, delta_link,
                            &stored,
                        )?;
                        report.rewritten_entries += 1;
                        // `prev` stays: the next entry can still chain
                        // against the last successfully decoded payload.
                        continue;
                    }
                };
                let mut encoded: Option<(Vec<u8>, u64, u32)> = None;
                if k > 0 && payload.len() as u64 >= min_bytes {
                    if let Some(p) = &prev {
                        if p.seq < seq && p.depth + 1 < k {
                            if let Some(f) = delta::encode(
                                p.payload.as_ref(),
                                payload.as_ref(),
                                p.seq,
                                p.crc,
                                p.depth + 1,
                            ) {
                                encoded = Some((f, p.seq, p.depth + 1));
                            }
                        }
                    }
                }
                let (stored, raw_stored, delta_link) = arbitrate_stored(
                    encoded,
                    payload.as_ref(),
                    self.opts.compressor,
                    true,
                    effort,
                );
                let old_depth = entry.loc.delta_link().map_or(0, |(_, d)| d);
                let new_depth = delta_link.map_or(0, |(_, d)| d);
                if old_depth > 0 && new_depth == 0 {
                    report.chains_folded += 1;
                }
                report.reencoded_entries += 1;
                report.rewritten_entries += 1;
                rewriter.push(
                    self, &block, seq, entry.raw, entry.crc, raw_stored, delta_link, &stored,
                )?;
                if k > 0 && payload.len() as u64 >= min_bytes {
                    prev = Some(DeltaBase {
                        seq,
                        depth: new_depth,
                        crc: entry.crc,
                        payload,
                    });
                }
            }
        }
        for file in &reencoded_legacy {
            let path = self.root.join("ckpt").join(file);
            old_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            migrated_legacy.push(file.clone());
            report.migrated_files += 1;
        }
        rewriter.flush(self)?;
        let new_locs = rewriter.new_locs;
        let new_bytes_total = rewriter.bytes_written;
        report.new_segments = rewriter.new_segments;
        // Persist the renames before the manifest references them.
        if let Ok(d) = fs::File::open(self.seg_dir()) {
            let _ = d.sync_all();
        }

        // Swap the index over to the new locations, then the manifest
        // (atomically). Readers between these two steps see the new
        // segments; readers before see the old ones — both complete views.
        for (block, seq, loc, stored_len) in new_locs {
            let shard = &self.shards[Self::shard_of(&block)];
            let mut m = shard.write();
            if let Some(e) = m.get_mut(&block).and_then(|seqs| seqs.get_mut(&seq)) {
                e.loc = loc;
                // Re-encoded entries may change stored size; keep the O(1)
                // byte totals truthful.
                if e.stored != stored_len {
                    self.stored_total.fetch_add(stored_len, Ordering::Relaxed);
                    self.stored_total.fetch_sub(e.stored, Ordering::Relaxed);
                    e.stored = stored_len;
                }
            }
        }
        self.rewrite_manifest()?;

        // GC: the old segments and migrated legacy files are now
        // unreferenced by the durable manifest.
        for id in &old_segs {
            if fs::remove_file(self.segment_path(*id)).is_ok() {
                report.segments_removed += 1;
            }
        }
        // Every pre-compaction segment — including ones demoted to the
        // spool — was either rewritten into a fresh local segment or dead,
        // so no spool copy is referenced anymore.
        if let Some(spool) = self.spool_dir.read().clone() {
            if let Ok(rd) = fs::read_dir(spool.join("segments")) {
                for entry in rd.flatten() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if name
                        .strip_suffix(".seg")
                        .is_some_and(|s| s.parse::<u64>().is_ok())
                    {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }
        for file in &migrated_legacy {
            if fs::remove_file(self.root.join("ckpt").join(file)).is_ok() {
                report.legacy_files_removed += 1;
            }
        }
        {
            let mut cache = self.seg_cache.write();
            cache.clear();
            self.seg_cache_bytes.store(0, Ordering::Relaxed);
        }
        // Chain shapes changed: the delta caches must not serve stale
        // depths or reconstructions. (Content-wise they'd still be right,
        // but the depth bookkeeping governs future chain growth.)
        {
            let mut wcache = self.delta_write.lock();
            wcache.clear();
            self.delta_write_bytes.store(0, Ordering::Relaxed);
        }
        self.delta_rejects.lock().clear();
        {
            let mut cache = self.restore_cache.lock();
            cache.clear();
            self.restore_cache_bytes.store(0, Ordering::Relaxed);
        }

        report.reclaimed_bytes = old_bytes.saturating_sub(new_bytes_total);
        self.gc.runs.fetch_add(1, Ordering::Relaxed);
        self.gc
            .reclaimed
            .fetch_add(report.reclaimed_bytes, Ordering::Relaxed);
        drop(w);
        span.set_args(report.rewritten_entries, report.reclaimed_bytes);
        flor_obs::histogram!("store.compact_ns").observe(flor_obs::clock::since_ns(t0));
        flor_obs::counter!("store.compactions").inc();
        Ok(report)
    }

    /// Lands one compacted segment: footer appended, written to a temp
    /// sibling, fsynced, renamed into place. Returns the bytes written.
    fn write_compacted_segment(
        &self,
        id: u64,
        mut bytes: Vec<u8>,
        footer: &[SegmentIndexEntry],
    ) -> Result<u64, StoreError> {
        bytes.extend_from_slice(&encode_footer(footer));
        let dest = self.segment_path(id);
        let tmp = self
            .seg_dir()
            .join(format!(".compact-{id:08}.seg.tmp.{}", std::process::id()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &dest)?;
        Ok(bytes.len() as u64)
    }

    /// Runs [`CheckpointStore::compact`] only when the estimated dead
    /// fraction of segment disk bytes reaches `garbage_ratio` (0.0–1.0).
    pub fn maybe_compact(
        &self,
        garbage_ratio: f64,
    ) -> Result<Option<CompactionReport>, StoreError> {
        let s = self.stats();
        if s.segment_disk_bytes > 0
            && s.dead_segment_bytes > 0
            && (s.dead_segment_bytes as f64) >= garbage_ratio * (s.segment_disk_bytes as f64)
        {
            return Ok(Some(self.compact()?));
        }
        Ok(None)
    }

    /// Spawns [`CheckpointStore::compact`] on a background thread. Writers
    /// queue behind it; readers are unaffected.
    pub fn compact_in_background(
        self: &std::sync::Arc<Self>,
    ) -> std::thread::JoinHandle<Result<CompactionReport, StoreError>> {
        let store = self.clone();
        std::thread::spawn(move || store.compact())
    }

    // ---- tiered storage ----------------------------------------------------

    /// Attaches a cold-tier spool directory: freshly sealed segments ship
    /// there in the background, [`CheckpointStore::demote_cold_segments`]
    /// may drop local copies, and reads fault demoted segments back
    /// through the buffer pool. Persisted via a `SPOOL` pointer file so
    /// reopens resolve demoted segments transparently.
    pub fn attach_spool(&self, dir: impl Into<PathBuf>) -> Result<(), StoreError> {
        self.ensure_writable()?;
        let dir = dir.into();
        fs::create_dir_all(dir.join("segments"))?;
        fs::write(
            self.root.join(SPOOL_POINTER_FILE),
            format!("{}\n", dir.display()),
        )?;
        *self.spool_dir.write() = Some(dir);
        Ok(())
    }

    /// Attaches a shared content-addressed dedup arena: subsequent
    /// commits intern keyframe-sized stored payloads there and write
    /// `@dup` reference entries on hits. Persisted via a `DEDUP` pointer
    /// file so reopens (and read-only inspections) resolve references.
    pub fn attach_dedup(&self, dir: impl Into<PathBuf>) -> Result<(), StoreError> {
        self.ensure_writable()?;
        let dir = dir.into();
        let idx = DedupIndex::open(&dir)?;
        fs::write(
            self.root.join(DEDUP_POINTER_FILE),
            format!("{}\n", dir.display()),
        )?;
        *self.dedup.write() = Some(idx);
        Ok(())
    }

    /// The attached dedup arena, if any.
    pub fn dedup_index(&self) -> Option<Arc<DedupIndex>> {
        self.dedup.read().clone()
    }

    /// Content addresses of every live `@dup` reference in this store's
    /// index (with multiplicity). Retention releases each against the
    /// arena before deleting the store directory, so pruning this run can
    /// never sever a surviving run's reference.
    pub fn dedup_references(&self) -> Vec<u64> {
        let mut hashes = Vec::new();
        for shard in &self.shards {
            let m = shard.read();
            for seqs in m.values() {
                for e in seqs.values() {
                    if let Location::Dup { hash, .. } = &e.loc {
                        hashes.push(*hash);
                    }
                }
            }
        }
        hashes
    }

    /// Demotes sealed local segments to the spool tier until local
    /// segment bytes fit `hot_budget_bytes`, oldest segment first. Each
    /// victim's spool copy is made durable (shipped now if the background
    /// ship hasn't landed) and length-verified *before* the local file is
    /// deleted, so a crash at any point leaves every segment readable
    /// from at least one tier. Returns the demoted segment ids.
    pub fn demote_cold_segments(&self, hot_budget_bytes: u64) -> Result<Vec<u64>, StoreError> {
        self.ensure_writable()?;
        let Some(spool) = self.spool_dir.read().clone() else {
            return Ok(Vec::new());
        };
        let mut span = flor_obs::span(flor_obs::Category::Tier, "demote_cold_segments");
        // Writers park while segments move between tiers (same total
        // order as compaction).
        let w = self.writer.lock();
        let active_id = w.active.as_ref().map(|a| a.id);
        let mut local: Vec<(u64, u64)> = Vec::new();
        if let Ok(rd) = fs::read_dir(self.seg_dir()) {
            for entry in rd.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with('.') {
                    continue;
                }
                if let Some(id) = name
                    .strip_suffix(".seg")
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    local.push((id, entry.metadata()?.len()));
                }
            }
        }
        local.sort_unstable();
        let mut resident: u64 = local.iter().map(|(_, len)| len).sum();
        let mut demoted = Vec::new();
        for (id, len) in local {
            if resident <= hot_budget_bytes {
                break;
            }
            if Some(id) == active_id {
                continue;
            }
            let path = self.segment_path(id);
            // Only sealed (footer-bearing) segments demote: an unsealed
            // one may belong to a crashed writer session and compaction
            // owns its fate.
            let Ok(Some(_)) = read_trailer_footer_len(&path, len) else {
                continue;
            };
            let data = fs::read(&path)?;
            let cold = spool_segment_path(&spool, id);
            let durable = fs::metadata(&cold)
                .map(|m| m.len() == data.len() as u64)
                .unwrap_or(false);
            if !durable {
                fs::create_dir_all(spool.join("segments"))?;
                write_atomic(&cold, &data)?;
            }
            fs::remove_file(&path)?;
            resident -= len;
            self.tier.demotions.fetch_add(1, Ordering::Relaxed);
            flor_obs::counter!("store.tier_demotions").inc();
            demoted.push(id);
        }
        drop(w);
        span.set_args(demoted.len() as u64, resident);
        Ok(demoted)
    }

    /// Segment ids resident in the spool tier (shipped copies, demoted or
    /// not). Operator/introspection surface.
    pub fn cold_segment_ids(&self) -> Vec<u64> {
        let Some(spool) = self.spool_dir.read().clone() else {
            return Vec::new();
        };
        let mut ids = Vec::new();
        if let Ok(rd) = fs::read_dir(spool.join("segments")) {
            for entry in rd.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(id) = name
                    .strip_suffix(".seg")
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Current compression effort for new stages (1 = fastest, 3 =
    /// smallest; see [`crate::compress`]).
    pub fn compression_effort(&self) -> u8 {
        self.effort.load(Ordering::Relaxed)
    }

    /// Sets the compression effort (clamped), persisting it across
    /// reopens. Best-effort on the artifact write and a no-op when
    /// unchanged — the auto-tuner calls this every adaptivity epoch and
    /// must never fail a record phase over a stats file.
    pub fn set_compression_effort(&self, effort: u8) {
        let e = effort.clamp(MIN_EFFORT, MAX_EFFORT);
        if self.effort.swap(e, Ordering::Relaxed) != e && !self.opts.read_only {
            let _ = fs::write(
                self.root.join("artifacts").join(EFFORT_ARTIFACT),
                format!("{e}\n"),
            );
        }
    }

    // ---- named artifacts ---------------------------------------------------

    /// Writes a named artifact (recorded source, record logs).
    pub fn put_artifact(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.ensure_writable()?;
        assert!(
            !name.contains(['/', '\\']),
            "artifact name {name:?} must be flat"
        );
        fs::write(self.root.join("artifacts").join(name), bytes)?;
        Ok(())
    }

    /// Reads a named artifact.
    pub fn get_artifact(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        Ok(fs::read(self.root.join("artifacts").join(name))?)
    }

    /// True if the named artifact exists.
    pub fn has_artifact(&self, name: &str) -> bool {
        self.root.join("artifacts").join(name).exists()
    }
}

impl Drop for CheckpointStore {
    fn drop(&mut self) {
        // Best-effort seal so cleanly closed stores leave self-describing
        // segments; an unsealed segment is still fully usable.
        let _ = self.seal_active_segment();
    }
}

/// Appends one entry (header + block id + payload) to a segment buffer,
/// returning the payload offset.
// One parameter per on-disk entry field; bundling them would just
// re-invent the header struct ad hoc.
#[allow(clippy::too_many_arguments)]
fn append_entry(
    bytes: &mut Vec<u8>,
    block: &str,
    seq: u64,
    raw: u64,
    crc: u32,
    raw_stored: bool,
    delta_stored: bool,
    stored: &[u8],
) -> u64 {
    assert!(block.len() <= u16::MAX as usize, "block id too long");
    bytes.extend_from_slice(&(block.len() as u16).to_le_bytes());
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&raw.to_le_bytes());
    bytes.extend_from_slice(&(stored.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes.push(entry_flags(raw_stored, delta_stored));
    bytes.extend_from_slice(block.as_bytes());
    let offset = bytes.len() as u64;
    bytes.extend_from_slice(stored);
    offset
}

/// Reads a sealed segment's trailer and returns its footer length, or
/// `None` when the file has no (valid-magic) trailer.
fn read_trailer_footer_len(path: &Path, file_len: u64) -> std::io::Result<Option<u64>> {
    use std::io::{Read, Seek, SeekFrom};
    if file_len < TRAILER_BYTES + SEGMENT_MAGIC.len() as u64 {
        return Ok(None);
    }
    let mut f = fs::File::open(path)?;
    f.seek(SeekFrom::End(-(TRAILER_BYTES as i64)))?;
    let mut trailer = [0u8; TRAILER_BYTES as usize];
    f.read_exact(&mut trailer)?;
    if &trailer[12..] != FOOTER_MAGIC {
        return Ok(None);
    }
    Ok(Some(u64::from_le_bytes(
        trailer[..8].try_into().expect("8 bytes"),
    )))
}

/// One staged (compressed, CRC-stamped, not yet written) checkpoint.
struct Staged {
    block_id: String,
    seq: u64,
    raw_len: u64,
    crc: u32,
    /// Stored representation: a delta frame, compressed bytes, or the raw
    /// payload when compression did not shrink it (segmented format only).
    stored: Vec<u8>,
    raw_stored: bool,
    /// `Some((base_seq, depth))` when `stored` is a delta frame.
    delta: Option<(u64, u32)>,
    /// `Some((hash, meta))` when the stored bytes are a dedup candidate
    /// (segmented store with an arena attached, above the size floor).
    /// Commit interns it; on a verified hit the manifest gets a `@dup`
    /// reference entry instead of duplicate segment bytes.
    dup: Option<(u64, BlobMeta)>,
}

/// A group of checkpoints committed together.
///
/// [`WriteBatch::stage`] does the CPU work (compress + CRC) with no I/O;
/// [`WriteBatch::commit`] performs the batched I/O. See the module docs for
/// the exact ordering and crash-recovery guarantees. Dropping an uncommitted
/// batch discards it without side effects.
pub struct WriteBatch<'a> {
    store: &'a CheckpointStore,
    staged: Vec<Staged>,
    /// Per-block last payload staged *in this batch* — the delta base for
    /// the block's next stage before anything commits. Promoted into the
    /// store's write cache only when the batch commits.
    pending_bases: HashMap<String, DeltaBase>,
}

impl WriteBatch<'_> {
    /// Stages a checkpoint payload for `(block_id, seq)`. Compression,
    /// delta encoding, and CRC stamping happen now; nothing touches disk
    /// until [`WriteBatch::commit`]. Payloads that compression does not
    /// shrink are stored raw (segmented format), which is what makes
    /// their reads zero-copy; payloads that differ only slightly from the
    /// block's previous version are stored as [`crate::delta`] frames
    /// (chain depth bounded by
    /// [`StoreOptions::delta_keyframe_interval`]). Within one batch,
    /// earlier stages serve as delta bases for later stages of the same
    /// block — correct across a crash because commit appends them in
    /// stage order, so any durable manifest prefix contains a delta's
    /// base before the delta itself.
    pub fn stage(&mut self, block_id: &str, seq: u64, payload: &[u8]) {
        assert!(
            !block_id.contains(['\t', '\n', '/']),
            "block id {block_id:?} contains reserved characters"
        );
        // The Reference pipeline reproduces the full pre-PR submit cost
        // (its CRC included) so before/after benchmarks stay honest.
        let crc = match self.store.opts.compressor {
            Compressor::Pipeline => crc32(payload),
            Compressor::Reference => crc32_reference(payload),
        };
        let segmented = self.store.opts.format == StoreFormat::Segmented;
        let k = self.store.opts.delta_keyframe_interval;
        let delta_eligible =
            segmented && k > 0 && payload.len() as u64 >= self.store.opts.delta_min_bytes;

        // Back-off: a block whose payloads keep rewriting themselves (a
        // from-scratch training regime) stops paying the probe and the
        // base-cache memcpy after a few consecutive rejections, re-probing
        // periodically so a regime change resumes chaining.
        let probe = delta_eligible
            && (seq.is_multiple_of(DELTA_RETRY_PERIOD)
                || self
                    .store
                    .delta_rejects
                    .lock()
                    .get(block_id)
                    .is_none_or(|&r| r < DELTA_REJECT_THRESHOLD));

        let mut encoded: Option<(Vec<u8>, u64, u32)> = None;
        let mut base_found = false;
        if probe {
            // Strictly forward chains only: a re-put or out-of-order seq
            // takes the keyframe path (and a same-seq re-put is detected
            // at read time via the frame's base CRC). Base priority: this
            // batch's own stages, then the store-wide write cache, then —
            // when racing batches left both behind — the newest committed
            // version from the index.
            let base = self
                .pending_bases
                .get(block_id)
                .cloned()
                .or_else(|| self.store.delta_write.lock().get(block_id).cloned())
                .filter(|b| b.seq < seq && b.depth + 1 < k)
                .or_else(|| {
                    self.store
                        .delta_base_from_index(block_id, seq)
                        .filter(|b| b.depth + 1 < k)
                });
            if let Some(b) = base {
                base_found = true;
                if let Some(frame) =
                    delta::encode(b.payload.as_ref(), payload, b.seq, b.crc, b.depth + 1)
                {
                    encoded = Some((frame, b.seq, b.depth + 1));
                }
            }
        }
        if base_found {
            let mut rejects = self.store.delta_rejects.lock();
            if encoded.is_some() {
                rejects.remove(block_id);
            } else {
                *rejects.entry(block_id.to_string()).or_insert(0) += 1;
            }
        }
        let (stored, raw_stored, delta) = arbitrate_stored(
            encoded,
            payload,
            self.store.opts.compressor,
            segmented,
            self.store.effort.load(Ordering::Relaxed),
        );
        // Keying the *stored representation* (not the raw payload) lets an
        // identically re-recorded run dedup its delta frames too, not just
        // its keyframes — the same input stream arbitrates to the same
        // bytes.
        let dup = if segmented && stored.len() >= DEDUP_MIN_BYTES {
            self.store.dedup.read().as_ref().map(|_| {
                let hash = DedupIndex::hash_of(&stored);
                let meta = BlobMeta {
                    stored_len: stored.len() as u64,
                    stored_crc: crc32(&stored),
                    raw_len: payload.len() as u64,
                    payload_crc: crc,
                    flags: entry_flags(raw_stored, delta.is_some()),
                };
                (hash, meta)
            })
        } else {
            None
        };
        if probe || delta.is_some() {
            self.pending_bases.insert(
                block_id.to_string(),
                DeltaBase {
                    seq,
                    depth: delta.map_or(0, |(_, d)| d),
                    crc,
                    payload: Bytes::copy_from_slice(payload),
                },
            );
        }
        self.staged.push(Staged {
            block_id: block_id.to_string(),
            seq,
            raw_len: payload.len() as u64,
            crc,
            stored,
            raw_stored,
            delta,
            dup,
        });
    }

    /// Checkpoints staged so far.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Commits the batch: payload data first, then one batched manifest
    /// append (write-ahead of the manifest entries means a crash leaves at
    /// worst dead bytes, never a manifest entry without data). Under
    /// [`Durability::GroupCommit`] this is where the once-per-batch fsyncs
    /// happen.
    pub fn commit(self) -> Result<Vec<CkptMeta>, StoreError> {
        self.store.ensure_writable()?;
        if self.staged.is_empty() {
            return Ok(Vec::new());
        }
        let mut span = flor_obs::span(flor_obs::Category::Commit, "commit");
        span.set_args(self.staged.len() as u64, 0);
        let t0 = flor_obs::clock::now_ns();
        let result = match self.store.opts.format {
            StoreFormat::Segmented => self.commit_segmented(),
            StoreFormat::FilePerCheckpoint => self.commit_files(),
        };
        if let Ok(metas) = &result {
            flor_obs::histogram!("store.commit_ns").observe(flor_obs::clock::since_ns(t0));
            flor_obs::counter!("store.commits").inc();
            flor_obs::counter!("store.commit_entries").add(metas.len() as u64);
        }
        result
    }

    /// Segmented commit: one buffered `write_all` appends every staged
    /// payload to the active segment.
    ///
    /// The writer lock is held for the *whole* commit — segment append,
    /// manifest append, and index insert — so a concurrent [`compact`]
    /// (which takes the same lock) can never snapshot the index between a
    /// batch's data landing and its entries becoming visible, and then
    /// delete the segment the batch just wrote to.
    ///
    /// [`compact`]: CheckpointStore::compact
    fn commit_segmented(self) -> Result<Vec<CkptMeta>, StoreError> {
        let store = self.store;
        let sync = store.opts.durability == Durability::GroupCommit;

        // Everything later phases need, minus the payload bytes — those
        // are dropped as soon as they're copied into the batch buffer, so
        // a commit holds one copy of the batch, not two.
        struct PlacedMeta {
            block_id: String,
            seq: u64,
            raw_len: u64,
            crc: u32,
            stored_len: u64,
            chain_depth: u32,
            loc: Location,
        }
        let mut placed: Vec<PlacedMeta> = Vec::with_capacity(self.staged.len());
        let mut w = store.writer.lock();
        if w.active.is_none() {
            let id = store.next_seg.fetch_add(1, Ordering::Relaxed);
            let path = store.segment_path(id);
            let mut file = fs::OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&path)?;
            file.write_all(SEGMENT_MAGIC)?;
            w.active = Some(ActiveSegment {
                id,
                file,
                len: SEGMENT_MAGIC.len() as u64,
                footer: Vec::new(),
            });
        }
        let active = w.active.as_mut().expect("active segment ensured above");
        let mut buf: Vec<u8> = Vec::with_capacity(
            self.staged
                .iter()
                .map(|s| s.stored.len() + s.block_id.len() + ENTRY_HEADER_BYTES as usize)
                .sum(),
        );
        let mut recs: Vec<SegmentIndexEntry> = Vec::with_capacity(self.staged.len());
        let dedup = store.dedup.read().clone();
        let mut interned_any = false;
        for s in self.staged {
            // Dedup candidates first: on a verified hit (or a fresh
            // insert) the checkpoint becomes a `@dup` reference — no
            // segment bytes at all. A collision or arena I/O failure just
            // falls through to the private segment write (dedup is an
            // optimization, never a correctness dependency).
            if let (Some((hash, meta)), Some(idx)) = (&s.dup, dedup.as_ref()) {
                match idx.intern(*hash, *meta, &s.stored) {
                    Ok(outcome @ (Interned::Hit | Interned::Inserted)) => {
                        if outcome == Interned::Hit {
                            store.tier.dedup_hits.fetch_add(1, Ordering::Relaxed);
                        }
                        interned_any = true;
                        placed.push(PlacedMeta {
                            block_id: s.block_id,
                            seq: s.seq,
                            raw_len: s.raw_len,
                            crc: s.crc,
                            // The shared arena owns the bytes; charging
                            // them to this store would double-count across
                            // every referencing run.
                            stored_len: 0,
                            chain_depth: s.delta.map_or(0, |(_, d)| d),
                            loc: Location::Dup {
                                hash: *hash,
                                delta: s.delta,
                            },
                        });
                        continue;
                    }
                    Ok(Interned::Collision) | Err(_) => {}
                }
            }
            // append_entry returns the payload offset within `buf`;
            // rebase it onto the segment file (the batch lands at the
            // current end of the active segment).
            let offset_in_buf = append_entry(
                &mut buf,
                &s.block_id,
                s.seq,
                s.raw_len,
                s.crc,
                s.raw_stored,
                s.delta.is_some(),
                &s.stored,
            );
            let offset = active.len + offset_in_buf;
            let loc = Location::Segment {
                seg: active.id,
                offset,
                len: s.stored.len() as u32,
                raw_stored: s.raw_stored,
                delta: s.delta,
            };
            recs.push(SegmentIndexEntry {
                block_id: s.block_id.clone(),
                seq: s.seq,
                offset,
                raw: s.raw_len,
                stored: s.stored.len() as u32,
                crc: s.crc,
                raw_stored: s.raw_stored,
                delta_stored: s.delta.is_some(),
            });
            placed.push(PlacedMeta {
                stored_len: s.stored.len() as u64,
                block_id: s.block_id,
                seq: s.seq,
                raw_len: s.raw_len,
                crc: s.crc,
                chain_depth: s.delta.map_or(0, |(_, d)| d),
                loc,
            });
            // `s.stored` drops here — the payload now lives only in `buf`.
        }
        let write_result = active.file.write_all(&buf).and_then(|()| {
            if sync {
                active.file.sync_data()
            } else {
                Ok(())
            }
        });
        if let Err(e) = write_result {
            // A failed/partial O_APPEND write leaves the file's true end
            // unknown: `active.len` would be stale and every later offset
            // in this segment wrong. Abandon the segment — its manifested
            // prefix stays readable, the partial bytes are dead space, and
            // the next batch starts a fresh segment.
            w.active = None;
            return Err(e.into());
        }
        // Only a fully-written batch advances the offsets and the pending
        // footer (a failed batch must not leave phantom footer entries).
        active.len += buf.len() as u64;
        active.footer.extend(recs);
        if active.len >= store.opts.segment_target_bytes {
            store.seal_locked(&mut w)?;
        }
        if sync {
            // One directory barrier covers the (possibly new) segment file;
            // errors propagate — commit must not claim durability it
            // didn't get.
            fs::File::open(store.seg_dir())?.sync_all()?;
        }

        // Single write_all for the whole batch: a crash mid-append tears at
        // most one line, and O_APPEND keeps concurrent batches line-atomic.
        let mut lines = String::new();
        for p in &placed {
            lines.push_str(&CheckpointStore::manifest_line(
                &p.block_id,
                p.seq,
                &p.loc.render(),
                p.raw_len,
                p.crc,
            ));
            lines.push('\n');
        }
        // Arena refcount ops must be durable before any manifest line that
        // references them — a crash may then over-count (leak a blob),
        // never leave a reference without its count.
        if interned_any {
            if let Some(idx) = dedup.as_ref() {
                idx.sync()?;
            }
        }
        store.append_manifest_text(&lines)?;

        let mut metas = Vec::with_capacity(placed.len());
        for p in placed {
            metas.push(CkptMeta {
                block_id: p.block_id.clone(),
                seq: p.seq,
                stored_bytes: p.stored_len,
                raw_bytes: p.raw_len,
                chain_depth: p.chain_depth,
            });
            // A re-put over a cached reconstruction would leave the
            // restore cache serving stale bytes to later chain walks.
            {
                let mut cache = store.restore_cache.lock();
                if let Some((cseq, _, _)) = cache.get(&p.block_id) {
                    if *cseq == p.seq {
                        if let Some((_, _, old)) = cache.remove(&p.block_id) {
                            store
                                .restore_cache_bytes
                                .fetch_sub(old.len() as u64, Ordering::Relaxed);
                        }
                    }
                }
            }
            store.index_insert(
                p.block_id,
                p.seq,
                IndexEntry {
                    loc: p.loc,
                    raw: p.raw_len,
                    crc: p.crc,
                    stored: p.stored_len,
                },
            );
        }
        // Promote this batch's last payloads into the store-wide delta
        // base cache (monotonic per block: concurrent batches may commit
        // out of seq order, and the base must only ever move forward).
        // Byte-budgeted like the read-side caches — an evicted block's
        // next stage falls back to the committed index, so a long-lived
        // handle never pins unbounded raw payloads.
        if !self.pending_bases.is_empty() {
            let mut wcache = store.delta_write.lock();
            for (block, base) in self.pending_bases {
                match wcache.get(&block) {
                    Some(existing) if existing.seq > base.seq => {}
                    _ => {
                        let incoming = base.payload.len() as u64;
                        if let Some(old) = wcache.insert(block, base) {
                            store
                                .delta_write_bytes
                                .fetch_sub(old.payload.len() as u64, Ordering::Relaxed);
                        }
                        store
                            .delta_write_bytes
                            .fetch_add(incoming, Ordering::Relaxed);
                    }
                }
            }
            while store.delta_write_bytes.load(Ordering::Relaxed) > DELTA_WRITE_BUDGET_BYTES
                && wcache.len() > 1
            {
                let victim = wcache.keys().next().expect("non-empty cache").clone();
                if let Some(evicted) = wcache.remove(&victim) {
                    store
                        .delta_write_bytes
                        .fetch_sub(evicted.payload.len() as u64, Ordering::Relaxed);
                }
            }
        }
        Ok(metas)
    }

    /// Legacy v1 commit: one file per checkpoint under `ckpt/`, staged via
    /// temp + rename so a re-put never truncates the durable old file in
    /// place. Holds the writer lock end to end for the same
    /// commit-vs-compaction total order as [`WriteBatch::commit_segmented`].
    fn commit_files(self) -> Result<Vec<CkptMeta>, StoreError> {
        let store = self.store;
        let _w = store.writer.lock();
        let sync = store.opts.durability == Durability::GroupCommit;
        let ckpt_dir = store.root.join("ckpt");
        let mut lines = String::new();
        let mut metas = Vec::with_capacity(self.staged.len());
        for s in &self.staged {
            let file = format!("{}.{:06}", s.block_id, s.seq);
            let path = ckpt_dir.join(&file);
            let tmp = ckpt_dir.join(format!(".{}.tmp.{}", file, std::process::id()));
            {
                let mut f = fs::File::create(&tmp)?;
                f.write_all(&s.stored)?;
                if sync {
                    f.sync_data()?;
                }
            }
            fs::rename(&tmp, &path)?;
            lines.push_str(&CheckpointStore::manifest_line(
                &s.block_id,
                s.seq,
                &file,
                s.raw_len,
                s.crc,
            ));
            lines.push('\n');
        }
        if sync {
            fs::File::open(&ckpt_dir)?.sync_all()?;
        }
        store.append_manifest_text(&lines)?;
        for s in self.staged {
            let file = format!("{}.{:06}", s.block_id, s.seq);
            metas.push(CkptMeta {
                block_id: s.block_id.clone(),
                seq: s.seq,
                stored_bytes: s.stored.len() as u64,
                raw_bytes: s.raw_len,
                chain_depth: 0,
            });
            store.index_insert(
                s.block_id,
                s.seq,
                IndexEntry {
                    loc: Location::File(file),
                    raw: s.raw_len,
                    crc: s.crc,
                    stored: s.stored.len() as u64,
                },
            );
        }
        Ok(metas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flor-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Pseudo-random (xorshift) bytes: incompressible, so they exercise the
    /// raw-stored zero-copy path.
    fn incompressible(n: usize, seed: u32) -> Vec<u8> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect()
    }

    #[test]
    fn put_get_roundtrip() {
        let store = CheckpointStore::open(tmpdir("roundtrip")).unwrap();
        let payload = b"checkpoint payload with zeros \0\0\0\0\0\0".repeat(10);
        let meta = store.put("sb_0", 0, &payload).unwrap();
        assert_eq!(meta.raw_bytes, payload.len() as u64);
        assert_eq!(store.get("sb_0", 0).unwrap(), payload);
        assert_eq!(store.get_bytes("sb_0", 0).unwrap().as_ref(), &payload[..]);
    }

    #[test]
    fn missing_checkpoint_errors() {
        let store = CheckpointStore::open(tmpdir("missing")).unwrap();
        assert!(matches!(
            store.get("sb_0", 0),
            Err(StoreError::Missing { .. })
        ));
        assert!(matches!(
            store.get_bytes("sb_0", 0),
            Err(StoreError::Missing { .. })
        ));
    }

    #[test]
    fn multiple_seqs_per_block() {
        let store = CheckpointStore::open(tmpdir("seqs")).unwrap();
        for seq in 0..5 {
            store
                .put("sb_0", seq, format!("payload{seq}").as_bytes())
                .unwrap();
        }
        assert_eq!(store.count("sb_0"), 5);
        assert_eq!(store.latest_seq("sb_0"), Some(4));
        assert_eq!(store.get("sb_0", 3).unwrap(), b"payload3");
    }

    #[test]
    fn reopen_restores_index() {
        let dir = tmpdir("reopen");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
            store.put("sb_1", 7, b"beta").unwrap();
        }
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(
            store.recovery_report().is_clean(),
            "{:?}",
            store.recovery_report()
        );
        assert_eq!(store.get("sb_0", 0).unwrap(), b"alpha");
        assert_eq!(store.get("sb_1", 7).unwrap(), b"beta");
        assert!(store.contains("sb_1", 7));
        assert!(!store.contains("sb_1", 8));
    }

    #[test]
    fn zero_copy_reads_share_the_segment_buffer() {
        let store = CheckpointStore::open(tmpdir("zerocopy")).unwrap();
        let payload = incompressible(4096, 0xBEEF);
        store.put("sb_0", 0, &payload).unwrap();
        let a = store.get_bytes("sb_0", 0).unwrap();
        let b = store.get_bytes("sb_0", 0).unwrap();
        assert_eq!(a.as_ref(), &payload[..]);
        // Both reads slice the one cached segment buffer: same backing
        // memory, no payload copy.
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
        let s = store.stats();
        assert!(s.zero_copy_reads >= 2, "{s:?}");
        assert!(s.segment_cache_hits >= 1, "{s:?}");
    }

    #[test]
    fn compressible_payloads_roundtrip_through_segments() {
        let dir = tmpdir("compressible");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, &vec![0u8; 100_000]).unwrap();
        }
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.get("sb_0", 0).unwrap(), vec![0u8; 100_000]);
        // Compressed on disk: the segment file is tiny.
        let s = store.stats();
        assert!(s.segment_disk_bytes < 10_000, "{s:?}");
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmpdir("corrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        // Structured payload: a flipped byte must change the decompressed
        // content (an all-constant payload can survive offset corruption).
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let meta = store.put("sb_0", 0, &payload).unwrap();
        // Flip a byte inside the stored payload (the entry's tail bytes).
        let file = dir.join("seg").join("00000000.seg");
        let mut bytes = fs::read(&file).unwrap();
        let n = bytes.len();
        let target = n - (meta.stored_bytes as usize) / 2;
        bytes[target] ^= 0xff;
        fs::write(&file, &bytes).unwrap();
        assert!(matches!(
            store.get("sb_0", 0),
            Err(StoreError::Corrupt { .. }) | Err(StoreError::Io(_))
        ));
    }

    #[test]
    fn truncated_segment_is_detected() {
        let dir = tmpdir("trunc");
        let store = CheckpointStore::open(&dir).unwrap();
        store.put("sb_0", 0, &vec![3u8; 5000]).unwrap();
        let file = dir.join("seg").join("00000000.seg");
        let bytes = fs::read(&file).unwrap();
        fs::write(&file, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            store.get("sb_0", 0),
            Err(StoreError::Corrupt { .. })
        ));
        // Truncation stays loud across a reopen, too: the entry is kept
        // (the segment exists), and the read fails its bounds check.
        drop(store);
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.contains("sb_0", 0));
        assert!(matches!(
            store.get("sb_0", 0),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn artifacts_roundtrip() {
        let store = CheckpointStore::open(tmpdir("artifacts")).unwrap();
        store.put_artifact("source.flr", b"import flor\n").unwrap();
        assert!(store.has_artifact("source.flr"));
        assert_eq!(store.get_artifact("source.flr").unwrap(), b"import flor\n");
        assert!(!store.has_artifact("nope"));
    }

    #[test]
    fn byte_accounting() {
        let store = CheckpointStore::open(tmpdir("bytes")).unwrap();
        store.put("sb_0", 0, &vec![0u8; 100_000]).unwrap();
        assert_eq!(store.total_raw_bytes(), 100_000);
        // All zeros compress massively.
        assert!(store.total_stored_bytes() < 5_000);
        assert!(store.total_stored_bytes() > 0);
    }

    #[test]
    fn byte_accounting_survives_reopen_and_overwrite() {
        let dir = tmpdir("bytes-reopen");
        let (raw_before, stored_before) = {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, &vec![1u8; 10_000]).unwrap();
            store.put("sb_0", 1, &vec![2u8; 20_000]).unwrap();
            (store.total_raw_bytes(), store.total_stored_bytes())
        };
        assert_eq!(raw_before, 30_000);
        // Reopen recomputes the same totals from the manifest alone — no
        // per-checkpoint stat.
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.total_raw_bytes(), raw_before);
        assert_eq!(store.total_stored_bytes(), stored_before);
        // Overwriting a seq replaces its contribution instead of adding.
        store.put("sb_0", 1, &vec![3u8; 5_000]).unwrap();
        assert_eq!(store.total_raw_bytes(), 15_000);
    }

    #[test]
    fn batch_commit_is_atomic_in_the_index_and_readable() {
        let store = CheckpointStore::open(tmpdir("batch")).unwrap();
        let mut batch = store.batch();
        for seq in 0..10u64 {
            batch.stage("sb_0", seq, format!("payload-{seq}").as_bytes());
        }
        assert_eq!(batch.len(), 10);
        assert!(!store.contains("sb_0", 0), "stage does no I/O");
        let metas = batch.commit().unwrap();
        assert_eq!(metas.len(), 10);
        for seq in 0..10u64 {
            assert_eq!(
                store.get("sb_0", seq).unwrap(),
                format!("payload-{seq}").as_bytes()
            );
        }
        // Entire batch landed as one manifest append of whole lines.
        let manifest = fs::read_to_string(store.root().join("MANIFEST")).unwrap();
        assert_eq!(manifest.lines().count(), 10);
        assert!(manifest.ends_with('\n'));
        // And as one segment file.
        assert_eq!(store.stats().segments, 1);
    }

    #[test]
    fn dropped_batch_has_no_effect() {
        let store = CheckpointStore::open(tmpdir("batch-drop")).unwrap();
        let mut batch = store.batch();
        batch.stage("sb_0", 0, b"never committed");
        drop(batch);
        assert!(!store.contains("sb_0", 0));
        assert_eq!(store.total_raw_bytes(), 0);
    }

    #[test]
    fn overwrite_keeps_old_payload_readable_until_commit() {
        // A re-put appends the new payload and only then repoints the
        // index: the old payload stays readable right up until commit
        // returns, and no temp files survive.
        let dir = tmpdir("overwrite");
        let store = CheckpointStore::open(&dir).unwrap();
        store.put("sb_0", 0, &vec![1u8; 4000]).unwrap();
        let mut batch = store.batch();
        batch.stage("sb_0", 0, &vec![2u8; 4000]);
        // Staged but uncommitted: old content untouched.
        assert_eq!(store.get("sb_0", 0).unwrap(), vec![1u8; 4000]);
        batch.commit().unwrap();
        assert_eq!(store.get("sb_0", 0).unwrap(), vec![2u8; 4000]);
        let leftovers: Vec<_> = fs::read_dir(dir.join("seg"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with('.'))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
    }

    #[test]
    fn group_commit_durability_roundtrips() {
        let store = CheckpointStore::open_with(tmpdir("gc"), Durability::GroupCommit).unwrap();
        assert_eq!(store.durability(), Durability::GroupCommit);
        let mut batch = store.batch();
        for seq in 0..4u64 {
            batch.stage("sb_0", seq, &vec![seq as u8; 2000]);
        }
        batch.commit().unwrap();
        for seq in 0..4u64 {
            assert_eq!(store.get("sb_0", seq).unwrap(), vec![seq as u8; 2000]);
        }
    }

    #[test]
    fn torn_manifest_tail_is_recovered_and_repaired() {
        // A record phase killed mid-append leaves a truncated final line;
        // reopening must recover the intact prefix, not poison the run.
        let dir = tmpdir("torn-tail");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
            store.put("sb_0", 1, b"beta").unwrap();
        }
        let manifest = dir.join("MANIFEST");
        let text = fs::read_to_string(&manifest).unwrap();
        fs::write(&manifest, &text[..text.len() - 7]).unwrap();

        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.get("sb_0", 0).unwrap(), b"alpha");
        assert!(!store.contains("sb_0", 1), "torn entry dropped");
        assert!(store.recovery_report().dropped_torn_tail);
        assert!(store.recovery_report().repaired_manifest);
        // The manifest was rewritten clean (temp+rename): reopening again
        // parses every line.
        let repaired = fs::read_to_string(&manifest).unwrap();
        assert!(repaired.lines().all(|l| l.split('\t').count() == 6));
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.count("sb_0"), 1);
    }

    #[test]
    fn tail_cut_exactly_at_newline_is_repaired_before_next_append() {
        // The crash can cut exactly at the trailing newline: the final line
        // parses, but without repair the next append would merge two lines.
        let dir = tmpdir("newline-cut");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
        }
        let manifest = dir.join("MANIFEST");
        let text = fs::read_to_string(&manifest).unwrap();
        assert!(text.ends_with('\n'));
        fs::write(&manifest, &text[..text.len() - 1]).unwrap();
        {
            let store = CheckpointStore::open(&dir).unwrap();
            assert_eq!(store.count("sb_0"), 1, "parseable tail entry kept");
            store.put("sb_0", 1, b"beta").unwrap();
        }
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.count("sb_0"), 2);
        assert_eq!(store.get("sb_0", 0).unwrap(), b"alpha");
        assert_eq!(store.get("sb_0", 1).unwrap(), b"beta");
    }

    #[test]
    fn interior_manifest_corruption_is_fatal() {
        let dir = tmpdir("torn-interior");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
            store.put("sb_0", 1, b"beta").unwrap();
        }
        let manifest = dir.join("MANIFEST");
        let text = fs::read_to_string(&manifest).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[0] = "garbage line";
        fs::write(&manifest, lines.join("\n")).unwrap();
        assert!(matches!(
            CheckpointStore::open(&dir),
            Err(StoreError::BadManifest(_))
        ));
    }

    #[test]
    fn recovery_after_simulated_crash_roundtrips_new_writes() {
        let dir = tmpdir("torn-rewrite");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
        }
        let manifest = dir.join("MANIFEST");
        let text = fs::read_to_string(&manifest).unwrap();
        // Torn mid-line append of a second entry.
        fs::write(&manifest, format!("{text}sb_0\t1\t@0:99")).unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        // The recovered store accepts new writes and reloads them (the
        // repair invalidated the appender; the next put reopens it).
        store.put("sb_0", 1, b"beta-again").unwrap();
        drop(store);
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.get("sb_0", 1).unwrap(), b"beta-again");
        assert_eq!(store.count("sb_0"), 2);
    }

    #[test]
    fn crc32_known_value() {
        // IEEE CRC32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32_reference(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn crc32_sliced_matches_reference_across_lengths() {
        // Slicing-by-8 must be bit-identical to the byte-at-a-time loop
        // for every remainder length and content.
        let mut x = 0xACE1u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        for n in (0..64).chain([255, 1000, 4095, 4096]) {
            assert_eq!(crc32(&data[..n]), crc32_reference(&data[..n]), "len {n}");
        }
    }

    #[test]
    fn concurrent_puts() {
        let store = std::sync::Arc::new(CheckpointStore::open(tmpdir("concurrent")).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for seq in 0..10 {
                    store
                        .put(&format!("sb_{t}"), seq, format!("{t}:{seq}").as_bytes())
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.entries().len(), 40);
        assert_eq!(store.get("sb_2", 9).unwrap(), b"2:9");
    }

    #[test]
    fn concurrent_batches_share_the_appender() {
        let dir = tmpdir("conc-batch");
        let store = std::sync::Arc::new(CheckpointStore::open(&dir).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                let mut batch = store.batch();
                for seq in 0..8 {
                    batch.stage(&format!("sb_{t}"), seq, &vec![t as u8; 512]);
                }
                batch.commit().unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(store);
        // Every appended line is whole (no interleaving) and reloads clean.
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.entries().len(), 32);
        for t in 0..4u8 {
            assert_eq!(store.get(&format!("sb_{t}"), 7).unwrap(), vec![t; 512]);
        }
    }

    #[test]
    fn segments_roll_at_target_and_sealed_footers_index_them() {
        let dir = tmpdir("roll");
        // Delta off: the `seed | 1` fixture makes adjacent payloads
        // identical, which delta would collapse — this test is about
        // rolling, so keep every entry full-size.
        let opts = StoreOptions {
            segment_target_bytes: 4096,
            delta_keyframe_interval: 0,
            ..StoreOptions::default()
        };
        {
            let store = CheckpointStore::open_opts(&dir, opts).unwrap();
            for seq in 0..12u64 {
                store
                    .put("sb_0", seq, &incompressible(1024, seq as u32 + 1))
                    .unwrap();
            }
            let s = store.stats();
            assert!(s.segments >= 3, "expected several rolled segments: {s:?}");
        }
        // Dropping sealed the last active segment: every segment now has a
        // valid footer that indexes exactly its entries.
        let store = CheckpointStore::open_opts(&dir, opts).unwrap();
        let s = store.stats();
        assert_eq!(s.sealed_segments, s.segments, "{s:?}");
        let mut footer_keys = Vec::new();
        for entry in fs::read_dir(dir.join("seg")).unwrap() {
            let recs = read_segment_footer(&entry.unwrap().path())
                .unwrap()
                .unwrap();
            for r in recs {
                footer_keys.push((r.block_id, r.seq));
            }
        }
        footer_keys.sort();
        assert_eq!(footer_keys, store.entries());
        for seq in 0..12u64 {
            assert_eq!(
                store.get_bytes("sb_0", seq).unwrap().as_ref(),
                &incompressible(1024, seq as u32 + 1)[..]
            );
        }
    }

    #[test]
    fn missing_segment_is_reported_and_manifest_repaired() {
        let dir = tmpdir("missing-seg");
        let opts = StoreOptions {
            segment_target_bytes: 2048,
            ..StoreOptions::default()
        };
        {
            let store = CheckpointStore::open_opts(&dir, opts).unwrap();
            for seq in 0..6u64 {
                store
                    .put("sb_0", seq, &incompressible(1024, seq as u32 + 9))
                    .unwrap();
            }
            assert!(store.stats().segments >= 2);
        }
        fs::remove_file(dir.join("seg").join("00000000.seg")).unwrap();
        let store = CheckpointStore::open_opts(&dir, opts).unwrap();
        let report = store.recovery_report().clone();
        assert!(!report.missing_entries.is_empty(), "{report:?}");
        assert!(report.repaired_manifest);
        // Survivors read back; the dropped ones answer Missing (so replay
        // falls back to re-execution, the legitimate gap-filling path).
        let survivors = store.entries();
        assert!(!survivors.is_empty());
        for (block, seq) in &survivors {
            store.get_bytes(block, *seq).unwrap();
        }
        for m in &report.missing_entries {
            assert!(!store.contains(&m.block_id, m.seq));
        }
        // Totals reflect only what is actually there — not undercounted to
        // zero, not overcounted with ghosts.
        let sum: u64 = survivors
            .iter()
            .map(|(b, s)| store.get_bytes(b, *s).unwrap().len() as u64)
            .sum();
        assert_eq!(store.total_raw_bytes(), sum);
        // Repaired manifest reopens clean.
        let store = CheckpointStore::open_opts(&dir, opts).unwrap();
        assert!(
            store.recovery_report().is_clean(),
            "{:?}",
            store.recovery_report()
        );
    }

    #[test]
    fn legacy_missing_data_file_is_reported_not_undercounted() {
        // The v1 engine recorded stored=0 for a missing data file and let
        // get() fail with a raw Io error later. Now: dropped, reported,
        // manifest repaired, byte totals truthful.
        let dir = tmpdir("legacy-missing");
        let opts = StoreOptions {
            format: StoreFormat::FilePerCheckpoint,
            ..StoreOptions::default()
        };
        {
            let store = CheckpointStore::open_opts(&dir, opts).unwrap();
            store.put("sb_0", 0, &vec![1u8; 10_000]).unwrap();
            store.put("sb_0", 1, &vec![2u8; 10_000]).unwrap();
        }
        fs::remove_file(dir.join("ckpt").join("sb_0.000001")).unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        let report = store.recovery_report();
        assert_eq!(report.missing_entries.len(), 1, "{report:?}");
        assert_eq!(report.missing_entries[0].seq, 1);
        assert!(report.repaired_manifest);
        assert!(!store.contains("sb_0", 1));
        assert_eq!(store.total_raw_bytes(), 10_000);
        assert!(store.total_stored_bytes() > 0, "no stored=0 undercount");
        assert_eq!(store.get("sb_0", 0).unwrap(), vec![1u8; 10_000]);
    }

    #[test]
    fn legacy_store_reads_and_compaction_migrates_it() {
        let dir = tmpdir("legacy-migrate");
        {
            let store = CheckpointStore::open_opts(
                &dir,
                StoreOptions {
                    format: StoreFormat::FilePerCheckpoint,
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            for seq in 0..5u64 {
                store
                    .put("sb_0", seq, format!("legacy-{seq}").repeat(50).as_bytes())
                    .unwrap();
            }
        }
        // Old-format store opens transparently under the segmented engine.
        let store = CheckpointStore::open(&dir).unwrap();
        let s = store.stats();
        assert_eq!(s.legacy_entries, 5);
        assert_eq!(s.segment_entries, 0);
        for seq in 0..5u64 {
            assert_eq!(
                store.get("sb_0", seq).unwrap(),
                format!("legacy-{seq}").repeat(50).into_bytes()
            );
        }
        // Compaction is the migration path: per-checkpoint files move into
        // a sealed segment and are deleted.
        let report = store.compact().unwrap();
        assert_eq!(report.migrated_files, 5);
        assert_eq!(report.legacy_files_removed, 5);
        let s = store.stats();
        assert_eq!(s.legacy_entries, 0);
        assert_eq!(s.segment_entries, 5);
        for seq in 0..5u64 {
            assert_eq!(
                store.get("sb_0", seq).unwrap(),
                format!("legacy-{seq}").repeat(50).into_bytes()
            );
        }
        // And the migrated store reopens clean.
        drop(store);
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(
            store.recovery_report().is_clean(),
            "{:?}",
            store.recovery_report()
        );
        assert_eq!(store.count("sb_0"), 5);
    }

    #[test]
    fn compaction_reclaims_superseded_re_puts() {
        let dir = tmpdir("compact-reclaim");
        let store = CheckpointStore::open(&dir).unwrap();
        // 20 re-puts of the same key: 19 dead payloads in the segments.
        for round in 0..20u32 {
            store
                .put("sb_0", 0, &incompressible(8192, round + 1))
                .unwrap();
        }
        store.put("sb_1", 0, &incompressible(8192, 777)).unwrap();
        let before = store.stats();
        assert!(before.dead_segment_bytes > 100_000, "{before:?}");
        let report = store.compact().unwrap();
        assert_eq!(report.rewritten_entries, 2);
        assert!(report.segments_removed >= 1);
        assert!(report.reclaimed_bytes > 100_000, "{report:?}");
        let after = store.stats();
        assert_eq!(after.dead_segment_bytes, 0, "{after:?}");
        assert!(after.segment_disk_bytes < before.segment_disk_bytes / 5);
        assert_eq!(after.compactions, 1);
        assert_eq!(
            store.get_bytes("sb_0", 0).unwrap().as_ref(),
            &incompressible(8192, 20)[..]
        );
        assert_eq!(
            store.get_bytes("sb_1", 0).unwrap().as_ref(),
            &incompressible(8192, 777)[..]
        );
        // Post-compaction store reopens clean and keeps accepting writes.
        drop(store);
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(
            store.recovery_report().is_clean(),
            "{:?}",
            store.recovery_report()
        );
        store.put("sb_2", 0, b"after compaction").unwrap();
        assert_eq!(store.get("sb_2", 0).unwrap(), b"after compaction");
    }

    #[test]
    fn maybe_compact_respects_threshold() {
        let store = CheckpointStore::open(tmpdir("maybe-compact")).unwrap();
        store.put("sb_0", 0, &incompressible(4096, 1)).unwrap();
        // No garbage yet: below any threshold.
        assert!(store.maybe_compact(0.1).unwrap().is_none());
        for round in 0..10u32 {
            store
                .put("sb_0", 0, &incompressible(4096, round + 2))
                .unwrap();
        }
        assert!(store.maybe_compact(0.5).unwrap().is_some());
        assert!(store.maybe_compact(0.5).unwrap().is_none(), "already clean");
    }

    #[test]
    fn background_compaction_runs_concurrently_with_reads() {
        let store = std::sync::Arc::new(CheckpointStore::open(tmpdir("bg-compact")).unwrap());
        for seq in 0..8u64 {
            for round in 0..4u32 {
                store
                    .put("sb_0", seq, &incompressible(4096, seq as u32 * 31 + round))
                    .unwrap();
            }
        }
        let reader = {
            let store = store.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    for seq in 0..8u64 {
                        let b = store.get_bytes("sb_0", seq).unwrap();
                        assert_eq!(b.as_ref(), &incompressible(4096, seq as u32 * 31 + 3)[..]);
                    }
                }
            })
        };
        let report = store.compact_in_background().join().unwrap().unwrap();
        assert_eq!(report.rewritten_entries, 8);
        reader.join().unwrap();
    }

    #[test]
    fn orphaned_segment_is_reported_at_open_and_reclaimed_by_compaction() {
        let dir = tmpdir("orphan-seg");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"live data").unwrap();
        }
        // Fabricate the residue of a crashed compaction: a segment file no
        // manifest line references, plus a stale temp.
        fs::write(dir.join("seg").join("00000099.seg"), b"FLRSEG1\njunk").unwrap();
        fs::write(dir.join("seg").join(".compact-00000007.seg.tmp.1"), b"junk").unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        let report = store.recovery_report();
        assert_eq!(report.orphaned_segments, vec![99]);
        assert_eq!(report.stale_temp_files, 1);
        // Open never deletes files (a concurrent writer process could own
        // them); the orphans are merely invisible to the index.
        assert!(dir.join("seg").join("00000099.seg").exists());
        assert_eq!(store.get("sb_0", 0).unwrap(), b"live data");
        // New segment ids never collide with the orphan's id range: the
        // next id is allocated past it.
        store.put("sb_1", 0, b"fresh").unwrap();
        assert!(dir.join("seg").join("00000100.seg").exists());
        // Compaction (which holds the writer lock) reclaims both.
        store.compact().unwrap();
        assert!(!dir.join("seg").join("00000099.seg").exists());
        assert!(!dir.join("seg").join(".compact-00000007.seg.tmp.1").exists());
        assert_eq!(store.get("sb_0", 0).unwrap(), b"live data");
        assert_eq!(store.get("sb_1", 0).unwrap(), b"fresh");
    }

    #[test]
    fn orphaned_legacy_file_is_reported_but_kept() {
        let dir = tmpdir("orphan-file");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"live").unwrap();
        }
        fs::write(dir.join("ckpt").join("sb_9.000000"), b"stray").unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.recovery_report().orphaned_files, vec!["sb_9.000000"]);
        assert!(
            dir.join("ckpt").join("sb_9.000000").exists(),
            "reported, not deleted"
        );
    }

    #[test]
    fn get_stored_returns_the_on_disk_representation() {
        let store = CheckpointStore::open(tmpdir("get-stored")).unwrap();
        // Compressible payload: stored form is the compressed bytes.
        let payload = vec![7u8; 50_000];
        let meta = store.put("sb_0", 0, &payload).unwrap();
        let stored = store.get_stored("sb_0", 0).unwrap();
        assert_eq!(stored.len() as u64, meta.stored_bytes);
        assert_eq!(decompress_any(&stored).unwrap(), payload);
        // Incompressible payload: stored form is the payload itself.
        let raw = incompressible(2048, 5);
        store.put("sb_0", 1, &raw).unwrap();
        assert_eq!(store.get_stored("sb_0", 1).unwrap(), raw);
    }

    #[test]
    fn read_only_open_inspects_without_repairing_or_writing() {
        let dir = tmpdir("read-only");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
            store.put("sb_0", 1, b"beta").unwrap();
        }
        // Tear the manifest tail (simulating another process mid-append).
        let manifest = dir.join("MANIFEST");
        let torn = {
            let text = fs::read_to_string(&manifest).unwrap();
            let torn = text[..text.len() - 7].to_string();
            fs::write(&manifest, &torn).unwrap();
            torn
        };
        {
            let store = CheckpointStore::open_read_only(&dir).unwrap();
            // In-memory view recovered, on-disk MANIFEST untouched — a
            // writer's kept-open appender would survive this open.
            assert_eq!(store.get("sb_0", 0).unwrap(), b"alpha");
            assert!(!store.contains("sb_0", 1));
            let r = store.recovery_report();
            assert!(
                r.dropped_torn_tail && r.repair_pending && !r.repaired_manifest,
                "{r:?}"
            );
            assert_eq!(
                fs::read_to_string(&manifest).unwrap(),
                torn,
                "no repair on disk"
            );
            // Every write surface refuses.
            assert!(matches!(
                store.put("sb_1", 0, b"x"),
                Err(StoreError::ReadOnly)
            ));
            assert!(matches!(store.compact(), Err(StoreError::ReadOnly)));
            assert!(matches!(
                store.put_artifact("a", b"x"),
                Err(StoreError::ReadOnly)
            ));
            assert!(store.seal_active_segment().is_ok(), "drop-path no-op");
        }
        // A writable open performs the repair the read-only one deferred.
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.recovery_report().repaired_manifest);
        assert_eq!(store.count("sb_0"), 1);
    }

    #[test]
    fn superseded_line_with_missing_data_is_not_reported_missing() {
        // A re-put whose *old* payload vanished must not poison recovery:
        // only the winning (latest) line's data matters.
        let dir = tmpdir("superseded-missing");
        let opts = StoreOptions {
            segment_target_bytes: 1, // roll after every batch
            ..StoreOptions::default()
        };
        {
            let store = CheckpointStore::open_opts(&dir, opts).unwrap();
            store.put("sb_0", 0, &incompressible(512, 1)).unwrap(); // → segment 0
            store.put("sb_0", 0, &incompressible(512, 2)).unwrap(); // → segment 1
        }
        // The superseded payload's segment disappears.
        fs::remove_file(dir.join("seg").join("00000000.seg")).unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        let r = store.recovery_report();
        assert!(
            r.missing_entries.is_empty(),
            "live checkpoint misreported: {r:?}"
        );
        assert_eq!(
            store.get_bytes("sb_0", 0).unwrap().as_ref(),
            &incompressible(512, 2)[..]
        );
    }

    #[test]
    fn manifest_location_field_roundtrips() {
        for loc in [
            Location::File("sb_0.000007".into()),
            Location::Segment {
                seg: 3,
                offset: 4096,
                len: 128,
                raw_stored: false,
                delta: None,
            },
            Location::Segment {
                seg: 0,
                offset: 8,
                len: 1,
                raw_stored: true,
                delta: None,
            },
            Location::Segment {
                seg: 12,
                offset: 900,
                len: 77,
                raw_stored: false,
                delta: Some((41, 3)),
            },
        ] {
            assert_eq!(Location::parse(&loc.render()), loc);
        }
        // Near-miss strings fall back to legacy file names.
        for s in [
            "@1:2",
            "@1:2:x",
            "@1:2:3:z",
            "@a:b:c",
            "sb.000001",
            "@1:2:3:d",
            "@1:2:3:dx:1",
            "@1:2:3:d4:x",
            "@1:2:3:d4:5:6",
        ] {
            assert_eq!(Location::parse(s), Location::File(s.to_string()));
        }
    }

    // ---- delta chains ------------------------------------------------------

    /// A drifting f32 slab: version `v` perturbs a sliding 5% of the
    /// elements of version `v - 1`, like one optimizer step.
    fn drifting_payload(version: u64, floats: usize) -> Vec<u8> {
        let mut vals: Vec<f32> = (0..floats).map(|i| (i as f32 * 0.37).sin()).collect();
        for v in 1..=version {
            for (i, val) in vals.iter_mut().enumerate() {
                if (i as u64).wrapping_mul(31).wrapping_add(v) % 20 == 0 {
                    *val += 0.001 * v as f32;
                }
            }
        }
        vals.iter().flat_map(|f| f.to_le_bytes()).collect()
    }

    #[test]
    fn delta_chains_shrink_storage_and_roundtrip_across_reopen() {
        let dir = tmpdir("delta-roundtrip");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            for seq in 0..12u64 {
                store
                    .put("sb_0", seq, &drifting_payload(seq, 4096))
                    .unwrap();
            }
            let s = store.stats();
            assert!(s.delta_entries >= 8, "{s:?}");
            assert!(
                s.keyframe_entries >= 2,
                "K=8 forces a second keyframe: {s:?}"
            );
            assert!(
                s.stored_bytes * 3 < s.raw_bytes,
                "delta must shrink the drifting workload ≥3×: {s:?}"
            );
            for seq in 0..12u64 {
                assert_eq!(store.get("sb_0", seq).unwrap(), drifting_payload(seq, 4096));
            }
        }
        // Reopen: chains reload from the manifest and resolve identically.
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.recovery_report().is_clean());
        for seq in (0..12u64).rev() {
            assert_eq!(store.get("sb_0", seq).unwrap(), drifting_payload(seq, 4096));
        }
    }

    #[test]
    fn keyframe_interval_bounds_chain_depth() {
        let store = CheckpointStore::open_opts(
            tmpdir("delta-depth"),
            StoreOptions {
                delta_keyframe_interval: 4,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        for seq in 0..12u64 {
            let meta = store
                .put("sb_0", seq, &drifting_payload(seq, 2048))
                .unwrap();
            assert_eq!(meta.chain_depth as u64, seq % 4, "seq {seq}");
        }
        let s = store.stats();
        assert_eq!(s.keyframe_entries, 3);
        assert_eq!(s.delta_entries, 9);
        assert_eq!(&s.chain_depth_hist[..4], &[3, 3, 3, 3]);
        for seq in 0..12u64 {
            assert_eq!(
                store.chain_info("sb_0", seq),
                if seq % 4 == 0 {
                    None
                } else {
                    Some((seq - 1, (seq % 4) as u32))
                }
            );
        }
    }

    #[test]
    fn sequential_chain_restores_hit_the_restore_cache() {
        let store = CheckpointStore::open(tmpdir("delta-cache")).unwrap();
        for seq in 0..8u64 {
            store
                .put("sb_0", seq, &drifting_payload(seq, 2048))
                .unwrap();
        }
        for seq in 0..8u64 {
            store.get_bytes("sb_0", seq).unwrap();
        }
        let s = store.stats();
        assert!(s.delta_reads >= 7, "{s:?}");
        assert!(s.restore_cache_hits >= 5, "{s:?}");
        // Each sequential delta restore resolves O(1) links, not O(depth).
        assert!(
            s.chain_links_resolved <= s.delta_reads + 4,
            "sequential restores must not re-walk whole chains: {s:?}"
        );
    }

    #[test]
    fn never_chaining_blocks_back_off_and_regime_changes_resume() {
        // A block whose versions rewrite themselves entirely must stop
        // paying the probe + base-cache copy after a few rejections…
        let store = CheckpointStore::open(tmpdir("delta-backoff")).unwrap();
        for seq in 1..6u64 {
            // Avoid retry seqs (multiples of DELTA_RETRY_PERIOD).
            store
                .put("sb_0", seq, &incompressible(4096, seq as u32 * 7 + 1))
                .unwrap();
        }
        assert!(
            *store.delta_rejects.lock().get("sb_0").unwrap() >= DELTA_REJECT_THRESHOLD,
            "rejections must accumulate"
        );
        // Back-off active: non-retry stages stop caching payloads.
        let cached_before = store.delta_write_bytes.load(Ordering::Relaxed);
        store.put("sb_0", 6, &incompressible(4096, 999)).unwrap();
        assert_eq!(
            store.delta_write_bytes.load(Ordering::Relaxed),
            cached_before,
            "backed-off stages must not copy payloads into the base cache"
        );
        assert_eq!(store.stats().delta_entries, 0);
        // …and resume chaining when the content regime changes: a retry
        // seq caches the first new-regime payload, the retry after that
        // chains against it and resets the streak, and dense chains
        // resume from there.
        let drift_base = drifting_payload(0, 1024);
        for seq in 8..24u64 {
            let mut p = drift_base.clone();
            p[seq as usize] ^= 1; // tiny per-version difference
            store.put("sb_0", seq, &p).unwrap();
        }
        let s = store.stats();
        assert!(
            s.delta_entries >= 6,
            "regime change must resume chaining: {s:?}"
        );
        for seq in 8..24u64 {
            let mut p = drift_base.clone();
            p[seq as usize] ^= 1;
            assert_eq!(store.get("sb_0", seq).unwrap(), p);
        }
    }

    #[test]
    fn repeated_reads_of_one_delta_entry_hit_the_restore_cache() {
        let store = CheckpointStore::open(tmpdir("delta-repeat")).unwrap();
        for seq in 0..6u64 {
            store
                .put("sb_0", seq, &drifting_payload(seq, 2048))
                .unwrap();
        }
        store.get_bytes("sb_0", 5).unwrap();
        let links_after_first = store.stats().chain_links_resolved;
        store.get_bytes("sb_0", 5).unwrap();
        let s = store.stats();
        assert_eq!(
            s.chain_links_resolved, links_after_first,
            "second read of the same entry must not re-walk the chain: {s:?}"
        );
        assert!(s.restore_cache_hits >= 1, "{s:?}");
    }

    #[test]
    fn compaction_survives_a_corrupt_chain_member() {
        // One bit-rotted delta frame must not permanently disable GC:
        // compaction moves the broken entry verbatim (still failing
        // loudly at read time) and completes for everything else.
        let dir = tmpdir("delta-compact-corrupt");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            for seq in 0..6u64 {
                store
                    .put("sb_0", seq, &drifting_payload(seq, 2048))
                    .unwrap();
            }
            // Corrupt the middle of seq 3's stored frame on disk.
            let e = store.lookup("sb_0", 3).unwrap();
            let Location::Segment {
                seg, offset, len, ..
            } = e.loc
            else {
                panic!("expected a segment entry");
            };
            assert!(e.loc.delta_link().is_some(), "fixture must corrupt a delta");
            let path = store.segment_path(seg);
            let mut bytes = fs::read(&path).unwrap();
            bytes[(offset + len as u64 / 2) as usize] ^= 0xFF;
            fs::write(&path, &bytes).unwrap();
        }
        // Fresh handle (no warm caches).
        let store = CheckpointStore::open(&dir).unwrap();
        let report = store.compact().expect("compaction must complete");
        assert_eq!(report.rewritten_entries, 6, "{report:?}");
        // Seq 3 (and any chain member that decoded through it) stays
        // loud; everything up-chain of the corruption reads fine.
        for seq in 0..3u64 {
            assert_eq!(
                store.get("sb_0", seq).unwrap(),
                drifting_payload(seq, 2048),
                "seq {seq}"
            );
        }
        assert!(store.get("sb_0", 3).is_err(), "corruption must stay loud");
        // And GC keeps working on later passes.
        store.put("sb_1", 0, &drifting_payload(0, 2048)).unwrap();
        store
            .compact()
            .expect("subsequent compactions keep working");
    }

    #[test]
    fn missing_chain_base_cascades_at_open() {
        let dir = tmpdir("delta-cascade");
        let opts = StoreOptions {
            segment_target_bytes: 1, // roll after every commit
            ..StoreOptions::default()
        };
        {
            let store = CheckpointStore::open_opts(&dir, opts).unwrap();
            for seq in 0..4u64 {
                store
                    .put("sb_0", seq, &drifting_payload(seq, 2048))
                    .unwrap();
            }
            assert!(store.stats().delta_entries >= 3);
        }
        // The keyframe's segment vanishes: every chained descendant is
        // unrestorable and must cascade out of the index, loudly.
        fs::remove_file(dir.join("seg").join("00000000.seg")).unwrap();
        let store = CheckpointStore::open_opts(&dir, opts).unwrap();
        let r = store.recovery_report().clone();
        assert_eq!(r.missing_entries.len(), 4, "{r:?}");
        assert!(r.repaired_manifest);
        assert_eq!(store.entries().len(), 0);
        // The repaired store reopens without missing entries; the dropped
        // chains' segments linger only as reported orphans (reclaimed by
        // the next compaction, as usual).
        drop(store);
        let store = CheckpointStore::open_opts(&dir, opts).unwrap();
        let r = store.recovery_report().clone();
        assert!(r.missing_entries.is_empty(), "{r:?}");
        assert!(!r.repaired_manifest, "{r:?}");
        assert!(!r.orphaned_segments.is_empty(), "{r:?}");
        store.compact().unwrap();
        drop(store);
        let store = CheckpointStore::open_opts(&dir, opts).unwrap();
        assert!(store.recovery_report().is_clean());
    }

    #[test]
    fn re_put_over_a_delta_base_fails_loudly_not_silently() {
        let store = CheckpointStore::open(tmpdir("delta-reput")).unwrap();
        store.put("sb_0", 0, &drifting_payload(0, 2048)).unwrap();
        store.put("sb_0", 1, &drifting_payload(1, 2048)).unwrap();
        assert!(store.chain_info("sb_0", 1).is_some());
        // Re-put the base with different content: the chained child's
        // recorded base CRC no longer matches.
        store.put("sb_0", 0, &drifting_payload(7, 2048)).unwrap();
        match store.get_bytes("sb_0", 1) {
            Err(StoreError::Corrupt { detail, .. }) => {
                assert!(detail.contains("re-put"), "{detail}");
            }
            other => panic!("expected loud corruption, got {other:?}"),
        }
        // The re-put base itself reads fine.
        assert_eq!(store.get("sb_0", 0).unwrap(), drifting_payload(7, 2048));
    }

    #[test]
    fn compaction_preserves_chains_and_reads() {
        let dir = tmpdir("delta-compact");
        let store = CheckpointStore::open(&dir).unwrap();
        for seq in 0..10u64 {
            store
                .put("sb_0", seq, &drifting_payload(seq, 2048))
                .unwrap();
        }
        // Some dead bytes via a re-put of the newest version (no children).
        store.put("sb_0", 9, &drifting_payload(9, 2048)).unwrap();
        let report = store.compact().unwrap();
        assert_eq!(report.reencoded_entries, 10);
        assert!(store.stats().delta_entries >= 7, "{:?}", store.stats());
        for seq in 0..10u64 {
            assert_eq!(store.get("sb_0", seq).unwrap(), drifting_payload(seq, 2048));
        }
        // Reopen after compaction: still clean, still readable.
        drop(store);
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.recovery_report().is_clean());
        assert_eq!(store.get("sb_0", 9).unwrap(), drifting_payload(9, 2048));
    }

    #[test]
    fn compaction_folds_chains_under_a_smaller_interval() {
        let dir = tmpdir("delta-fold");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            for seq in 0..8u64 {
                store
                    .put("sb_0", seq, &drifting_payload(seq, 2048))
                    .unwrap();
            }
            assert!(store.stats().delta_entries >= 6);
        }
        // Reopen with delta disabled: compaction folds every chain into
        // fresh keyframes.
        let store = CheckpointStore::open_opts(
            &dir,
            StoreOptions {
                delta_keyframe_interval: 0,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let report = store.compact().unwrap();
        assert!(report.chains_folded >= 6, "{report:?}");
        let s = store.stats();
        assert_eq!(s.delta_entries, 0, "{s:?}");
        for seq in 0..8u64 {
            assert_eq!(store.get("sb_0", seq).unwrap(), drifting_payload(seq, 2048));
        }
    }

    #[test]
    fn delta_stored_form_and_standalone_export() {
        let store = CheckpointStore::open(tmpdir("delta-export")).unwrap();
        store.put("sb_0", 0, &drifting_payload(0, 2048)).unwrap();
        store.put("sb_0", 1, &drifting_payload(1, 2048)).unwrap();
        // On-disk form of the chained entry is a delta frame…
        let stored = store.get_stored("sb_0", 1).unwrap();
        assert!(delta::is_delta(&stored));
        // …but the export is self-contained.
        let (exported, resolved) = store.export_stored("sb_0", 1).unwrap();
        assert!(resolved);
        assert!(!delta::is_delta(&exported));
        let payload =
            crate::compress::decompress_any(&exported).unwrap_or_else(|_| exported.clone());
        assert_eq!(payload, drifting_payload(1, 2048));
        let (key_export, key_resolved) = store.export_stored("sb_0", 0).unwrap();
        assert!(!key_resolved);
        assert_eq!(
            crate::compress::decompress_any(&key_export).unwrap_or(key_export),
            drifting_payload(0, 2048)
        );
    }

    #[test]
    fn delta_disabled_stores_behave_like_before() {
        let store = CheckpointStore::open_opts(
            tmpdir("delta-off"),
            StoreOptions {
                delta_keyframe_interval: 0,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        for seq in 0..6u64 {
            store
                .put("sb_0", seq, &drifting_payload(seq, 2048))
                .unwrap();
        }
        let s = store.stats();
        assert_eq!(s.delta_entries, 0);
        assert_eq!(s.keyframe_entries, 6);
        for seq in 0..6u64 {
            assert_eq!(store.get("sb_0", seq).unwrap(), drifting_payload(seq, 2048));
        }
    }

    #[test]
    fn tiny_payloads_never_chain() {
        let store = CheckpointStore::open(tmpdir("delta-tiny")).unwrap();
        for seq in 0..6u64 {
            store
                .put("sb_0", seq, format!("tiny-{}", seq % 2).as_bytes())
                .unwrap();
        }
        assert_eq!(store.stats().delta_entries, 0);
    }

    #[test]
    fn batch_internal_chains_commit_in_stage_order() {
        // Later stages in one batch delta against earlier stages of the
        // same batch; a crash-recovered prefix always contains a delta's
        // base before the delta (manifest lines land in stage order).
        let dir = tmpdir("delta-batch");
        let store = CheckpointStore::open(&dir).unwrap();
        let mut batch = store.batch();
        for seq in 0..6u64 {
            batch.stage("sb_0", seq, &drifting_payload(seq, 2048));
        }
        batch.commit().unwrap();
        assert!(store.stats().delta_entries >= 5, "{:?}", store.stats());
        for seq in 0..6u64 {
            assert_eq!(store.get("sb_0", seq).unwrap(), drifting_payload(seq, 2048));
        }
        // Every manifest prefix (cut at line granularity) reopens into a
        // store whose surviving chain entries all read back.
        let manifest_text = fs::read_to_string(dir.join("MANIFEST")).unwrap();
        let lines: Vec<&str> = manifest_text.lines().collect();
        for keep in 0..=lines.len() {
            let prefix_dir = tmpdir(&format!("delta-batch-prefix-{keep}"));
            fs::create_dir_all(&prefix_dir).unwrap();
            // Clone the segments, truncate the manifest to `keep` lines.
            let mut text = String::new();
            for l in &lines[..keep] {
                text.push_str(l);
                text.push('\n');
            }
            fs::write(prefix_dir.join("MANIFEST"), text).unwrap();
            fs::create_dir_all(prefix_dir.join("seg")).unwrap();
            for entry in fs::read_dir(dir.join("seg")).unwrap() {
                let entry = entry.unwrap();
                fs::copy(entry.path(), prefix_dir.join("seg").join(entry.file_name())).unwrap();
            }
            let prefix_store = CheckpointStore::open(&prefix_dir).unwrap();
            assert_eq!(prefix_store.entries().len(), keep, "prefix {keep}");
            for seq in 0..keep as u64 {
                assert_eq!(
                    prefix_store.get("sb_0", seq).unwrap(),
                    drifting_payload(seq, 2048),
                    "prefix {keep} seq {seq}"
                );
            }
        }
    }

    // ---- tiered storage ----------------------------------------------------

    #[test]
    fn dup_location_render_parse_roundtrip() {
        for loc in [
            Location::Dup {
                hash: 0xdead_beef_cafe_f00d,
                delta: None,
            },
            Location::Dup {
                hash: 1,
                delta: Some((7, 3)),
            },
        ] {
            assert_eq!(Location::parse(&loc.render()), loc);
        }
        // Malformed v4 variants degrade to legacy-file entries, like every
        // other grammar extension.
        for bad in ["@dup:", "@dup:xyz", "@dup:0123:d:2", "@dup:0123:x7:2"] {
            assert_eq!(Location::parse(bad), Location::File(bad.to_string()));
        }
    }

    #[test]
    fn dedup_across_stores_is_byte_identical_and_single_blob() {
        let arena_dir = tmpdir("dedup-arena");
        let dir_a = tmpdir("dedup-a");
        let dir_b = tmpdir("dedup-b");
        let payload = incompressible(8192, 11);

        let a = CheckpointStore::open(&dir_a).unwrap();
        a.attach_dedup(&arena_dir).unwrap();
        a.put("sb_0", 0, &payload).unwrap();
        let sa = a.stats();
        assert_eq!(sa.dedup_entries, 1, "{sa:?}");
        assert_eq!(sa.dedup_hits, 0);

        // A second run records the identical checkpoint: no new blob, a
        // `@dup` reference only.
        let b = CheckpointStore::open(&dir_b).unwrap();
        b.attach_dedup(&arena_dir).unwrap();
        b.put("sb_0", 0, &payload).unwrap();
        let sb = b.stats();
        assert_eq!(sb.dedup_entries, 1, "{sb:?}");
        assert_eq!(sb.dedup_hits, 1);
        assert_eq!(a.dedup_index().unwrap().entries(), 1);

        assert_eq!(a.get("sb_0", 0).unwrap(), payload);
        assert_eq!(b.get("sb_0", 0).unwrap(), payload);
        assert_eq!(b.get_bytes("sb_0", 0).unwrap().as_ref(), &payload[..]);

        // Reopen from disk: the DEDUP pointer file re-attaches the arena
        // and the v4 manifest line resolves.
        drop(b);
        let b2 = CheckpointStore::open(&dir_b).unwrap();
        assert_eq!(b2.get("sb_0", 0).unwrap(), payload);
        assert_eq!(b2.dedup_references(), a.dedup_references());

        // Refcounted retention: releasing one run's reference must not
        // sever the other's.
        let arena = a.dedup_index().unwrap();
        let hash = a.dedup_references()[0];
        assert_eq!(arena.refs(hash), 2);
        for h in b2.dedup_references() {
            arena.release(h).unwrap();
        }
        assert_eq!(arena.refs(hash), 1);
        assert_eq!(a.get("sb_0", 0).unwrap(), payload);
    }

    #[test]
    fn small_payloads_skip_dedup() {
        let dir = tmpdir("dedup-small");
        let store = CheckpointStore::open(&dir).unwrap();
        store.attach_dedup(tmpdir("dedup-small-arena")).unwrap();
        store
            .put("sb_0", 0, &incompressible(DEDUP_MIN_BYTES / 4, 3))
            .unwrap();
        let s = store.stats();
        assert_eq!(s.dedup_entries, 0, "{s:?}");
        assert_eq!(s.segment_entries, 1);
    }

    #[test]
    fn demoted_segments_fault_back_from_spool() {
        let dir = tmpdir("tier-demote");
        let spool = tmpdir("tier-demote-spool");
        let opts = StoreOptions {
            segment_target_bytes: 1, // seal after every commit
            delta_keyframe_interval: 0,
            ..StoreOptions::default()
        };
        let store = CheckpointStore::open_opts(&dir, opts).unwrap();
        store.attach_spool(&spool).unwrap();
        let payload = |seq: u64| incompressible(4096, seq as u32 + 21);
        for seq in 0..4u64 {
            store.put("sb_0", seq, &payload(seq)).unwrap();
        }
        // Demote everything sealed; every payload must still read, served
        // by fault-back from the cold tier.
        let demoted = store.demote_cold_segments(0).unwrap();
        assert!(demoted.len() >= 3, "{demoted:?}");
        for id in &demoted {
            assert!(!dir.join("seg").join(format!("{id:08}.seg")).exists());
            assert!(spool.join("segments").join(format!("{id:08}.seg")).exists());
        }
        for seq in 0..4u64 {
            assert_eq!(store.get("sb_0", seq).unwrap(), payload(seq));
        }
        let s = store.stats();
        assert!(s.tier_demotions >= 3, "{s:?}");
        assert!(s.tier_cold_reads >= 1, "{s:?}");
        assert!(s.tier_cold_segments >= 3, "{s:?}");

        // Reopen: cold segments are resolvable (not "missing"), and reads
        // still fault back.
        drop(store);
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.recovery_report().missing_entries.is_empty());
        for seq in 0..4u64 {
            assert_eq!(store.get("sb_0", seq).unwrap(), payload(seq));
        }
    }

    #[test]
    fn demotion_never_leaves_a_segment_unreadable() {
        // Simulate the crash window: a cold copy exists but the local file
        // was not yet deleted (ship landed, crash before remove). Demote
        // again — must verify, not re-ship, and still delete exactly once.
        let dir = tmpdir("tier-crashwin");
        let spool = tmpdir("tier-crashwin-spool");
        let opts = StoreOptions {
            segment_target_bytes: 1,
            delta_keyframe_interval: 0,
            ..StoreOptions::default()
        };
        let store = CheckpointStore::open_opts(&dir, opts).unwrap();
        store.attach_spool(&spool).unwrap();
        store.put("sb_0", 0, &incompressible(4096, 5)).unwrap();
        store.put("sb_0", 1, &incompressible(4096, 6)).unwrap();
        // Corrupt (truncate) a pre-existing cold copy: demotion must
        // detect the length mismatch and re-ship before deleting local.
        let cold0 = spool.join("segments").join("00000000.seg");
        // Wait for any background ship of segment 0, then truncate it.
        for _ in 0..200 {
            if cold0.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        if cold0.exists() {
            let data = fs::read(&cold0).unwrap();
            fs::write(&cold0, &data[..data.len() / 2]).unwrap();
        }
        let demoted = store.demote_cold_segments(0).unwrap();
        assert!(demoted.contains(&0), "{demoted:?}");
        assert_eq!(store.get("sb_0", 0).unwrap(), incompressible(4096, 5));
    }

    #[test]
    fn compression_effort_persists_across_reopen() {
        let dir = tmpdir("effort-persist");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            assert_eq!(store.compression_effort(), crate::compress::DEFAULT_EFFORT);
            store.set_compression_effort(crate::compress::MAX_EFFORT);
            store.set_compression_effort(99); // clamps
            assert_eq!(store.compression_effort(), crate::compress::MAX_EFFORT);
        }
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.compression_effort(), crate::compress::MAX_EFFORT);
        store.put("sb_0", 0, &incompressible(2048, 9)).unwrap();
        assert_eq!(store.get("sb_0", 0).unwrap(), incompressible(2048, 9));
        assert_eq!(
            store.stats().compression_effort,
            u64::from(crate::compress::MAX_EFFORT)
        );
    }

    #[test]
    fn segment_buffer_pool_reuses_mapped_segments() {
        let dir = tmpdir("segcache-lru");
        let store = CheckpointStore::open(&dir).unwrap();
        store.put("sb_0", 0, &incompressible(4096, 31)).unwrap();
        let a = store.get_bytes("sb_0", 0).unwrap();
        let before = store.stats().segment_cache_hits;
        let b = store.get_bytes("sb_0", 0).unwrap();
        assert_eq!(a.as_ref(), b.as_ref());
        assert!(store.stats().segment_cache_hits > before);
    }
}
