//! The on-disk checkpoint store.
//!
//! One store per recorded run. Layout under the root directory:
//!
//! ```text
//! root/
//!   MANIFEST              one line per checkpoint:
//!                         "<block_id>\t<seq>\t<file>\t<bytes>\t<crc32>\t<line_crc32>"
//!                         (line_crc32 covers the first five fields, so a
//!                         torn append is detectable)
//!   ckpt/<block>.<seq>    compressed, CRC-protected checkpoint payloads
//!   artifacts/<name>      named artifacts (recorded source, record logs)
//! ```
//!
//! Every entry is compressed ([`crate::compress`]) and carries a CRC32 so
//! that corruption and truncation surface as [`StoreError::Corrupt`] instead
//! of silent replay anomalies. Multiple checkpoints per block (`seq`
//! 0, 1, 2, …) correspond to the paper's "a loop may generate zero or many
//! Loop End Checkpoints, depending on how many times it is executed".

use crate::compress::{compress, decompress};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Store failure.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// No checkpoint for the requested block/seq.
    Missing {
        /// Requested block id.
        block_id: String,
        /// Requested sequence number.
        seq: u64,
    },
    /// Entry exists but its payload fails CRC or decompression.
    Corrupt {
        /// Affected block id.
        block_id: String,
        /// Affected sequence number.
        seq: u64,
        /// Detail.
        detail: String,
    },
    /// Malformed manifest.
    BadManifest(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Missing { block_id, seq } => {
                write!(f, "no checkpoint for block {block_id:?} seq {seq}")
            }
            StoreError::Corrupt { block_id, seq, detail } => {
                write!(f, "corrupt checkpoint {block_id:?}.{seq}: {detail}")
            }
            StoreError::BadManifest(d) => write!(f, "bad manifest: {d}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Metadata of one stored checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptMeta {
    /// SkipBlock id.
    pub block_id: String,
    /// Execution sequence number of this block (0-based).
    pub seq: u64,
    /// Compressed on-disk size.
    pub stored_bytes: u64,
    /// Uncompressed payload size.
    pub raw_bytes: u64,
}

/// CRC32 (IEEE, reflected) — hand-rolled so corruption detection has no
/// external dependency.
pub fn crc32(data: &[u8]) -> u32 {
    // Build the table once.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB88320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Index entry: file name, raw byte length, CRC32 of the raw payload.
type IndexEntry = (String, u64, u32);

/// Durably replaces `dest` with `bytes`: write to a temp sibling, fsync
/// it, rename over `dest`, fsync the parent directory. After a power
/// loss the file is either the old content or the complete new content —
/// never empty or truncated (a bare `write` + `rename` can persist the
/// rename before the data blocks).
pub fn write_atomic(dest: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = dest.parent().unwrap_or_else(|| Path::new("."));
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        dest.file_name().map(|n| n.to_string_lossy()).unwrap_or_default(),
        std::process::id()
    ));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dest)?;
    // Persist the rename itself (directory entry). Best-effort on
    // platforms where directories cannot be opened for sync.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// An on-disk checkpoint store (thread-safe; background materializer workers
/// share it).
pub struct CheckpointStore {
    root: PathBuf,
    /// (block, seq) → entry
    index: Mutex<BTreeMap<(String, u64), IndexEntry>>,
}

impl CheckpointStore {
    /// Creates (or opens) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(root.join("ckpt"))?;
        fs::create_dir_all(root.join("artifacts"))?;
        let store = CheckpointStore {
            root,
            index: Mutex::new(BTreeMap::new()),
        };
        store.load_manifest()?;
        Ok(store)
    }

    /// Store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("MANIFEST")
    }

    fn load_manifest(&self) -> Result<(), StoreError> {
        let path = self.manifest_path();
        if !path.exists() {
            return Ok(());
        }
        let text = fs::read_to_string(&path)?;
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        // A record phase killed mid-append leaves a final line without its
        // terminating newline; only such a tail may be dropped as torn.
        // Any malformed *complete* line is real corruption and stays fatal.
        let tail_unterminated = !text.is_empty() && !text.ends_with('\n');
        let mut dropped_torn_tail = false;
        {
            let mut index = self.index.lock();
            for (i, line) in lines.iter().enumerate() {
                match Self::parse_manifest_line(line, i + 1) {
                    Ok((key, entry)) => {
                        index.insert(key, entry);
                    }
                    Err(e) => {
                        if i + 1 == lines.len() && tail_unterminated {
                            // Drop the torn tail: its checkpoint file is at
                            // worst an orphan; the run is not poisoned.
                            dropped_torn_tail = true;
                        } else {
                            return Err(e);
                        }
                    }
                }
            }
        }
        // Repair whenever the tail lacks its newline — even if the line
        // parsed (the crash can cut exactly at the newline). Leaving an
        // unterminated tail would make the next O_APPEND write merge two
        // lines into one, turning recoverable damage into fatal corruption.
        if dropped_torn_tail || tail_unterminated {
            self.rewrite_manifest()?;
        }
        Ok(())
    }

    /// Renders the manifest line for one entry, with its trailing
    /// self-CRC over the five data fields.
    fn manifest_line(block: &str, seq: u64, file: &str, raw: u64, crc: u32) -> String {
        let payload = format!("{block}\t{seq}\t{file}\t{raw}\t{crc}");
        let line_crc = crc32(payload.as_bytes());
        format!("{payload}\t{line_crc}")
    }

    fn parse_manifest_line(
        line: &str,
        lineno: usize,
    ) -> Result<((String, u64), IndexEntry), StoreError> {
        let parts: Vec<&str> = line.split('\t').collect();
        if parts.len() != 6 {
            return Err(StoreError::BadManifest(format!(
                "line {}: expected 6 fields, got {}",
                lineno,
                parts.len()
            )));
        }
        let (payload, line_crc_str) = line
            .rsplit_once('\t')
            .expect("6 tab-separated fields always split");
        let line_crc: u32 = line_crc_str
            .parse()
            .map_err(|_| StoreError::BadManifest(format!("line {lineno}: bad line crc")))?;
        if crc32(payload.as_bytes()) != line_crc {
            return Err(StoreError::BadManifest(format!(
                "line {lineno}: line crc mismatch (torn or corrupted)"
            )));
        }
        let seq: u64 = parts[1]
            .parse()
            .map_err(|_| StoreError::BadManifest(format!("line {lineno}: bad seq")))?;
        let raw: u64 = parts[3]
            .parse()
            .map_err(|_| StoreError::BadManifest(format!("line {lineno}: bad size")))?;
        let crc: u32 = parts[4]
            .parse()
            .map_err(|_| StoreError::BadManifest(format!("line {lineno}: bad crc")))?;
        Ok((
            (parts[0].to_string(), seq),
            (parts[2].to_string(), raw, crc),
        ))
    }

    /// Rewrites the manifest from the in-memory index, crash-safely:
    /// the new content goes to a temp file which is atomically renamed
    /// over the manifest, so a crash leaves either the old or the new
    /// manifest — never a truncated hybrid.
    fn rewrite_manifest(&self) -> Result<(), StoreError> {
        let mut text = String::new();
        {
            let index = self.index.lock();
            for ((block, seq), (file, raw, crc)) in index.iter() {
                text.push_str(&Self::manifest_line(block, *seq, file, *raw, *crc));
                text.push('\n');
            }
        }
        write_atomic(&self.manifest_path(), text.as_bytes())?;
        Ok(())
    }

    fn append_manifest(&self, line: &str) -> Result<(), StoreError> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.manifest_path())?;
        // Single write_all of the whole line: O_APPEND guarantees the line
        // lands atomically even with concurrent materializer workers.
        f.write_all(format!("{line}\n").as_bytes())?;
        Ok(())
    }

    /// Writes a checkpoint payload for `(block_id, seq)`.
    ///
    /// Compresses, CRC-stamps, writes the file, then records the entry in
    /// the manifest (write-ahead of the manifest entry means a crash leaves
    /// at worst an orphaned file, never a manifest entry without data).
    pub fn put(&self, block_id: &str, seq: u64, payload: &[u8]) -> Result<CkptMeta, StoreError> {
        assert!(
            !block_id.contains(['\t', '\n', '/']),
            "block id {block_id:?} contains reserved characters"
        );
        let crc = crc32(payload);
        let compressed = compress(payload);
        let file = format!("{block_id}.{seq:06}");
        let path = self.root.join("ckpt").join(&file);
        fs::write(&path, &compressed)?;
        self.append_manifest(&Self::manifest_line(
            block_id,
            seq,
            &file,
            payload.len() as u64,
            crc,
        ))?;
        self.index.lock().insert(
            (block_id.to_string(), seq),
            (file, payload.len() as u64, crc),
        );
        Ok(CkptMeta {
            block_id: block_id.to_string(),
            seq,
            stored_bytes: compressed.len() as u64,
            raw_bytes: payload.len() as u64,
        })
    }

    /// Reads and verifies the checkpoint payload for `(block_id, seq)`.
    pub fn get(&self, block_id: &str, seq: u64) -> Result<Vec<u8>, StoreError> {
        let entry = self
            .index
            .lock()
            .get(&(block_id.to_string(), seq))
            .cloned();
        let (file, raw_len, crc) = entry.ok_or_else(|| StoreError::Missing {
            block_id: block_id.to_string(),
            seq,
        })?;
        let compressed = fs::read(self.root.join("ckpt").join(&file))?;
        let payload = decompress(&compressed).map_err(|e| StoreError::Corrupt {
            block_id: block_id.to_string(),
            seq,
            detail: e.message,
        })?;
        if payload.len() as u64 != raw_len || crc32(&payload) != crc {
            return Err(StoreError::Corrupt {
                block_id: block_id.to_string(),
                seq,
                detail: "crc or length mismatch".into(),
            });
        }
        Ok(payload)
    }

    /// True if a checkpoint exists for `(block_id, seq)`.
    pub fn contains(&self, block_id: &str, seq: u64) -> bool {
        self.index
            .lock()
            .contains_key(&(block_id.to_string(), seq))
    }

    /// Number of checkpoints stored for a block.
    pub fn count(&self, block_id: &str) -> u64 {
        self.index
            .lock()
            .keys()
            .filter(|(b, _)| b == block_id)
            .count() as u64
    }

    /// Highest stored sequence number for a block, if any.
    pub fn latest_seq(&self, block_id: &str) -> Option<u64> {
        self.index
            .lock()
            .keys()
            .filter(|(b, _)| b == block_id)
            .map(|(_, s)| *s)
            .max()
    }

    /// All `(block_id, seq)` pairs, sorted.
    pub fn entries(&self) -> Vec<(String, u64)> {
        self.index.lock().keys().cloned().collect()
    }

    /// Total compressed bytes on disk across all checkpoints.
    pub fn total_stored_bytes(&self) -> u64 {
        let index = self.index.lock();
        index
            .values()
            .map(|(file, _, _)| {
                fs::metadata(self.root.join("ckpt").join(file))
                    .map(|m| m.len())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Total uncompressed bytes across all checkpoints.
    pub fn total_raw_bytes(&self) -> u64 {
        self.index.lock().values().map(|(_, raw, _)| *raw).sum()
    }

    // ---- named artifacts ---------------------------------------------------

    /// Writes a named artifact (recorded source, record log).
    pub fn put_artifact(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        assert!(
            !name.contains(['/', '\\']),
            "artifact name {name:?} must be flat"
        );
        fs::write(self.root.join("artifacts").join(name), bytes)?;
        Ok(())
    }

    /// Reads a named artifact.
    pub fn get_artifact(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        Ok(fs::read(self.root.join("artifacts").join(name))?)
    }

    /// True if the named artifact exists.
    pub fn has_artifact(&self, name: &str) -> bool {
        self.root.join("artifacts").join(name).exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flor-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip() {
        let store = CheckpointStore::open(tmpdir("roundtrip")).unwrap();
        let payload = b"checkpoint payload with zeros \0\0\0\0\0\0".repeat(10);
        let meta = store.put("sb_0", 0, &payload).unwrap();
        assert_eq!(meta.raw_bytes, payload.len() as u64);
        assert_eq!(store.get("sb_0", 0).unwrap(), payload);
    }

    #[test]
    fn missing_checkpoint_errors() {
        let store = CheckpointStore::open(tmpdir("missing")).unwrap();
        assert!(matches!(
            store.get("sb_0", 0),
            Err(StoreError::Missing { .. })
        ));
    }

    #[test]
    fn multiple_seqs_per_block() {
        let store = CheckpointStore::open(tmpdir("seqs")).unwrap();
        for seq in 0..5 {
            store.put("sb_0", seq, format!("payload{seq}").as_bytes()).unwrap();
        }
        assert_eq!(store.count("sb_0"), 5);
        assert_eq!(store.latest_seq("sb_0"), Some(4));
        assert_eq!(store.get("sb_0", 3).unwrap(), b"payload3");
    }

    #[test]
    fn reopen_restores_index() {
        let dir = tmpdir("reopen");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
            store.put("sb_1", 7, b"beta").unwrap();
        }
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.get("sb_0", 0).unwrap(), b"alpha");
        assert_eq!(store.get("sb_1", 7).unwrap(), b"beta");
        assert!(store.contains("sb_1", 7));
        assert!(!store.contains("sb_1", 8));
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmpdir("corrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        // Structured payload: a flipped byte must change the decompressed
        // content (an all-constant payload can survive offset corruption).
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        store.put("sb_0", 0, &payload).unwrap();
        // Flip a byte in the stored file.
        let file = dir.join("ckpt").join("sb_0.000000");
        let mut bytes = fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&file, &bytes).unwrap();
        assert!(matches!(
            store.get("sb_0", 0),
            Err(StoreError::Corrupt { .. }) | Err(StoreError::Io(_))
        ));
    }

    #[test]
    fn truncated_file_is_detected() {
        let dir = tmpdir("trunc");
        let store = CheckpointStore::open(&dir).unwrap();
        store.put("sb_0", 0, &vec![3u8; 5000]).unwrap();
        let file = dir.join("ckpt").join("sb_0.000000");
        let bytes = fs::read(&file).unwrap();
        fs::write(&file, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            store.get("sb_0", 0),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn artifacts_roundtrip() {
        let store = CheckpointStore::open(tmpdir("artifacts")).unwrap();
        store.put_artifact("source.flr", b"import flor\n").unwrap();
        assert!(store.has_artifact("source.flr"));
        assert_eq!(store.get_artifact("source.flr").unwrap(), b"import flor\n");
        assert!(!store.has_artifact("nope"));
    }

    #[test]
    fn byte_accounting() {
        let store = CheckpointStore::open(tmpdir("bytes")).unwrap();
        store.put("sb_0", 0, &vec![0u8; 100_000]).unwrap();
        assert_eq!(store.total_raw_bytes(), 100_000);
        // All zeros compress massively.
        assert!(store.total_stored_bytes() < 5_000);
    }

    #[test]
    fn torn_manifest_tail_is_recovered_and_repaired() {
        // A record phase killed mid-append leaves a truncated final line;
        // reopening must recover the intact prefix, not poison the run.
        let dir = tmpdir("torn-tail");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
            store.put("sb_0", 1, b"beta").unwrap();
        }
        let manifest = dir.join("MANIFEST");
        let text = fs::read_to_string(&manifest).unwrap();
        fs::write(&manifest, &text[..text.len() - 7]).unwrap();

        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.get("sb_0", 0).unwrap(), b"alpha");
        assert!(!store.contains("sb_0", 1), "torn entry dropped");
        // The manifest was rewritten clean (temp+rename): reopening again
        // parses every line.
        let repaired = fs::read_to_string(&manifest).unwrap();
        assert!(repaired.lines().all(|l| l.split('\t').count() == 6));
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.count("sb_0"), 1);
    }

    #[test]
    fn tail_cut_exactly_at_newline_is_repaired_before_next_append() {
        // The crash can cut exactly at the trailing newline: the final line
        // parses, but without repair the next append would merge two lines.
        let dir = tmpdir("newline-cut");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
        }
        let manifest = dir.join("MANIFEST");
        let text = fs::read_to_string(&manifest).unwrap();
        assert!(text.ends_with('\n'));
        fs::write(&manifest, &text[..text.len() - 1]).unwrap();
        {
            let store = CheckpointStore::open(&dir).unwrap();
            assert_eq!(store.count("sb_0"), 1, "parseable tail entry kept");
            store.put("sb_0", 1, b"beta").unwrap();
        }
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.count("sb_0"), 2);
        assert_eq!(store.get("sb_0", 0).unwrap(), b"alpha");
        assert_eq!(store.get("sb_0", 1).unwrap(), b"beta");
    }

    #[test]
    fn interior_manifest_corruption_is_fatal() {
        let dir = tmpdir("torn-interior");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
            store.put("sb_0", 1, b"beta").unwrap();
        }
        let manifest = dir.join("MANIFEST");
        let text = fs::read_to_string(&manifest).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[0] = "garbage line";
        fs::write(&manifest, lines.join("\n")).unwrap();
        assert!(matches!(
            CheckpointStore::open(&dir),
            Err(StoreError::BadManifest(_))
        ));
    }

    #[test]
    fn recovery_after_simulated_crash_roundtrips_new_writes() {
        let dir = tmpdir("torn-rewrite");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
        }
        let manifest = dir.join("MANIFEST");
        let text = fs::read_to_string(&manifest).unwrap();
        // Torn mid-line append of a second entry.
        fs::write(&manifest, format!("{text}sb_0\t1\tsb_0.0")).unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        // The recovered store accepts new writes and reloads them.
        store.put("sb_0", 1, b"beta-again").unwrap();
        drop(store);
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.get("sb_0", 1).unwrap(), b"beta-again");
        assert_eq!(store.count("sb_0"), 2);
    }

    #[test]
    fn crc32_known_value() {
        // IEEE CRC32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn concurrent_puts() {
        let store = std::sync::Arc::new(CheckpointStore::open(tmpdir("concurrent")).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for seq in 0..10 {
                    store
                        .put(&format!("sb_{t}"), seq, format!("{t}:{seq}").as_bytes())
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.entries().len(), 40);
        assert_eq!(store.get("sb_2", 9).unwrap(), b"2:9");
    }
}
