//! The on-disk checkpoint store.
//!
//! One store per recorded run. Layout under the root directory:
//!
//! ```text
//! root/
//!   MANIFEST              one line per checkpoint:
//!                         "<block_id>\t<seq>\t<file>\t<bytes>\t<crc32>\t<line_crc32>"
//!                         (line_crc32 covers the first five fields, so a
//!                         torn append is detectable)
//!   ckpt/<block>.<seq>    compressed, CRC-protected checkpoint payloads
//!   artifacts/<name>      named artifacts (recorded source, record logs)
//! ```
//!
//! Every entry is compressed ([`crate::compress`]) and carries a CRC32 so
//! that corruption and truncation surface as [`StoreError::Corrupt`] instead
//! of silent replay anomalies. Multiple checkpoints per block (`seq`
//! 0, 1, 2, …) correspond to the paper's "a loop may generate zero or many
//! Loop End Checkpoints, depending on how many times it is executed".
//!
//! # Group commit and the `WriteBatch` durability contract
//!
//! All writes go through [`WriteBatch`]: payloads are *staged* (compressed
//! and CRC-stamped, no I/O), then *committed* together. A commit
//!
//! 1. writes every staged checkpoint file to a temp sibling and renames it
//!    into `ckpt/` — an overwritten checkpoint is the old or the complete
//!    new payload, never a torn mix,
//! 2. appends **all** manifest lines in one `write_all` to a persistent,
//!    kept-open `O_APPEND` handle (no per-checkpoint open/close), and
//! 3. under [`Durability::GroupCommit`], fsyncs each data file *before* the
//!    manifest append, then fsyncs the `ckpt/` directory, the manifest, and
//!    the store root **once per batch** — the classic group-commit
//!    amortization. Barrier failures propagate as errors; a commit never
//!    reports durability it did not achieve.
//!
//! The ordering (data before manifest) means a manifest line is only ever
//! durable after the payload it describes, so a crash anywhere in a commit
//! leaves a *prefix of whole checkpoints*: complete manifest lines point at
//! complete files, and the single torn tail line (if the cut landed inside
//! the batched append) is detected by its line CRC and dropped on recovery.
//! Lines after the cut were part of the same `write_all` and simply never
//! reach the file. Under [`Durability::Buffered`] (the default) no fsync is
//! issued on the put path — same crash-consistency *shape*, OS-buffered
//! timing — matching the pre-group-commit behavior so recorded-run
//! workloads aren't taxed by default.

use crate::compress::{compress, decompress};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Store failure.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// No checkpoint for the requested block/seq.
    Missing {
        /// Requested block id.
        block_id: String,
        /// Requested sequence number.
        seq: u64,
    },
    /// Entry exists but its payload fails CRC or decompression.
    Corrupt {
        /// Affected block id.
        block_id: String,
        /// Affected sequence number.
        seq: u64,
        /// Detail.
        detail: String,
    },
    /// Malformed manifest.
    BadManifest(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Missing { block_id, seq } => {
                write!(f, "no checkpoint for block {block_id:?} seq {seq}")
            }
            StoreError::Corrupt { block_id, seq, detail } => {
                write!(f, "corrupt checkpoint {block_id:?}.{seq}: {detail}")
            }
            StoreError::BadManifest(d) => write!(f, "bad manifest: {d}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Metadata of one stored checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptMeta {
    /// SkipBlock id.
    pub block_id: String,
    /// Execution sequence number of this block (0-based).
    pub seq: u64,
    /// Compressed on-disk size.
    pub stored_bytes: u64,
    /// Uncompressed payload size.
    pub raw_bytes: u64,
}

/// When the put path reaches stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Writes are buffered by the OS; no fsync on the put path (the
    /// pre-group-commit behavior, and the default — record-phase overhead
    /// is the paper's protected quantity).
    #[default]
    Buffered,
    /// Each [`WriteBatch::commit`] fsyncs its data files, then the manifest
    /// and its directory once per batch. Durable up to the last committed
    /// batch, at an amortized cost of one barrier per batch instead of one
    /// per checkpoint.
    GroupCommit,
}

/// CRC32 (IEEE, reflected) — hand-rolled so corruption detection has no
/// external dependency.
pub fn crc32(data: &[u8]) -> u32 {
    // Build the table once.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB88320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Index entry for one stored checkpoint.
#[derive(Debug, Clone)]
struct IndexEntry {
    /// File name under `ckpt/`.
    file: String,
    /// Uncompressed payload length.
    raw: u64,
    /// CRC32 of the uncompressed payload.
    crc: u32,
    /// Compressed on-disk size (0 when unknown, e.g. file missing at open).
    stored: u64,
}

/// Durably replaces `dest` with `bytes`: write to a temp sibling, fsync
/// it, rename over `dest`, fsync the parent directory. After a power
/// loss the file is either the old content or the complete new content —
/// never empty or truncated (a bare `write` + `rename` can persist the
/// rename before the data blocks).
pub fn write_atomic(dest: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = dest.parent().unwrap_or_else(|| Path::new("."));
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        dest.file_name().map(|n| n.to_string_lossy()).unwrap_or_default(),
        std::process::id()
    ));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dest)?;
    // Persist the rename itself (directory entry). Best-effort on
    // platforms where directories cannot be opened for sync.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// An on-disk checkpoint store (thread-safe; background materializer workers
/// share it, and `flor-registry` pools one open handle per run — all clones
/// of a pooled `Arc<CheckpointStore>` share the same manifest appender).
pub struct CheckpointStore {
    root: PathBuf,
    /// (block, seq) → entry
    index: Mutex<BTreeMap<(String, u64), IndexEntry>>,
    /// Persistent `O_APPEND` manifest handle, opened lazily and kept open
    /// across appends (invalidated when recovery rewrites the manifest).
    appender: Mutex<Option<fs::File>>,
    durability: Durability,
    /// Running totals, maintained on put so the accessors are O(1).
    stored_total: AtomicU64,
    raw_total: AtomicU64,
}

impl CheckpointStore {
    /// Creates (or opens) a store rooted at `root` with default
    /// ([`Durability::Buffered`]) durability.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_with(root, Durability::default())
    }

    /// Creates (or opens) a store with an explicit durability policy.
    pub fn open_with(root: impl Into<PathBuf>, durability: Durability) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(root.join("ckpt"))?;
        fs::create_dir_all(root.join("artifacts"))?;
        let store = CheckpointStore {
            root,
            index: Mutex::new(BTreeMap::new()),
            appender: Mutex::new(None),
            durability,
            stored_total: AtomicU64::new(0),
            raw_total: AtomicU64::new(0),
        };
        store.load_manifest()?;
        Ok(store)
    }

    /// Store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The durability policy this store was opened with.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("MANIFEST")
    }

    fn load_manifest(&self) -> Result<(), StoreError> {
        let path = self.manifest_path();
        if !path.exists() {
            return Ok(());
        }
        let text = fs::read_to_string(&path)?;
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        // A record phase killed mid-append leaves a final line without its
        // terminating newline; only such a tail may be dropped as torn.
        // Any malformed *complete* line is real corruption and stays fatal.
        let tail_unterminated = !text.is_empty() && !text.ends_with('\n');
        let mut dropped_torn_tail = false;
        {
            let mut index = self.index.lock();
            for (i, line) in lines.iter().enumerate() {
                match Self::parse_manifest_line(line, i + 1) {
                    Ok((key, mut entry)) => {
                        // Stat once at open so byte-total accessors stay O(1).
                        entry.stored = fs::metadata(self.root.join("ckpt").join(&entry.file))
                            .map(|m| m.len())
                            .unwrap_or(0);
                        self.raw_total.fetch_add(entry.raw, Ordering::Relaxed);
                        self.stored_total.fetch_add(entry.stored, Ordering::Relaxed);
                        if let Some(old) = index.insert(key, entry) {
                            // Duplicate manifest line (re-put): the earlier
                            // entry no longer counts toward the totals.
                            self.raw_total.fetch_sub(old.raw, Ordering::Relaxed);
                            self.stored_total.fetch_sub(old.stored, Ordering::Relaxed);
                        }
                    }
                    Err(e) => {
                        if i + 1 == lines.len() && tail_unterminated {
                            // Drop the torn tail: its checkpoint file is at
                            // worst an orphan; the run is not poisoned.
                            dropped_torn_tail = true;
                        } else {
                            return Err(e);
                        }
                    }
                }
            }
        }
        // Repair whenever the tail lacks its newline — even if the line
        // parsed (the crash can cut exactly at the newline). Leaving an
        // unterminated tail would make the next O_APPEND write merge two
        // lines into one, turning recoverable damage into fatal corruption.
        if dropped_torn_tail || tail_unterminated {
            self.rewrite_manifest()?;
        }
        Ok(())
    }

    /// Renders the manifest line for one entry, with its trailing
    /// self-CRC over the five data fields.
    fn manifest_line(block: &str, seq: u64, file: &str, raw: u64, crc: u32) -> String {
        let payload = format!("{block}\t{seq}\t{file}\t{raw}\t{crc}");
        let line_crc = crc32(payload.as_bytes());
        format!("{payload}\t{line_crc}")
    }

    fn parse_manifest_line(
        line: &str,
        lineno: usize,
    ) -> Result<((String, u64), IndexEntry), StoreError> {
        let parts: Vec<&str> = line.split('\t').collect();
        if parts.len() != 6 {
            return Err(StoreError::BadManifest(format!(
                "line {}: expected 6 fields, got {}",
                lineno,
                parts.len()
            )));
        }
        let (payload, line_crc_str) = line
            .rsplit_once('\t')
            .expect("6 tab-separated fields always split");
        let line_crc: u32 = line_crc_str
            .parse()
            .map_err(|_| StoreError::BadManifest(format!("line {lineno}: bad line crc")))?;
        if crc32(payload.as_bytes()) != line_crc {
            return Err(StoreError::BadManifest(format!(
                "line {lineno}: line crc mismatch (torn or corrupted)"
            )));
        }
        let seq: u64 = parts[1]
            .parse()
            .map_err(|_| StoreError::BadManifest(format!("line {lineno}: bad seq")))?;
        let raw: u64 = parts[3]
            .parse()
            .map_err(|_| StoreError::BadManifest(format!("line {lineno}: bad size")))?;
        let crc: u32 = parts[4]
            .parse()
            .map_err(|_| StoreError::BadManifest(format!("line {lineno}: bad crc")))?;
        Ok((
            (parts[0].to_string(), seq),
            IndexEntry {
                file: parts[2].to_string(),
                raw,
                crc,
                stored: 0,
            },
        ))
    }

    /// Rewrites the manifest from the in-memory index, crash-safely:
    /// the new content goes to a temp file which is atomically renamed
    /// over the manifest, so a crash leaves either the old or the new
    /// manifest — never a truncated hybrid. Invalidates the kept-open
    /// appender (its fd would point at the renamed-over inode).
    fn rewrite_manifest(&self) -> Result<(), StoreError> {
        let mut appender = self.appender.lock();
        *appender = None;
        let mut text = String::new();
        {
            let index = self.index.lock();
            for ((block, seq), e) in index.iter() {
                text.push_str(&Self::manifest_line(block, *seq, &e.file, e.raw, e.crc));
                text.push('\n');
            }
        }
        write_atomic(&self.manifest_path(), text.as_bytes())?;
        Ok(())
    }

    /// Appends pre-rendered, newline-terminated manifest text through the
    /// persistent appender (one `write_all`: `O_APPEND` keeps concurrent
    /// batches from interleaving mid-line). Reopening per append — the old
    /// behavior — cost an open/close pair per checkpoint.
    fn append_manifest_text(&self, text: &str) -> Result<(), StoreError> {
        let mut guard = self.appender.lock();
        if guard.is_none() {
            *guard = Some(
                fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.manifest_path())?,
            );
        }
        let f = guard.as_mut().expect("appender populated above");
        f.write_all(text.as_bytes())?;
        if self.durability == Durability::GroupCommit {
            f.sync_data()?;
            // The MANIFEST's own directory entry must be durable too (it
            // may have just been created); errors propagate — a failed
            // barrier must not report durability it didn't achieve.
            fs::File::open(&self.root)?.sync_all()?;
        }
        Ok(())
    }

    /// Starts an empty write batch against this store.
    pub fn batch(&self) -> WriteBatch<'_> {
        WriteBatch {
            store: self,
            staged: Vec::new(),
        }
    }

    /// Writes a single checkpoint payload for `(block_id, seq)` — a batch
    /// of one; see [`WriteBatch`] for the durability contract.
    pub fn put(&self, block_id: &str, seq: u64, payload: &[u8]) -> Result<CkptMeta, StoreError> {
        let mut batch = self.batch();
        batch.stage(block_id, seq, payload);
        let mut metas = batch.commit()?;
        Ok(metas.pop().expect("batch of one yields one meta"))
    }

    /// Reads and verifies the checkpoint payload for `(block_id, seq)`.
    pub fn get(&self, block_id: &str, seq: u64) -> Result<Vec<u8>, StoreError> {
        let entry = self
            .index
            .lock()
            .get(&(block_id.to_string(), seq))
            .cloned();
        let entry = entry.ok_or_else(|| StoreError::Missing {
            block_id: block_id.to_string(),
            seq,
        })?;
        let compressed = fs::read(self.root.join("ckpt").join(&entry.file))?;
        let payload = decompress(&compressed).map_err(|e| StoreError::Corrupt {
            block_id: block_id.to_string(),
            seq,
            detail: e.message,
        })?;
        if payload.len() as u64 != entry.raw || crc32(&payload) != entry.crc {
            return Err(StoreError::Corrupt {
                block_id: block_id.to_string(),
                seq,
                detail: "crc or length mismatch".into(),
            });
        }
        Ok(payload)
    }

    /// True if a checkpoint exists for `(block_id, seq)`.
    pub fn contains(&self, block_id: &str, seq: u64) -> bool {
        self.index
            .lock()
            .contains_key(&(block_id.to_string(), seq))
    }

    /// Number of checkpoints stored for a block.
    pub fn count(&self, block_id: &str) -> u64 {
        self.index
            .lock()
            .keys()
            .filter(|(b, _)| b == block_id)
            .count() as u64
    }

    /// Highest stored sequence number for a block, if any.
    pub fn latest_seq(&self, block_id: &str) -> Option<u64> {
        self.index
            .lock()
            .keys()
            .filter(|(b, _)| b == block_id)
            .map(|(_, s)| *s)
            .max()
    }

    /// All `(block_id, seq)` pairs, sorted.
    pub fn entries(&self) -> Vec<(String, u64)> {
        self.index.lock().keys().cloned().collect()
    }

    /// Total compressed bytes on disk across all checkpoints. O(1): a
    /// running counter maintained on put (previously a full index walk with
    /// one `stat` per entry).
    pub fn total_stored_bytes(&self) -> u64 {
        self.stored_total.load(Ordering::Relaxed)
    }

    /// Total uncompressed bytes across all checkpoints. O(1), same scheme.
    pub fn total_raw_bytes(&self) -> u64 {
        self.raw_total.load(Ordering::Relaxed)
    }

    // ---- named artifacts ---------------------------------------------------

    /// Writes a named artifact (recorded source, record log).
    pub fn put_artifact(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        assert!(
            !name.contains(['/', '\\']),
            "artifact name {name:?} must be flat"
        );
        fs::write(self.root.join("artifacts").join(name), bytes)?;
        Ok(())
    }

    /// Reads a named artifact.
    pub fn get_artifact(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        Ok(fs::read(self.root.join("artifacts").join(name))?)
    }

    /// True if the named artifact exists.
    pub fn has_artifact(&self, name: &str) -> bool {
        self.root.join("artifacts").join(name).exists()
    }
}

/// One staged (compressed, CRC-stamped, not yet written) checkpoint.
struct Staged {
    block_id: String,
    seq: u64,
    file: String,
    raw_len: u64,
    crc: u32,
    compressed: Vec<u8>,
}

/// A group of checkpoints committed together.
///
/// [`WriteBatch::stage`] does the CPU work (compress + CRC) with no I/O;
/// [`WriteBatch::commit`] performs the batched I/O. See the module docs for
/// the exact ordering and crash-recovery guarantees. Dropping an uncommitted
/// batch discards it without side effects.
pub struct WriteBatch<'a> {
    store: &'a CheckpointStore,
    staged: Vec<Staged>,
}

impl WriteBatch<'_> {
    /// Stages a checkpoint payload for `(block_id, seq)`. Compression and
    /// CRC stamping happen now; nothing touches disk until
    /// [`WriteBatch::commit`].
    pub fn stage(&mut self, block_id: &str, seq: u64, payload: &[u8]) {
        assert!(
            !block_id.contains(['\t', '\n', '/']),
            "block id {block_id:?} contains reserved characters"
        );
        let crc = crc32(payload);
        let compressed = compress(payload);
        self.staged.push(Staged {
            block_id: block_id.to_string(),
            seq,
            file: format!("{block_id}.{seq:06}"),
            raw_len: payload.len() as u64,
            crc,
            compressed,
        });
    }

    /// Checkpoints staged so far.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Commits the batch: data files first, then one batched manifest
    /// append (write-ahead of the manifest entries means a crash leaves at
    /// worst orphaned files, never a manifest entry without data). Under
    /// [`Durability::GroupCommit`] this is where the once-per-batch fsyncs
    /// happen.
    pub fn commit(self) -> Result<Vec<CkptMeta>, StoreError> {
        let store = self.store;
        if self.staged.is_empty() {
            return Ok(Vec::new());
        }
        let sync = store.durability == Durability::GroupCommit;
        let ckpt_dir = store.root.join("ckpt");
        let mut lines = String::new();
        let mut metas = Vec::with_capacity(self.staged.len());
        for s in &self.staged {
            // Write-new-then-rename: a re-put of an existing (block, seq)
            // must never truncate the durable old file in place — a crash
            // mid-write would leave a CRC-valid manifest line pointing at a
            // torn file. After the rename the file is the old content or
            // the complete new content, preserving the whole-prefix
            // recovery contract for overwrites too.
            let path = ckpt_dir.join(&s.file);
            let tmp = ckpt_dir.join(format!(".{}.tmp.{}", s.file, std::process::id()));
            {
                let mut f = fs::File::create(&tmp)?;
                f.write_all(&s.compressed)?;
                if sync {
                    // Data durable before its manifest line (see module docs).
                    f.sync_data()?;
                }
            }
            fs::rename(&tmp, &path)?;
            lines.push_str(&CheckpointStore::manifest_line(
                &s.block_id,
                s.seq,
                &s.file,
                s.raw_len,
                s.crc,
            ));
            lines.push('\n');
        }
        if sync {
            // One directory barrier covers every rename above; errors
            // propagate — commit must not claim durability it didn't get.
            fs::File::open(&ckpt_dir)?.sync_all()?;
        }
        // Single write_all for the whole batch: a crash mid-append tears at
        // most one line, and O_APPEND keeps concurrent batches line-atomic.
        store.append_manifest_text(&lines)?;
        {
            let mut index = store.index.lock();
            for s in self.staged {
                store.raw_total.fetch_add(s.raw_len, Ordering::Relaxed);
                store
                    .stored_total
                    .fetch_add(s.compressed.len() as u64, Ordering::Relaxed);
                metas.push(CkptMeta {
                    block_id: s.block_id.clone(),
                    seq: s.seq,
                    stored_bytes: s.compressed.len() as u64,
                    raw_bytes: s.raw_len,
                });
                let old = index.insert(
                    (s.block_id, s.seq),
                    IndexEntry {
                        file: s.file,
                        raw: s.raw_len,
                        crc: s.crc,
                        stored: s.compressed.len() as u64,
                    },
                );
                if let Some(old) = old {
                    store.raw_total.fetch_sub(old.raw, Ordering::Relaxed);
                    store.stored_total.fetch_sub(old.stored, Ordering::Relaxed);
                }
            }
        }
        Ok(metas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flor-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip() {
        let store = CheckpointStore::open(tmpdir("roundtrip")).unwrap();
        let payload = b"checkpoint payload with zeros \0\0\0\0\0\0".repeat(10);
        let meta = store.put("sb_0", 0, &payload).unwrap();
        assert_eq!(meta.raw_bytes, payload.len() as u64);
        assert_eq!(store.get("sb_0", 0).unwrap(), payload);
    }

    #[test]
    fn missing_checkpoint_errors() {
        let store = CheckpointStore::open(tmpdir("missing")).unwrap();
        assert!(matches!(
            store.get("sb_0", 0),
            Err(StoreError::Missing { .. })
        ));
    }

    #[test]
    fn multiple_seqs_per_block() {
        let store = CheckpointStore::open(tmpdir("seqs")).unwrap();
        for seq in 0..5 {
            store.put("sb_0", seq, format!("payload{seq}").as_bytes()).unwrap();
        }
        assert_eq!(store.count("sb_0"), 5);
        assert_eq!(store.latest_seq("sb_0"), Some(4));
        assert_eq!(store.get("sb_0", 3).unwrap(), b"payload3");
    }

    #[test]
    fn reopen_restores_index() {
        let dir = tmpdir("reopen");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
            store.put("sb_1", 7, b"beta").unwrap();
        }
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.get("sb_0", 0).unwrap(), b"alpha");
        assert_eq!(store.get("sb_1", 7).unwrap(), b"beta");
        assert!(store.contains("sb_1", 7));
        assert!(!store.contains("sb_1", 8));
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmpdir("corrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        // Structured payload: a flipped byte must change the decompressed
        // content (an all-constant payload can survive offset corruption).
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        store.put("sb_0", 0, &payload).unwrap();
        // Flip a byte in the stored file.
        let file = dir.join("ckpt").join("sb_0.000000");
        let mut bytes = fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&file, &bytes).unwrap();
        assert!(matches!(
            store.get("sb_0", 0),
            Err(StoreError::Corrupt { .. }) | Err(StoreError::Io(_))
        ));
    }

    #[test]
    fn truncated_file_is_detected() {
        let dir = tmpdir("trunc");
        let store = CheckpointStore::open(&dir).unwrap();
        store.put("sb_0", 0, &vec![3u8; 5000]).unwrap();
        let file = dir.join("ckpt").join("sb_0.000000");
        let bytes = fs::read(&file).unwrap();
        fs::write(&file, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            store.get("sb_0", 0),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn artifacts_roundtrip() {
        let store = CheckpointStore::open(tmpdir("artifacts")).unwrap();
        store.put_artifact("source.flr", b"import flor\n").unwrap();
        assert!(store.has_artifact("source.flr"));
        assert_eq!(store.get_artifact("source.flr").unwrap(), b"import flor\n");
        assert!(!store.has_artifact("nope"));
    }

    #[test]
    fn byte_accounting() {
        let store = CheckpointStore::open(tmpdir("bytes")).unwrap();
        store.put("sb_0", 0, &vec![0u8; 100_000]).unwrap();
        assert_eq!(store.total_raw_bytes(), 100_000);
        // All zeros compress massively.
        assert!(store.total_stored_bytes() < 5_000);
        assert!(store.total_stored_bytes() > 0);
    }

    #[test]
    fn byte_accounting_survives_reopen_and_overwrite() {
        let dir = tmpdir("bytes-reopen");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, &vec![1u8; 10_000]).unwrap();
            store.put("sb_0", 1, &vec![2u8; 20_000]).unwrap();
        }
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.total_raw_bytes(), 30_000);
        let on_disk: u64 = fs::read_dir(dir.join("ckpt"))
            .unwrap()
            .map(|e| e.unwrap().metadata().unwrap().len())
            .sum();
        assert_eq!(store.total_stored_bytes(), on_disk);
        // Overwriting a seq replaces its contribution instead of adding.
        store.put("sb_0", 1, &vec![3u8; 5_000]).unwrap();
        assert_eq!(store.total_raw_bytes(), 15_000);
    }

    #[test]
    fn batch_commit_is_atomic_in_the_index_and_readable() {
        let store = CheckpointStore::open(tmpdir("batch")).unwrap();
        let mut batch = store.batch();
        for seq in 0..10u64 {
            batch.stage("sb_0", seq, format!("payload-{seq}").as_bytes());
        }
        assert_eq!(batch.len(), 10);
        assert!(!store.contains("sb_0", 0), "stage does no I/O");
        let metas = batch.commit().unwrap();
        assert_eq!(metas.len(), 10);
        for seq in 0..10u64 {
            assert_eq!(
                store.get("sb_0", seq).unwrap(),
                format!("payload-{seq}").as_bytes()
            );
        }
        // Entire batch landed as one manifest append of whole lines.
        let manifest = fs::read_to_string(store.root().join("MANIFEST")).unwrap();
        assert_eq!(manifest.lines().count(), 10);
        assert!(manifest.ends_with('\n'));
    }

    #[test]
    fn dropped_batch_has_no_effect() {
        let store = CheckpointStore::open(tmpdir("batch-drop")).unwrap();
        let mut batch = store.batch();
        batch.stage("sb_0", 0, b"never committed");
        drop(batch);
        assert!(!store.contains("sb_0", 0));
        assert_eq!(store.total_raw_bytes(), 0);
    }

    #[test]
    fn overwrite_is_staged_to_a_temp_file_never_truncated_in_place() {
        // A re-put must go through temp+rename: simulate the crash window
        // by checking that at no point does the final path hold a torn
        // file while its (old) manifest line is still valid. We can't cut
        // power mid-write, but we can assert the observable contract: the
        // old payload stays readable right up until commit returns, and
        // the temp sibling never survives a completed commit.
        let dir = tmpdir("overwrite-tmp");
        let store = CheckpointStore::open(&dir).unwrap();
        store.put("sb_0", 0, &vec![1u8; 4000]).unwrap();
        let mut batch = store.batch();
        batch.stage("sb_0", 0, &vec![2u8; 4000]);
        // Staged but uncommitted: old content untouched on disk.
        assert_eq!(store.get("sb_0", 0).unwrap(), vec![1u8; 4000]);
        batch.commit().unwrap();
        assert_eq!(store.get("sb_0", 0).unwrap(), vec![2u8; 4000]);
        let leftovers: Vec<_> = fs::read_dir(dir.join("ckpt"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with('.'))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
    }

    #[test]
    fn group_commit_durability_roundtrips() {
        let store =
            CheckpointStore::open_with(tmpdir("gc"), Durability::GroupCommit).unwrap();
        assert_eq!(store.durability(), Durability::GroupCommit);
        let mut batch = store.batch();
        for seq in 0..4u64 {
            batch.stage("sb_0", seq, &vec![seq as u8; 2000]);
        }
        batch.commit().unwrap();
        for seq in 0..4u64 {
            assert_eq!(store.get("sb_0", seq).unwrap(), vec![seq as u8; 2000]);
        }
    }

    #[test]
    fn torn_manifest_tail_is_recovered_and_repaired() {
        // A record phase killed mid-append leaves a truncated final line;
        // reopening must recover the intact prefix, not poison the run.
        let dir = tmpdir("torn-tail");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
            store.put("sb_0", 1, b"beta").unwrap();
        }
        let manifest = dir.join("MANIFEST");
        let text = fs::read_to_string(&manifest).unwrap();
        fs::write(&manifest, &text[..text.len() - 7]).unwrap();

        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.get("sb_0", 0).unwrap(), b"alpha");
        assert!(!store.contains("sb_0", 1), "torn entry dropped");
        // The manifest was rewritten clean (temp+rename): reopening again
        // parses every line.
        let repaired = fs::read_to_string(&manifest).unwrap();
        assert!(repaired.lines().all(|l| l.split('\t').count() == 6));
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.count("sb_0"), 1);
    }

    #[test]
    fn tail_cut_exactly_at_newline_is_repaired_before_next_append() {
        // The crash can cut exactly at the trailing newline: the final line
        // parses, but without repair the next append would merge two lines.
        let dir = tmpdir("newline-cut");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
        }
        let manifest = dir.join("MANIFEST");
        let text = fs::read_to_string(&manifest).unwrap();
        assert!(text.ends_with('\n'));
        fs::write(&manifest, &text[..text.len() - 1]).unwrap();
        {
            let store = CheckpointStore::open(&dir).unwrap();
            assert_eq!(store.count("sb_0"), 1, "parseable tail entry kept");
            store.put("sb_0", 1, b"beta").unwrap();
        }
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.count("sb_0"), 2);
        assert_eq!(store.get("sb_0", 0).unwrap(), b"alpha");
        assert_eq!(store.get("sb_0", 1).unwrap(), b"beta");
    }

    #[test]
    fn interior_manifest_corruption_is_fatal() {
        let dir = tmpdir("torn-interior");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
            store.put("sb_0", 1, b"beta").unwrap();
        }
        let manifest = dir.join("MANIFEST");
        let text = fs::read_to_string(&manifest).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[0] = "garbage line";
        fs::write(&manifest, lines.join("\n")).unwrap();
        assert!(matches!(
            CheckpointStore::open(&dir),
            Err(StoreError::BadManifest(_))
        ));
    }

    #[test]
    fn recovery_after_simulated_crash_roundtrips_new_writes() {
        let dir = tmpdir("torn-rewrite");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
        }
        let manifest = dir.join("MANIFEST");
        let text = fs::read_to_string(&manifest).unwrap();
        // Torn mid-line append of a second entry.
        fs::write(&manifest, format!("{text}sb_0\t1\tsb_0.0")).unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        // The recovered store accepts new writes and reloads them (the
        // repair invalidated the appender; the next put reopens it).
        store.put("sb_0", 1, b"beta-again").unwrap();
        drop(store);
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.get("sb_0", 1).unwrap(), b"beta-again");
        assert_eq!(store.count("sb_0"), 2);
    }

    #[test]
    fn crc32_known_value() {
        // IEEE CRC32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn concurrent_puts() {
        let store = std::sync::Arc::new(CheckpointStore::open(tmpdir("concurrent")).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for seq in 0..10 {
                    store
                        .put(&format!("sb_{t}"), seq, format!("{t}:{seq}").as_bytes())
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.entries().len(), 40);
        assert_eq!(store.get("sb_2", 9).unwrap(), b"2:9");
    }

    #[test]
    fn concurrent_batches_share_the_appender() {
        let dir = tmpdir("conc-batch");
        let store = std::sync::Arc::new(CheckpointStore::open(&dir).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                let mut batch = store.batch();
                for seq in 0..8 {
                    batch.stage(&format!("sb_{t}"), seq, &vec![t as u8; 512]);
                }
                batch.commit().unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(store);
        // Every appended line is whole (no interleaving) and reloads clean.
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.entries().len(), 32);
        for t in 0..4u8 {
            assert_eq!(store.get(&format!("sb_{t}"), 7).unwrap(), vec![t; 512]);
        }
    }
}
