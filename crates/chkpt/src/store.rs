//! The on-disk checkpoint store.
//!
//! One store per recorded run. Layout under the root directory:
//!
//! ```text
//! root/
//!   MANIFEST              one line per checkpoint: "<block_id>\t<seq>\t<file>\t<bytes>\t<crc32>"
//!   ckpt/<block>.<seq>    compressed, CRC-protected checkpoint payloads
//!   artifacts/<name>      named artifacts (recorded source, record logs)
//! ```
//!
//! Every entry is compressed ([`crate::compress`]) and carries a CRC32 so
//! that corruption and truncation surface as [`StoreError::Corrupt`] instead
//! of silent replay anomalies. Multiple checkpoints per block (`seq`
//! 0, 1, 2, …) correspond to the paper's "a loop may generate zero or many
//! Loop End Checkpoints, depending on how many times it is executed".

use crate::compress::{compress, decompress};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Store failure.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// No checkpoint for the requested block/seq.
    Missing {
        /// Requested block id.
        block_id: String,
        /// Requested sequence number.
        seq: u64,
    },
    /// Entry exists but its payload fails CRC or decompression.
    Corrupt {
        /// Affected block id.
        block_id: String,
        /// Affected sequence number.
        seq: u64,
        /// Detail.
        detail: String,
    },
    /// Malformed manifest.
    BadManifest(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Missing { block_id, seq } => {
                write!(f, "no checkpoint for block {block_id:?} seq {seq}")
            }
            StoreError::Corrupt { block_id, seq, detail } => {
                write!(f, "corrupt checkpoint {block_id:?}.{seq}: {detail}")
            }
            StoreError::BadManifest(d) => write!(f, "bad manifest: {d}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Metadata of one stored checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptMeta {
    /// SkipBlock id.
    pub block_id: String,
    /// Execution sequence number of this block (0-based).
    pub seq: u64,
    /// Compressed on-disk size.
    pub stored_bytes: u64,
    /// Uncompressed payload size.
    pub raw_bytes: u64,
}

/// CRC32 (IEEE, reflected) — hand-rolled so corruption detection has no
/// external dependency.
pub fn crc32(data: &[u8]) -> u32 {
    // Build the table once.
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB88320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Index entry: file name, raw byte length, CRC32 of the raw payload.
type IndexEntry = (String, u64, u32);

/// An on-disk checkpoint store (thread-safe; background materializer workers
/// share it).
pub struct CheckpointStore {
    root: PathBuf,
    /// (block, seq) → entry
    index: Mutex<BTreeMap<(String, u64), IndexEntry>>,
}

impl CheckpointStore {
    /// Creates (or opens) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(root.join("ckpt"))?;
        fs::create_dir_all(root.join("artifacts"))?;
        let store = CheckpointStore {
            root,
            index: Mutex::new(BTreeMap::new()),
        };
        store.load_manifest()?;
        Ok(store)
    }

    /// Store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("MANIFEST")
    }

    fn load_manifest(&self) -> Result<(), StoreError> {
        let path = self.manifest_path();
        if !path.exists() {
            return Ok(());
        }
        let text = fs::read_to_string(&path)?;
        let mut index = self.index.lock();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split('\t').collect();
            if parts.len() != 5 {
                return Err(StoreError::BadManifest(format!(
                    "line {}: expected 5 fields, got {}",
                    lineno + 1,
                    parts.len()
                )));
            }
            let seq: u64 = parts[1]
                .parse()
                .map_err(|_| StoreError::BadManifest(format!("line {}: bad seq", lineno + 1)))?;
            let raw: u64 = parts[3]
                .parse()
                .map_err(|_| StoreError::BadManifest(format!("line {}: bad size", lineno + 1)))?;
            let crc: u32 = parts[4]
                .parse()
                .map_err(|_| StoreError::BadManifest(format!("line {}: bad crc", lineno + 1)))?;
            index.insert(
                (parts[0].to_string(), seq),
                (parts[2].to_string(), raw, crc),
            );
        }
        Ok(())
    }

    fn append_manifest(&self, line: &str) -> Result<(), StoreError> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.manifest_path())?;
        // Single write_all of the whole line: O_APPEND guarantees the line
        // lands atomically even with concurrent materializer workers.
        f.write_all(format!("{line}\n").as_bytes())?;
        Ok(())
    }

    /// Writes a checkpoint payload for `(block_id, seq)`.
    ///
    /// Compresses, CRC-stamps, writes the file, then records the entry in
    /// the manifest (write-ahead of the manifest entry means a crash leaves
    /// at worst an orphaned file, never a manifest entry without data).
    pub fn put(&self, block_id: &str, seq: u64, payload: &[u8]) -> Result<CkptMeta, StoreError> {
        assert!(
            !block_id.contains(['\t', '\n', '/']),
            "block id {block_id:?} contains reserved characters"
        );
        let crc = crc32(payload);
        let compressed = compress(payload);
        let file = format!("{block_id}.{seq:06}");
        let path = self.root.join("ckpt").join(&file);
        fs::write(&path, &compressed)?;
        self.append_manifest(&format!(
            "{block_id}\t{seq}\t{file}\t{}\t{crc}",
            payload.len()
        ))?;
        self.index.lock().insert(
            (block_id.to_string(), seq),
            (file, payload.len() as u64, crc),
        );
        Ok(CkptMeta {
            block_id: block_id.to_string(),
            seq,
            stored_bytes: compressed.len() as u64,
            raw_bytes: payload.len() as u64,
        })
    }

    /// Reads and verifies the checkpoint payload for `(block_id, seq)`.
    pub fn get(&self, block_id: &str, seq: u64) -> Result<Vec<u8>, StoreError> {
        let entry = self
            .index
            .lock()
            .get(&(block_id.to_string(), seq))
            .cloned();
        let (file, raw_len, crc) = entry.ok_or_else(|| StoreError::Missing {
            block_id: block_id.to_string(),
            seq,
        })?;
        let compressed = fs::read(self.root.join("ckpt").join(&file))?;
        let payload = decompress(&compressed).map_err(|e| StoreError::Corrupt {
            block_id: block_id.to_string(),
            seq,
            detail: e.message,
        })?;
        if payload.len() as u64 != raw_len || crc32(&payload) != crc {
            return Err(StoreError::Corrupt {
                block_id: block_id.to_string(),
                seq,
                detail: "crc or length mismatch".into(),
            });
        }
        Ok(payload)
    }

    /// True if a checkpoint exists for `(block_id, seq)`.
    pub fn contains(&self, block_id: &str, seq: u64) -> bool {
        self.index
            .lock()
            .contains_key(&(block_id.to_string(), seq))
    }

    /// Number of checkpoints stored for a block.
    pub fn count(&self, block_id: &str) -> u64 {
        self.index
            .lock()
            .keys()
            .filter(|(b, _)| b == block_id)
            .count() as u64
    }

    /// Highest stored sequence number for a block, if any.
    pub fn latest_seq(&self, block_id: &str) -> Option<u64> {
        self.index
            .lock()
            .keys()
            .filter(|(b, _)| b == block_id)
            .map(|(_, s)| *s)
            .max()
    }

    /// All `(block_id, seq)` pairs, sorted.
    pub fn entries(&self) -> Vec<(String, u64)> {
        self.index.lock().keys().cloned().collect()
    }

    /// Total compressed bytes on disk across all checkpoints.
    pub fn total_stored_bytes(&self) -> u64 {
        let index = self.index.lock();
        index
            .values()
            .map(|(file, _, _)| {
                fs::metadata(self.root.join("ckpt").join(file))
                    .map(|m| m.len())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Total uncompressed bytes across all checkpoints.
    pub fn total_raw_bytes(&self) -> u64 {
        self.index.lock().values().map(|(_, raw, _)| *raw).sum()
    }

    // ---- named artifacts ---------------------------------------------------

    /// Writes a named artifact (recorded source, record log).
    pub fn put_artifact(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        assert!(
            !name.contains(['/', '\\']),
            "artifact name {name:?} must be flat"
        );
        fs::write(self.root.join("artifacts").join(name), bytes)?;
        Ok(())
    }

    /// Reads a named artifact.
    pub fn get_artifact(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        Ok(fs::read(self.root.join("artifacts").join(name))?)
    }

    /// True if the named artifact exists.
    pub fn has_artifact(&self, name: &str) -> bool {
        self.root.join("artifacts").join(name).exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flor-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip() {
        let store = CheckpointStore::open(tmpdir("roundtrip")).unwrap();
        let payload = b"checkpoint payload with zeros \0\0\0\0\0\0".repeat(10);
        let meta = store.put("sb_0", 0, &payload).unwrap();
        assert_eq!(meta.raw_bytes, payload.len() as u64);
        assert_eq!(store.get("sb_0", 0).unwrap(), payload);
    }

    #[test]
    fn missing_checkpoint_errors() {
        let store = CheckpointStore::open(tmpdir("missing")).unwrap();
        assert!(matches!(
            store.get("sb_0", 0),
            Err(StoreError::Missing { .. })
        ));
    }

    #[test]
    fn multiple_seqs_per_block() {
        let store = CheckpointStore::open(tmpdir("seqs")).unwrap();
        for seq in 0..5 {
            store.put("sb_0", seq, format!("payload{seq}").as_bytes()).unwrap();
        }
        assert_eq!(store.count("sb_0"), 5);
        assert_eq!(store.latest_seq("sb_0"), Some(4));
        assert_eq!(store.get("sb_0", 3).unwrap(), b"payload3");
    }

    #[test]
    fn reopen_restores_index() {
        let dir = tmpdir("reopen");
        {
            let store = CheckpointStore::open(&dir).unwrap();
            store.put("sb_0", 0, b"alpha").unwrap();
            store.put("sb_1", 7, b"beta").unwrap();
        }
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.get("sb_0", 0).unwrap(), b"alpha");
        assert_eq!(store.get("sb_1", 7).unwrap(), b"beta");
        assert!(store.contains("sb_1", 7));
        assert!(!store.contains("sb_1", 8));
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmpdir("corrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        // Structured payload: a flipped byte must change the decompressed
        // content (an all-constant payload can survive offset corruption).
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        store.put("sb_0", 0, &payload).unwrap();
        // Flip a byte in the stored file.
        let file = dir.join("ckpt").join("sb_0.000000");
        let mut bytes = fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&file, &bytes).unwrap();
        assert!(matches!(
            store.get("sb_0", 0),
            Err(StoreError::Corrupt { .. }) | Err(StoreError::Io(_))
        ));
    }

    #[test]
    fn truncated_file_is_detected() {
        let dir = tmpdir("trunc");
        let store = CheckpointStore::open(&dir).unwrap();
        store.put("sb_0", 0, &vec![3u8; 5000]).unwrap();
        let file = dir.join("ckpt").join("sb_0.000000");
        let bytes = fs::read(&file).unwrap();
        fs::write(&file, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            store.get("sb_0", 0),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn artifacts_roundtrip() {
        let store = CheckpointStore::open(tmpdir("artifacts")).unwrap();
        store.put_artifact("source.flr", b"import flor\n").unwrap();
        assert!(store.has_artifact("source.flr"));
        assert_eq!(store.get_artifact("source.flr").unwrap(), b"import flor\n");
        assert!(!store.has_artifact("nope"));
    }

    #[test]
    fn byte_accounting() {
        let store = CheckpointStore::open(tmpdir("bytes")).unwrap();
        store.put("sb_0", 0, &vec![0u8; 100_000]).unwrap();
        assert_eq!(store.total_raw_bytes(), 100_000);
        // All zeros compress massively.
        assert!(store.total_stored_bytes() < 5_000);
    }

    #[test]
    fn crc32_known_value() {
        // IEEE CRC32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn concurrent_puts() {
        let store = std::sync::Arc::new(CheckpointStore::open(tmpdir("concurrent")).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for seq in 0..10 {
                    store
                        .put(&format!("sb_{t}"), seq, format!("{t}:{seq}").as_bytes())
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.entries().len(), 40);
        assert_eq!(store.get("sb_2", 9).unwrap(), b"2:9");
    }
}
