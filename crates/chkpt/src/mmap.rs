//! Read-only memory mapping of sealed segment files, libc-free.
//!
//! Cold restores used to `fs::read` the whole segment into heap just to
//! hand out one entry's slice. A [`MmapRegion`] maps the file instead:
//! the kernel faults in only the pages a slice actually touches, the
//! memory stays reclaimable page cache rather than pinned heap, and the
//! existing zero-copy `Bytes` machinery slices straight out of the
//! mapping. The workspace vendors every dependency, so the `mmap`/`munmap`
//! syscalls are issued directly via `std::arch::asm!` on Linux
//! (x86_64/aarch64); everywhere else [`MmapRegion::map`] reports
//! unsupported and the store falls back to the whole-file read path.
//!
//! Safety contract with the store: segments are *immutable once sealed*
//! and compaction replaces them by rename + unlink, never by truncate-in-
//! place, so a live mapping can never observe shrinking backing storage
//! (unlink keeps the inode alive until the last mapping drops). The
//! active (still-growing) segment is only ever mapped at the length the
//! manifest already covers.

use std::fs::File;
use std::io;

/// A read-only, whole-file memory mapping. `AsRef<[u8]>`-compatible so it
/// can back a zero-copy `Bytes` via `Bytes::from_file_backed_owner`.
pub(crate) struct MmapRegion {
    /// Mapping base (page-aligned, kernel-chosen). `0` iff `len == 0`.
    ptr: usize,
    len: usize,
}

// The mapping is PROT_READ and never aliased mutably; the raw pointer is
// only a region handle, so shipping it across threads is sound.
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    const PROT_READ: usize = 0x1;
    const MAP_PRIVATE: usize = 0x2;

    /// `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)`. Returns the
    /// mapping address, or a negated errno in `[-4095, -1]`.
    ///
    /// # Safety
    /// `fd` must be a readable open file descriptor and `len` nonzero.
    pub(super) unsafe fn mmap(len: usize, fd: i32) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        std::arch::asm!(
            "syscall",
            inlateout("rax") 9isize => ret, // SYS_mmap
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") PROT_READ,
            in("r10") MAP_PRIVATE,
            in("r8") fd as isize,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        #[cfg(target_arch = "aarch64")]
        std::arch::asm!(
            "svc #0",
            inlateout("x0") 0usize => ret, // addr hint -> result
            in("x1") len,
            in("x2") PROT_READ,
            in("x3") MAP_PRIVATE,
            in("x4") fd as isize,
            in("x5") 0usize,
            in("x8") 222usize, // SYS_mmap
            options(nostack)
        );
        ret
    }

    /// `munmap(addr, len)`. Returns 0 or a negated errno.
    ///
    /// # Safety
    /// `(addr, len)` must be exactly a live mapping from [`mmap`].
    pub(super) unsafe fn munmap(addr: usize, len: usize) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        std::arch::asm!(
            "syscall",
            inlateout("rax") 11isize => ret, // SYS_munmap
            in("rdi") addr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        #[cfg(target_arch = "aarch64")]
        std::arch::asm!(
            "svc #0",
            inlateout("x0") addr => ret,
            in("x1") len,
            in("x8") 215usize, // SYS_munmap
            options(nostack)
        );
        ret
    }
}

impl MmapRegion {
    /// Maps the first `len` bytes of `file` read-only. `Err` means the
    /// caller should fall back to reading the file into heap (platform
    /// without raw-syscall support, or the kernel refused the mapping) —
    /// the store treats this as a soft miss, never a corruption signal.
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    pub(crate) fn map(file: &File, len: usize) -> io::Result<MmapRegion> {
        use std::os::fd::AsRawFd;
        if len == 0 {
            return Ok(MmapRegion { ptr: 0, len: 0 });
        }
        // SAFETY: `file` is open for reading and `len > 0`; errors are
        // reported as negated errno values and checked below.
        let ret = unsafe { sys::mmap(len, file.as_raw_fd()) };
        if (-4095..0).contains(&ret) {
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(MmapRegion {
            ptr: ret as usize,
            len,
        })
    }

    /// Unsupported platform: always reports `Unsupported` so the store
    /// takes the whole-file read fallback.
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    pub(crate) fn map(_file: &File, _len: usize) -> io::Result<MmapRegion> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap: no raw-syscall backend for this platform",
        ))
    }

    /// Mapped length in bytes.
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

impl AsRef<[u8]> for MmapRegion {
    fn as_ref(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `(ptr, len)` is a live PROT_READ mapping owned by this
        // region (unmapped only in Drop), and sealed segments never shrink
        // under a mapping (see module docs), so the slice stays valid and
        // never faults.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: exactly the mapping produced in `map`; after this the
            // region is gone and no `as_ref` slice can be outstanding (they
            // borrow `self`).
            let _ = unsafe { sys::munmap(self.ptr, self.len) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpfile(tag: &str, contents: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!(
            "flor-mmap-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut f = File::create(&p).unwrap();
        f.write_all(contents).unwrap();
        p
    }

    #[test]
    fn maps_file_contents_and_unmaps_on_drop() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let path = tmpfile("roundtrip", &data);
        let f = File::open(&path).unwrap();
        match MmapRegion::map(&f, data.len()) {
            Ok(region) => {
                assert_eq!(region.as_ref(), &data[..]);
                // Partial-length mapping sees a prefix.
                let head = MmapRegion::map(&f, 1024).unwrap();
                assert_eq!(head.as_ref(), &data[..1024]);
                drop(region);
                drop(head);
            }
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::Unsupported),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_len_maps_to_empty_slice() {
        let path = tmpfile("empty", b"");
        let f = File::open(&path).unwrap();
        if let Ok(region) = MmapRegion::map(&f, 0) {
            assert!(region.as_ref().is_empty());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapping_survives_unlink() {
        // Compaction deletes replaced segments while readers may still
        // hold mappings; the inode must outlive the unlink.
        let data = vec![7u8; 4096 * 3];
        let path = tmpfile("unlink", &data);
        let f = File::open(&path).unwrap();
        if let Ok(region) = MmapRegion::map(&f, data.len()) {
            std::fs::remove_file(&path).unwrap();
            drop(f);
            assert_eq!(region.as_ref(), &data[..]);
        } else {
            let _ = std::fs::remove_file(&path);
        }
    }
}
