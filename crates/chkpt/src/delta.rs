//! Delta-encoded checkpoint frames — the storage format behind checkpoint
//! *chains*.
//!
//! Successive training checkpoints differ only slightly: one SGD step
//! perturbs the mantissa tails of most weights and leaves optimizer
//! padding, shapes, and every structural byte of the serialized payload
//! untouched. Storing each checkpoint as a full compressed slab therefore
//! re-pays the whole payload every iteration. A delta frame instead stores
//! `payload XOR base` where `base` is the previous version of the same
//! checkpoint name:
//!
//! 1. **XOR** against the base payload — unchanged regions become zero.
//! 2. **Byte-shuffle** the XOR stream into f32 lanes (byte 0 of every
//!    4-byte word, then byte 1, …): float drift concentrates in the low
//!    mantissa bytes, so the sign/exponent lanes become long zero runs
//!    even when *every* float moved a little.
//! 3. **Zero-RLE** the shuffled stream (zero runs become varint counts),
//!    then LZ-compress the residue when that still shrinks it.
//!
//! A frame records the base's sequence number, its own chain depth, and
//! the base payload's CRC32, so the store can resolve chains (and detect
//! a re-put base that would silently change what the delta decodes
//! against — that mismatch fails loudly instead). Full keyframes every
//! K versions bound the restore chain length; see
//! [`crate::store::StoreOptions::delta_keyframe_interval`].
//!
//! Frame layout (all integers varint unless noted):
//!
//! ```text
//! frame := magic [0xF1, 0x05] | flags:u8 | base_seq | depth | raw_len
//!          | base_crc:u32 LE | body
//! flags bit 0 — body stream is byte-shuffled into f32 lanes
//! flags bit 1 — RLE stream is further LZ-compressed ([`crate::compress`])
//! body  := zero-RLE stream of the (shuffled) XOR delta:
//!          varint zero_run | varint lit_len | lit bytes | …  (alternating,
//!          starting with a zero run, until raw_len bytes are accounted)
//! ```

use crate::compress::{compress, decompress, CompressError};

/// Delta-frame magic.
const DELTA_MAGIC: [u8; 2] = [0xF1, 0x05];
/// `flags` bit: the delta stream was byte-shuffled into f32 lanes.
const FLAG_SHUFFLED: u8 = 1;
/// `flags` bit: the RLE body was further LZ-compressed.
const FLAG_LZ: u8 = 2;
/// Minimum fraction of zero bytes in the XOR stream for a delta to be
/// worth encoding (below this the payload effectively rewrote itself and
/// the plain keyframe path is cheaper *and* chain-free).
const MIN_ZERO_FRACTION: f64 = 0.35;

fn err(m: impl Into<String>) -> CompressError {
    CompressError { message: m.into() }
}

/// Parsed header of a delta frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaHeader {
    /// Sequence number of the base checkpoint this frame decodes against.
    pub base_seq: u64,
    /// Chain depth of this frame (base's depth + 1; keyframes are 0).
    pub depth: u32,
    /// Length of the reconstructed payload.
    pub raw_len: u64,
    /// CRC32 of the base payload at encode time — verified against the
    /// base's index entry before decoding, so a re-put base fails loudly.
    pub base_crc: u32,
}

/// True when `data` starts with the delta-frame magic.
pub fn is_delta(data: &[u8]) -> bool {
    data.len() >= 2 && data[0..2] == DELTA_MAGIC
}

/// Byte-shuffles `data` into f32 lanes: byte 0 of every aligned 4-byte
/// word, then byte 1, byte 2, byte 3; a non-multiple-of-4 tail is appended
/// verbatim. A pure permutation — [`unshuffle`] inverts it exactly.
pub fn shuffle(data: &[u8]) -> Vec<u8> {
    let words = data.len() / 4;
    let mut out = Vec::with_capacity(data.len());
    for lane in 0..4 {
        for w in 0..words {
            out.push(data[w * 4 + lane]);
        }
    }
    out.extend_from_slice(&data[words * 4..]);
    out
}

/// Inverts [`shuffle`].
pub fn unshuffle(data: &[u8]) -> Vec<u8> {
    let words = data.len() / 4;
    let mut out = vec![0u8; data.len()];
    let mut pos = 0usize;
    for lane in 0..4 {
        for w in 0..words {
            out[w * 4 + lane] = data[pos];
            pos += 1;
        }
    }
    out[words * 4..].copy_from_slice(&data[pos..]);
    out
}

/// XOR of `new` against `base`, `new.len()` bytes long: positions past the
/// end of `base` carry `new`'s bytes verbatim (XOR against implicit
/// zeros), so payloads may grow or shrink between versions. The encode
/// hot path uses the fused [`shuffled_xor_with_zeros`] instead; this
/// composed form survives as its differential-test oracle.
#[cfg(test)]
fn xor_delta(base: &[u8], new: &[u8]) -> Vec<u8> {
    let common = base.len().min(new.len());
    let mut out: Vec<u8> = base[..common]
        .iter()
        .zip(&new[..common])
        .map(|(b, n)| b ^ n)
        .collect();
    out.extend_from_slice(&new[common..]);
    out
}

/// Fused hot path of [`encode`]: produces `shuffle(new XOR base)` in one
/// pass (strided reads, sequential writes) and counts the zero bytes for
/// the worthwhileness probe along the way — equivalent to
/// `shuffle(&xor_delta(base, new))` (XOR commutes with the byte
/// permutation), at one pass and one allocation instead of three.
fn shuffled_xor_with_zeros(base: &[u8], new: &[u8]) -> (Vec<u8>, usize) {
    let n = new.len();
    let words = n / 4;
    let mut out = vec![0u8; n];
    let mut zeros = 0usize;
    let byte_at = |i: usize| -> u8 {
        if i < base.len() {
            base[i] ^ new[i]
        } else {
            new[i]
        }
    };
    // Fast interior: full 4-byte words entirely inside both buffers —
    // iterator zips over exact chunks and the four lane slices, so the
    // loop body carries no bounds checks.
    let safe_words = (base.len().min(n) / 4).min(words);
    {
        let (l0, rest) = out.split_at_mut(words);
        let (l1, rest) = rest.split_at_mut(words);
        let (l2, l3) = rest.split_at_mut(words);
        let lanes = l0
            .iter_mut()
            .zip(l1.iter_mut())
            .zip(l2.iter_mut().zip(l3.iter_mut()));
        let inputs = new.chunks_exact(4).zip(base.chunks_exact(4));
        for (((d0, d1), (d2, d3)), (nc, bc)) in lanes.zip(inputs).take(safe_words) {
            let x = u32::from_le_bytes(nc.try_into().expect("4 bytes"))
                ^ u32::from_le_bytes(bc.try_into().expect("4 bytes"));
            let [b0, b1, b2, b3] = x.to_le_bytes();
            *d0 = b0;
            *d1 = b1;
            *d2 = b2;
            *d3 = b3;
            zeros +=
                (b0 == 0) as usize + (b1 == 0) as usize + (b2 == 0) as usize + (b3 == 0) as usize;
        }
        for w in safe_words..words {
            for (lane, l) in [&mut *l0, &mut *l1, &mut *l2, &mut *l3]
                .into_iter()
                .enumerate()
            {
                let b = byte_at(w * 4 + lane);
                l[w] = b;
                zeros += (b == 0) as usize;
            }
        }
    }
    for (i, o) in out.iter_mut().enumerate().skip(words * 4) {
        let b = byte_at(i);
        *o = b;
        zeros += (b == 0) as usize;
    }
    (out, zeros)
}

/// Zero-RLE: alternating `zero_run, lit_len, lit bytes` varint tokens,
/// starting with a (possibly zero-length) zero run.
fn rle0_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut i = 0usize;
    while i < data.len() {
        let zero_start = i;
        // Skip zero runs 8 bytes at a time (the stream is mostly zeros).
        while i + 8 <= data.len()
            && u64::from_le_bytes(data[i..i + 8].try_into().expect("8 bytes")) == 0
        {
            i += 8;
        }
        while i < data.len() && data[i] == 0 {
            i += 1;
        }
        crate::compress::put_varint(&mut out, (i - zero_start) as u64);
        // Literal run: until the next *worthwhile* zero run (≥ 4 zeros —
        // shorter runs cost more in token framing than they save).
        let lit_start = i;
        while i < data.len() {
            if data[i] == 0 {
                let mut j = i;
                while j < data.len() && data[j] == 0 {
                    j += 1;
                }
                if j - i >= 4 {
                    break;
                }
                i = j;
            } else {
                i += 1;
            }
        }
        crate::compress::put_varint(&mut out, (i - lit_start) as u64);
        out.extend_from_slice(&data[lit_start..i]);
    }
    out
}

/// Inverts [`rle0_encode`]; `raw_len` bounds the output.
fn rle0_decode(data: &[u8], raw_len: usize) -> Result<Vec<u8>, CompressError> {
    // Bounded initial reserve: a corrupt declared length must not allocate
    // ahead of actual decoded data (runs are validated against `raw_len`
    // as they stream, so growth tracks real output).
    let mut out = Vec::with_capacity(raw_len.min(1 << 24));
    let mut pos = 0usize;
    while out.len() < raw_len {
        let zeros = crate::compress::get_varint(data, &mut pos)? as usize;
        if zeros > raw_len - out.len() {
            return Err(err("zero run exceeds declared length"));
        }
        out.resize(out.len() + zeros, 0);
        if out.len() == raw_len && pos == data.len() {
            break;
        }
        let lits = crate::compress::get_varint(data, &mut pos)? as usize;
        if lits > raw_len - out.len() {
            return Err(err("literal run exceeds declared length"));
        }
        let body = data
            .get(pos..pos + lits)
            .ok_or_else(|| err("truncated literal run"))?;
        pos += lits;
        out.extend_from_slice(body);
    }
    if out.len() != raw_len {
        return Err(err(format!(
            "delta stream decoded {} bytes, expected {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

/// Delta-encodes `new` against `base`. Returns `None` when a delta is not
/// worthwhile — the XOR stream has too few zero bytes (the payload
/// effectively rewrote itself), or the finished frame fails to shrink at
/// least 25% below storing `new` raw (a chain entry must *earn* its
/// restore-time chain walk). Marginal frames (between 50% and 75% of the
/// payload — e.g. uniform drift that randomizes the mantissa lanes) are
/// returned; the store's stage path arbitrates those against the plain
/// compressed alternative. `base_seq`/`base_crc` identify the base
/// checkpoint; `depth` is the new frame's chain depth.
pub fn encode(
    base: &[u8],
    new: &[u8],
    base_seq: u64,
    base_crc: u32,
    depth: u32,
) -> Option<Vec<u8>> {
    let (shuffled, zeros) = shuffled_xor_with_zeros(base, new);
    if !new.is_empty() && (zeros as f64 / new.len() as f64) < MIN_ZERO_FRACTION {
        return None;
    }
    let rle = rle0_encode(&shuffled);
    let (body, flags) = {
        let lz = compress(&rle);
        if lz.len() < rle.len() {
            (lz, FLAG_SHUFFLED | FLAG_LZ)
        } else {
            (rle, FLAG_SHUFFLED)
        }
    };
    let mut frame = Vec::with_capacity(body.len() + 24);
    frame.extend_from_slice(&DELTA_MAGIC);
    frame.push(flags);
    crate::compress::put_varint(&mut frame, base_seq);
    crate::compress::put_varint(&mut frame, depth as u64);
    crate::compress::put_varint(&mut frame, new.len() as u64);
    frame.extend_from_slice(&base_crc.to_le_bytes());
    frame.extend_from_slice(&body);
    if frame.len() * 4 > new.len() * 3 {
        return None;
    }
    Some(frame)
}

/// True when `frame` is an unambiguous storage win over any plain
/// encoding of a payload of `raw_len` bytes (at most half the raw size) —
/// the store skips compressing the payload at all in that case.
pub fn is_clear_win(frame: &[u8], raw_len: usize) -> bool {
    frame.len() * 2 <= raw_len
}

/// Parses a delta frame's header without decoding its body.
pub fn header(frame: &[u8]) -> Result<DeltaHeader, CompressError> {
    if !is_delta(frame) {
        return Err(err("bad delta magic"));
    }
    let mut pos = 3usize; // magic + flags
    let base_seq = crate::compress::get_varint(frame, &mut pos)?;
    let depth = crate::compress::get_varint(frame, &mut pos)? as u32;
    let raw_len = crate::compress::get_varint(frame, &mut pos)?;
    let crc_bytes = frame
        .get(pos..pos + 4)
        .ok_or_else(|| err("truncated delta header"))?;
    Ok(DeltaHeader {
        base_seq,
        depth,
        raw_len,
        base_crc: u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")),
    })
}

/// Decodes a delta frame against its base payload, returning the
/// reconstructed full payload. The caller is responsible for having
/// verified that `base` is the right payload (the store checks the
/// frame's `base_crc` against the base's index entry).
pub fn decode(frame: &[u8], base: &[u8]) -> Result<Vec<u8>, CompressError> {
    let h = header(frame)?;
    let flags = frame[2];
    let mut pos = 3usize;
    crate::compress::get_varint(frame, &mut pos)?; // base_seq
    crate::compress::get_varint(frame, &mut pos)?; // depth
    crate::compress::get_varint(frame, &mut pos)?; // raw_len
    pos += 4; // base_crc
    let body = frame
        .get(pos..)
        .ok_or_else(|| err("truncated delta body"))?;
    // Zero-RLE legitimately expands without bound (an unchanged payload is
    // one giant zero run), so the only backstop here is a generous fixed
    // cap; the store additionally cross-checks `raw_len` against the index
    // entry's recorded size before decoding.
    let raw_len = h.raw_len as usize;
    if h.raw_len > 1 << 36 {
        return Err(err("implausible delta length"));
    }
    let rle = if flags & FLAG_LZ != 0 {
        decompress(body)?
    } else {
        body.to_vec()
    };
    let shuffled = rle0_decode(&rle, raw_len)?;
    let delta = if flags & FLAG_SHUFFLED != 0 {
        unshuffle(&shuffled)
    } else {
        shuffled
    };
    // Invert the XOR: positions past the base carry the delta verbatim.
    let mut out = delta;
    let common = base.len().min(out.len());
    for i in 0..common {
        out[i] ^= base[i];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::crc32;

    fn drifted(base: &[f32], step: usize, fraction_denom: usize) -> Vec<f32> {
        // Perturb every `fraction_denom`-th element a little, like one
        // optimizer step over a mostly-frozen model.
        base.iter()
            .enumerate()
            .map(|(i, &v)| {
                if i % fraction_denom == step % fraction_denom {
                    v + 0.001 * (step as f32 + 1.0)
                } else {
                    v
                }
            })
            .collect()
    }

    fn to_bytes(v: &[f32]) -> Vec<u8> {
        v.iter().flat_map(|f| f.to_le_bytes()).collect()
    }

    #[test]
    fn shuffle_is_a_permutation() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 100, 1001] {
            let data: Vec<u8> = (0..n).map(|i| (i % 256) as u8).collect();
            assert_eq!(unshuffle(&shuffle(&data)), data, "n={n}");
        }
    }

    #[test]
    fn delta_roundtrips_drifting_tensor() {
        let base: Vec<f32> = (0..4096).map(|i| (i as f32).sin()).collect();
        let base_b = to_bytes(&base);
        let next_b = to_bytes(&drifted(&base, 1, 20));
        let frame = encode(&base_b, &next_b, 0, crc32(&base_b), 1).expect("delta worthwhile");
        assert!(is_delta(&frame));
        let h = header(&frame).unwrap();
        assert_eq!(h.base_seq, 0);
        assert_eq!(h.depth, 1);
        assert_eq!(h.raw_len, next_b.len() as u64);
        assert_eq!(decode(&frame, &base_b).unwrap(), next_b);
        // And the frame is much smaller than the payload.
        assert!(
            frame.len() * 4 < next_b.len(),
            "{} vs {}",
            frame.len(),
            next_b.len()
        );
    }

    #[test]
    fn grown_and_shrunk_payloads_roundtrip() {
        let base = vec![0xAAu8; 1000];
        let grown = vec![0xAAu8; 1500];
        let shrunk = vec![0xAAu8; 400];
        for new in [&grown, &shrunk] {
            let frame = encode(&base, new, 3, crc32(&base), 1).expect("delta");
            assert_eq!(&decode(&frame, &base).unwrap(), new);
        }
    }

    #[test]
    fn unrelated_payloads_are_rejected() {
        let mut x = 0xDEADBEEFu32;
        let mut rand = |n: usize| -> Vec<u8> {
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    x as u8
                })
                .collect()
        };
        let a = rand(8192);
        let b = rand(8192);
        assert!(
            encode(&a, &b, 0, crc32(&a), 1).is_none(),
            "random-vs-random must fail the zero-density probe"
        );
    }

    #[test]
    fn identical_payloads_collapse_to_tiny_frames() {
        let payload = to_bytes(&(0..2048).map(|i| i as f32).collect::<Vec<_>>());
        let frame = encode(&payload, &payload, 7, crc32(&payload), 2).expect("delta");
        assert!(frame.len() < 64, "identical payload frame: {}", frame.len());
        assert_eq!(decode(&frame, &payload).unwrap(), payload);
    }

    #[test]
    fn every_truncation_fails_loudly() {
        let base = to_bytes(&(0..1024).map(|i| i as f32).collect::<Vec<_>>());
        let next = to_bytes(&drifted(
            &(0..1024).map(|i| i as f32).collect::<Vec<_>>(),
            1,
            10,
        ));
        let frame = encode(&base, &next, 0, crc32(&base), 1).unwrap();
        for cut in 0..frame.len() {
            if let Ok(d) = decode(&frame[..cut], &base) {
                assert_eq!(d, next, "cut {cut} silently altered data");
            }
        }
    }

    #[test]
    fn shuffled_lanes_beat_unshuffled_on_uniform_drift() {
        // Every float drifts: low mantissa bytes change, exponents don't.
        // The shuffled stream groups the unchanged lanes into zero runs.
        let base: Vec<f32> = (0..8192).map(|i| 1.0 + (i as f32) * 1e-6).collect();
        let next: Vec<f32> = base.iter().map(|v| v + 1e-5).collect();
        let (bb, nb) = (to_bytes(&base), to_bytes(&next));
        let delta = xor_delta(&bb, &nb);
        let shuffled_rle = rle0_encode(&shuffle(&delta));
        let plain_rle = rle0_encode(&delta);
        assert!(
            shuffled_rle.len() < plain_rle.len(),
            "shuffle must group zero lanes: {} vs {}",
            shuffled_rle.len(),
            plain_rle.len()
        );
    }

    #[test]
    fn fused_shuffled_xor_matches_the_composed_passes() {
        // The fused hot path must equal shuffle(xor_delta(..)) exactly,
        // including for unequal lengths and non-multiple-of-4 tails.
        let mut x = 7u32;
        let mut rand = |n: usize| -> Vec<u8> {
            (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    x as u8
                })
                .collect()
        };
        for (bn, nn) in [
            (0, 0),
            (16, 16),
            (17, 17),
            (100, 37),
            (37, 100),
            (4096, 4099),
        ] {
            let base = rand(bn);
            let new = rand(nn);
            let (fused, zeros) = shuffled_xor_with_zeros(&base, &new);
            let composed = shuffle(&xor_delta(&base, &new));
            assert_eq!(fused, composed, "base {bn} new {nn}");
            assert_eq!(
                zeros,
                composed.iter().filter(|&&b| b == 0).count(),
                "zero count base {bn} new {nn}"
            );
        }
    }

    #[test]
    fn rle0_handles_all_zero_and_no_zero_streams() {
        let zeros = vec![0u8; 10_000];
        assert!(rle0_encode(&zeros).len() < 8);
        assert_eq!(
            rle0_decode(&rle0_encode(&zeros), zeros.len()).unwrap(),
            zeros
        );
        let ones = vec![1u8; 777];
        assert_eq!(rle0_decode(&rle0_encode(&ones), ones.len()).unwrap(), ones);
        let empty: Vec<u8> = Vec::new();
        assert_eq!(rle0_decode(&rle0_encode(&empty), 0).unwrap(), empty);
    }
}
