//! Background materialization — the paper's §5.1 and Figure 5.
//!
//! "State materialization is expensive because it requires serializing
//! complex Python objects into byte arrays, and then writing those arrays to
//! disk. Of the two, serialization is typically much more expensive than
//! I/O […] we'd like to take materialization (both serialization and I/O)
//! off the main thread — which is dedicated to model training — and do it in
//! the background."
//!
//! Four strategies reproduce Figure 5's design space. What differs is *what
//! work happens on the caller (training) thread* during [`Materializer::submit`]:
//!
//! | Strategy | On caller thread | In background |
//! |---|---|---|
//! | [`Strategy::Baseline`]    | serialize + compress + write | — (cloudpickle) |
//! | [`Strategy::IpcQueue`]    | serialize                    | compress + write (multiprocessing queue) |
//! | [`Strategy::Plasma`]      | O(1) handle transfer          | serialize + compress + write, per job |
//! | [`Strategy::ForkBatched`] | O(1) handle transfer, batched | serialize + compress + write, per batch (the paper's `fork()`) |
//!
//! The paper batches "5000 objects" per fork; we batch [`BATCH_OBJECTS`]
//! snapshot objects per background dispatch. The measured quantity in
//! Figure 5 — main-thread blocked time — is tracked per submit and exposed
//! via [`Materializer::stats`].
//!
//! Worker economics: each background serialization borrows a buffer from a
//! shared [`EncodePool`] (steady-state encoding allocates nothing), and each
//! `ForkBatched` batch lands through one [`CheckpointStore`] group commit —
//! a single batched manifest append instead of one open/append/close per
//! checkpoint. Per-batch flush counts are surfaced in
//! [`MaterializerStats::group_commits`] / [`MaterializerStats::group_commit_jobs`].

use crate::codec::EncodePool;
use crate::store::CheckpointStore;
use bytes::{BufMut, BytesMut};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Objects per background dispatch for [`Strategy::ForkBatched`]
/// (the paper's fork batching, scaled to the miniature workloads).
pub const BATCH_OBJECTS: usize = 8;

/// A deferred-serialization snapshot: cheap to create on the training
/// thread, serialized by a background worker. This is the moral equivalent
/// of the copy-on-write pages a `fork()`ed child reads.
pub trait SerializeSnapshot: Send + Sync {
    /// Serializes the snapshot to checkpoint payload bytes.
    fn serialize(&self) -> Vec<u8>;

    /// Serializes into a reusable buffer (cleared first). The background
    /// workers call this with pooled buffers; override it to avoid the
    /// intermediate `Vec` of the default implementation.
    fn serialize_into(&self, buf: &mut BytesMut) {
        buf.clear();
        buf.put_slice(&self.serialize());
    }

    /// Approximate payload size (for batching heuristics and stats).
    fn approx_bytes(&self) -> usize;

    /// Number of logical objects inside this snapshot (the unit the paper
    /// batches by).
    fn object_count(&self) -> usize {
        1
    }
}

/// A ready-made snapshot over already-encoded bytes.
pub struct BytesSnapshot(pub Vec<u8>);

impl SerializeSnapshot for BytesSnapshot {
    fn serialize(&self) -> Vec<u8> {
        self.0.clone()
    }
    fn serialize_into(&self, buf: &mut BytesMut) {
        buf.clear();
        buf.put_slice(&self.0);
    }
    fn approx_bytes(&self) -> usize {
        self.0.len()
    }
}

/// What a submit carries.
pub enum Payload {
    /// Serialization already happened on the caller.
    Bytes(Vec<u8>),
    /// Serialization deferred to the background (COW-style handle).
    Deferred(Arc<dyn SerializeSnapshot>),
}

impl Payload {
    fn approx_bytes(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            Payload::Deferred(s) => s.approx_bytes(),
        }
    }
}

/// The Figure 5 strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Serialize and write synchronously on the training thread
    /// (cloudpickle baseline).
    Baseline,
    /// Serialize on the training thread, write in the background
    /// (Python `multiprocessing` queue).
    IpcQueue,
    /// Hand the object handle to the background immediately, one job at a
    /// time (Apache Plasma-style shared-memory transfer).
    Plasma,
    /// Hand object handles to the background in batches — the paper's
    /// `fork()` mechanism and Flor's default.
    ForkBatched,
}

/// Counters exposed by [`Materializer::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaterializerStats {
    /// Nanoseconds the *training thread* spent inside `submit` (plus the
    /// caller-side part of `flush`) — Figure 5's y-axis.
    pub main_thread_ns: u64,
    /// Checkpoints submitted.
    pub jobs: u64,
    /// Uncompressed bytes across all submitted checkpoints.
    pub raw_bytes: u64,
    /// Background dispatches (batches for ForkBatched, jobs otherwise).
    pub dispatches: u64,
    /// Store group commits issued by background workers (one per
    /// ForkBatched batch: one batched manifest append each).
    pub group_commits: u64,
    /// Checkpoints that landed through those group commits.
    pub group_commit_jobs: u64,
    /// Checkpoints stored as delta frames against the block's previous
    /// version (meaningful after [`Materializer::flush`]).
    pub delta_checkpoints: u64,
    /// Checkpoints stored as full keyframes.
    pub keyframe_checkpoints: u64,
    /// Bytes actually written to the store across all checkpoints
    /// (compressed / delta-framed / raw) — compare against `raw_bytes`
    /// for the pipeline's effective compression ratio.
    pub stored_bytes: u64,
}

struct Job {
    block_id: String,
    seq: u64,
    payload: Payload,
}

enum WorkerMsg {
    One(Job),
    Batch(Vec<Job>),
    Shutdown,
}

/// Shared counters updated by background workers.
#[derive(Default)]
struct WorkerStats {
    group_commits: AtomicU64,
    group_commit_jobs: AtomicU64,
    delta_checkpoints: AtomicU64,
    keyframe_checkpoints: AtomicU64,
    stored_bytes: AtomicU64,
}

impl WorkerStats {
    /// Folds one commit's metas into the landing counters.
    fn observe_metas(&self, metas: &[crate::store::CkptMeta]) {
        for m in metas {
            if m.chain_depth > 0 {
                self.delta_checkpoints.fetch_add(1, Ordering::Relaxed);
            } else {
                self.keyframe_checkpoints.fetch_add(1, Ordering::Relaxed);
            }
            self.stored_bytes
                .fetch_add(m.stored_bytes, Ordering::Relaxed);
        }
    }
}

/// Asynchronous checkpoint writer with a pluggable strategy.
pub struct Materializer {
    store: Arc<CheckpointStore>,
    strategy: Strategy,
    tx: Option<Sender<WorkerMsg>>,
    workers: Vec<JoinHandle<()>>,
    pending: Mutex<Vec<Job>>,
    pending_objects: Mutex<usize>,
    in_flight: Arc<AtomicU64>,
    main_thread_ns: AtomicU64,
    jobs: AtomicU64,
    raw_bytes: AtomicU64,
    dispatches: AtomicU64,
    worker_stats: Arc<WorkerStats>,
    /// Pool for the Baseline strategy's caller-side encodes (workers hold
    /// their own clone of the same pool).
    pool: Arc<EncodePool>,
    errors: Arc<Mutex<Vec<String>>>,
}

impl Materializer {
    /// Creates a materializer over a shared store.
    ///
    /// `workers` background threads are spawned for the asynchronous
    /// strategies (ignored by `Baseline`). The paper observes "we have never
    /// seen more than two live children at any point", so 2 is the default
    /// used throughout flor-rs.
    pub fn new(store: Arc<CheckpointStore>, strategy: Strategy, workers: usize) -> Self {
        let (tx, rx) = unbounded::<WorkerMsg>();
        let errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let in_flight: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
        let worker_stats: Arc<WorkerStats> = Arc::new(WorkerStats::default());
        let pool: Arc<EncodePool> = Arc::new(EncodePool::new());
        let mut handles = Vec::new();
        if strategy != Strategy::Baseline {
            for i in 0..workers.max(1) {
                let rx = rx.clone();
                let store = store.clone();
                let errors = errors.clone();
                let in_flight = in_flight.clone();
                let worker_stats = worker_stats.clone();
                let pool = pool.clone();
                handles.push(std::thread::spawn(move || {
                    flor_obs::set_lane(
                        flor_obs::trace::LANE_MATERIALIZER_BASE + i as u32,
                        &format!("materializer-{i}"),
                    );
                    loop {
                        match rx.recv() {
                            Ok(WorkerMsg::One(job)) => {
                                write_jobs(&store, vec![job], &pool, &errors, &worker_stats);
                                in_flight.fetch_sub(1, Ordering::AcqRel);
                            }
                            Ok(WorkerMsg::Batch(jobs)) => {
                                let n = jobs.len() as u64;
                                let mut span =
                                    flor_obs::span(flor_obs::Category::Commit, "group_commit");
                                span.set_args(n, 0);
                                write_jobs(&store, jobs, &pool, &errors, &worker_stats);
                                drop(span);
                                worker_stats.group_commits.fetch_add(1, Ordering::Relaxed);
                                worker_stats
                                    .group_commit_jobs
                                    .fetch_add(n, Ordering::Relaxed);
                                in_flight.fetch_sub(1, Ordering::AcqRel);
                            }
                            Ok(WorkerMsg::Shutdown) | Err(_) => return,
                        }
                    }
                }));
            }
        }
        Materializer {
            store,
            strategy,
            tx: Some(tx),
            workers: handles,
            pending: Mutex::new(Vec::new()),
            pending_objects: Mutex::new(0),
            in_flight,
            main_thread_ns: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            raw_bytes: AtomicU64::new(0),
            dispatches: AtomicU64::new(0),
            worker_stats,
            pool,
            errors,
        }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Submits one checkpoint. The caller-visible cost of this call is the
    /// quantity Figure 5 measures.
    pub fn submit(&self, block_id: &str, seq: u64, payload: Payload) {
        let approx = payload.approx_bytes() as u64;
        let mut span = flor_obs::span(flor_obs::Category::Record, "submit");
        span.set_args(seq, approx);
        let t0 = flor_obs::clock::now_ns();
        self.jobs.fetch_add(1, Ordering::Relaxed);
        self.raw_bytes.fetch_add(approx, Ordering::Relaxed);
        match self.strategy {
            Strategy::Baseline => {
                // Everything on the training thread.
                let result = match payload {
                    Payload::Bytes(b) => self.store.put(block_id, seq, &b),
                    Payload::Deferred(s) => self.pool.with_buffer(|buf| {
                        s.serialize_into(buf);
                        self.store.put(block_id, seq, buf.as_ref())
                    }),
                };
                match result {
                    Ok(meta) => self.worker_stats.observe_metas(std::slice::from_ref(&meta)),
                    Err(e) => self.errors.lock().push(e.to_string()),
                }
                self.dispatches.fetch_add(1, Ordering::Relaxed);
            }
            Strategy::IpcQueue => {
                // Serialize on the training thread (the multiprocessing
                // pickling step), ship bytes to the writer.
                let bytes = match payload {
                    Payload::Bytes(b) => b,
                    Payload::Deferred(s) => s.serialize(),
                };
                self.send(WorkerMsg::One(Job {
                    block_id: block_id.to_string(),
                    seq,
                    payload: Payload::Bytes(bytes),
                }));
                self.dispatches.fetch_add(1, Ordering::Relaxed);
            }
            Strategy::Plasma => {
                self.send(WorkerMsg::One(Job {
                    block_id: block_id.to_string(),
                    seq,
                    payload,
                }));
                self.dispatches.fetch_add(1, Ordering::Relaxed);
            }
            Strategy::ForkBatched => {
                let objects = match &payload {
                    Payload::Deferred(s) => s.object_count(),
                    Payload::Bytes(_) => 1,
                };
                let mut pending = self.pending.lock();
                pending.push(Job {
                    block_id: block_id.to_string(),
                    seq,
                    payload,
                });
                let mut count = self.pending_objects.lock();
                *count += objects;
                if *count >= BATCH_OBJECTS {
                    let batch = std::mem::take(&mut *pending);
                    *count = 0;
                    drop(count);
                    drop(pending);
                    self.send(WorkerMsg::Batch(batch));
                    self.dispatches.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let main_ns = flor_obs::clock::since_ns(t0);
        flor_obs::histogram!("record.submit_ns").observe(main_ns);
        self.main_thread_ns.fetch_add(main_ns, Ordering::Relaxed);
    }

    fn send(&self, msg: WorkerMsg) {
        if let Some(tx) = &self.tx {
            if matches!(msg, WorkerMsg::One(_) | WorkerMsg::Batch(_)) {
                self.in_flight.fetch_add(1, Ordering::AcqRel);
            }
            // Receiver lives as long as the workers; failure means shutdown.
            if tx.send(msg).is_err() {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }

    /// Flushes pending batches and blocks until all background work is
    /// durable. Call at end of run (record exit).
    ///
    /// Only the dispatch itself is charged to `main_thread_ns`: Figure 5's
    /// metric is "how long the main thread takes to finish executing,
    /// ignoring any child processes and letting them run in the
    /// background" — the durability barrier happens after the training
    /// program's work is done.
    pub fn flush(&self) {
        let t0 = flor_obs::clock::now_ns();
        let batch = {
            let mut pending = self.pending.lock();
            *self.pending_objects.lock() = 0;
            std::mem::take(&mut *pending)
        };
        if !batch.is_empty() {
            self.send(WorkerMsg::Batch(batch));
            self.dispatches.fetch_add(1, Ordering::Relaxed);
        }
        self.main_thread_ns
            .fetch_add(flor_obs::clock::since_ns(t0), Ordering::Relaxed);
        // Durability barrier: wait for the in-flight message count to reach
        // zero (not charged to the Figure 5 metric).
        if self.strategy != Strategy::Baseline {
            while self.in_flight.load(Ordering::Acquire) > 0 {
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
        }
    }

    /// Counters so far. `main_thread_ns` is meaningful after [`flush`].
    ///
    /// [`flush`]: Materializer::flush
    pub fn stats(&self) -> MaterializerStats {
        MaterializerStats {
            main_thread_ns: self.main_thread_ns.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            raw_bytes: self.raw_bytes.load(Ordering::Relaxed),
            dispatches: self.dispatches.load(Ordering::Relaxed),
            group_commits: self.worker_stats.group_commits.load(Ordering::Relaxed),
            group_commit_jobs: self.worker_stats.group_commit_jobs.load(Ordering::Relaxed),
            delta_checkpoints: self.worker_stats.delta_checkpoints.load(Ordering::Relaxed),
            keyframe_checkpoints: self
                .worker_stats
                .keyframe_checkpoints
                .load(Ordering::Relaxed),
            stored_bytes: self.worker_stats.stored_bytes.load(Ordering::Relaxed),
        }
    }

    /// Background write errors observed so far (surfaced to deferred checks).
    pub fn errors(&self) -> Vec<String> {
        self.errors.lock().clone()
    }
}

impl Drop for Materializer {
    fn drop(&mut self) {
        self.flush();
        for _ in 0..self.workers.len() {
            self.send(WorkerMsg::Shutdown);
        }
        self.tx = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Serializes `jobs` through a pooled buffer and lands them in one store
/// group commit (single batched manifest append; see `store` module docs
/// for the durability contract).
fn write_jobs(
    store: &CheckpointStore,
    jobs: Vec<Job>,
    pool: &EncodePool,
    errors: &Mutex<Vec<String>>,
    stats: &WorkerStats,
) {
    let mut batch = store.batch();
    pool.with_buffer(|buf| {
        for job in jobs {
            match job.payload {
                Payload::Bytes(b) => batch.stage(&job.block_id, job.seq, &b),
                Payload::Deferred(s) => {
                    s.serialize_into(buf);
                    batch.stage(&job.block_id, job.seq, buf.as_ref());
                }
            }
        }
    });
    match batch.commit() {
        Ok(metas) => stats.observe_metas(&metas),
        Err(e) => errors.lock().push(format!("background write failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpstore(tag: &str) -> Arc<CheckpointStore> {
        let dir = std::env::temp_dir().join(format!(
            "flor-mat-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(CheckpointStore::open(dir).unwrap())
    }

    /// A snapshot whose serialization is deliberately slow, to make the
    /// main-thread-time ordering observable.
    struct SlowSnapshot {
        bytes: Vec<u8>,
        delay_us: u64,
    }

    impl SerializeSnapshot for SlowSnapshot {
        fn serialize(&self) -> Vec<u8> {
            std::thread::sleep(std::time::Duration::from_micros(self.delay_us));
            self.bytes.clone()
        }
        fn approx_bytes(&self) -> usize {
            self.bytes.len()
        }
    }

    fn run_strategy(strategy: Strategy, tag: &str) -> (MaterializerStats, Arc<CheckpointStore>) {
        let store = tmpstore(tag);
        let mat = Materializer::new(store.clone(), strategy, 2);
        for seq in 0..12 {
            mat.submit(
                "sb_0",
                seq,
                Payload::Deferred(Arc::new(SlowSnapshot {
                    bytes: vec![seq as u8; 2000],
                    delay_us: 300,
                })),
            );
        }
        mat.flush();
        (mat.stats(), store)
    }

    #[test]
    fn all_strategies_persist_everything() {
        for (strategy, tag) in [
            (Strategy::Baseline, "base"),
            (Strategy::IpcQueue, "ipc"),
            (Strategy::Plasma, "plasma"),
            (Strategy::ForkBatched, "fork"),
        ] {
            let (stats, store) = run_strategy(strategy, tag);
            assert_eq!(stats.jobs, 12, "{strategy:?}");
            assert_eq!(store.count("sb_0"), 12, "{strategy:?}");
            for seq in 0..12 {
                assert_eq!(
                    store.get("sb_0", seq).unwrap(),
                    vec![seq as u8; 2000],
                    "{strategy:?} seq {seq}"
                );
            }
        }
    }

    #[test]
    fn baseline_pays_serialization_on_main_thread() {
        // Baseline must serialize 12 × 300µs on the caller; ForkBatched's
        // caller does O(1) handle pushes. Use generous margins (CI noise).
        let (base, _) = run_strategy(Strategy::Baseline, "cmp-base");
        let (fork, _) = run_strategy(Strategy::ForkBatched, "cmp-fork");
        assert!(
            base.main_thread_ns > 12 * 300 * 1000,
            "baseline main-thread {}ns",
            base.main_thread_ns
        );
        assert!(
            fork.main_thread_ns < base.main_thread_ns,
            "fork {} !< baseline {}",
            fork.main_thread_ns,
            base.main_thread_ns
        );
    }

    #[test]
    fn ipc_queue_also_pays_serialization() {
        let (ipc, _) = run_strategy(Strategy::IpcQueue, "cmp-ipc");
        assert!(
            ipc.main_thread_ns > 12 * 300 * 1000,
            "ipc serializes on caller: {}ns",
            ipc.main_thread_ns
        );
    }

    #[test]
    fn fork_batches_dispatches() {
        let (fork, _) = run_strategy(Strategy::ForkBatched, "batch");
        // 12 jobs at 1 object each, batch size 8 → 1 full batch + flush
        // ships the remaining 4 as 1 batch.
        assert!(
            fork.dispatches <= 3,
            "expected few batched dispatches, got {}",
            fork.dispatches
        );
        // Every batch landed as one store group commit.
        assert_eq!(fork.group_commits, fork.dispatches);
        assert_eq!(fork.group_commit_jobs, 12);
        let (plasma, _) = run_strategy(Strategy::Plasma, "nobatch");
        assert_eq!(plasma.dispatches, 12);
        assert_eq!(
            plasma.group_commits, 0,
            "per-job path is not a group commit"
        );
    }

    #[test]
    fn flush_is_a_barrier() {
        let store = tmpstore("barrier");
        let mat = Materializer::new(store.clone(), Strategy::ForkBatched, 2);
        mat.submit(
            "sb_0",
            0,
            Payload::Deferred(Arc::new(SlowSnapshot {
                bytes: vec![1; 100],
                delay_us: 5_000,
            })),
        );
        mat.flush();
        // After flush the checkpoint must be durable.
        assert!(store.contains("sb_0", 0));
    }

    #[test]
    fn drop_flushes_outstanding_work() {
        let store = tmpstore("drop");
        {
            let mat = Materializer::new(store.clone(), Strategy::ForkBatched, 1);
            mat.submit("sb_0", 0, Payload::Bytes(vec![9; 50]));
            // No explicit flush.
        }
        assert!(store.contains("sb_0", 0));
    }

    #[test]
    fn stats_track_bytes() {
        let (stats, _) = run_strategy(Strategy::Plasma, "stats");
        assert_eq!(stats.raw_bytes, 12 * 2000);
    }

    #[test]
    fn drifting_snapshots_land_as_delta_chains() {
        let store = tmpstore("delta-mat");
        let mat = Materializer::new(store.clone(), Strategy::ForkBatched, 2);
        // Drifting f32 payloads: structurally identical, slightly moved.
        let payload = |v: u64| -> Vec<u8> {
            (0..1024u32)
                .flat_map(|i| {
                    let f =
                        (i as f32 * 0.11).cos() + if i % 13 == 0 { v as f32 * 0.01 } else { 0.0 };
                    f.to_le_bytes()
                })
                .collect()
        };
        for seq in 0..12u64 {
            mat.submit("sb_0", seq, Payload::Bytes(payload(seq)));
        }
        mat.flush();
        let stats = mat.stats();
        assert_eq!(stats.delta_checkpoints + stats.keyframe_checkpoints, 12);
        assert!(stats.delta_checkpoints >= 6, "{stats:?}");
        assert!(
            stats.stored_bytes * 3 < stats.raw_bytes,
            "delta pipeline must shrink drifting payloads ≥3×: {stats:?}"
        );
        for seq in 0..12u64 {
            assert_eq!(store.get("sb_0", seq).unwrap(), payload(seq));
        }
    }

    #[test]
    fn pooled_serialize_into_is_used_and_correct() {
        // A snapshot that only implements serialize(); the default
        // serialize_into must still land identical bytes via the pool.
        let store = tmpstore("pooled");
        let mat = Materializer::new(store.clone(), Strategy::ForkBatched, 1);
        for seq in 0..BATCH_OBJECTS as u64 + 3 {
            mat.submit(
                "sb_0",
                seq,
                Payload::Deferred(Arc::new(BytesSnapshot(vec![seq as u8; 4096]))),
            );
        }
        mat.flush();
        for seq in 0..BATCH_OBJECTS as u64 + 3 {
            assert_eq!(store.get("sb_0", seq).unwrap(), vec![seq as u8; 4096]);
        }
        assert!(mat.errors().is_empty());
    }
}
