//! # flor-chkpt
//!
//! The checkpoint substrate for flor-rs: everything between "here is the
//! state a SkipBlock must memoize" and "the bytes are durably on disk
//! (and spooled to cheap object storage)".
//!
//! Reproduces three pieces of *Hindsight Logging for Model Training*
//! (Garcia et al., VLDB 2020):
//!
//! - **Serialization** ([`codec`]): a hand-rolled, versioned, tagged binary
//!   format standing in for `cloudpickle`. The paper's §5.1 microbenchmark
//!   found serialization ≈ 4.3× the cost of the disk write; `bench_codec`
//!   in `flor-bench` measures the same ratio for this codec.
//! - **Background materialization** ([`background`]): the paper's Figure 5
//!   design space. Four strategies differ in *where serialization happens
//!   relative to the training thread* and whether jobs are batched:
//!   `Baseline` (everything on the caller, à la cloudpickle), `IpcQueue`
//!   (serialize on caller, write in background), `Plasma` (hand the object
//!   to the background immediately), and `ForkBatched` (the paper's fork()
//!   approach: O(1) snapshot on the caller, serialize+compress+write in the
//!   background, batched). Rust has no GIL, so "fork" is realized as cheap
//!   `Arc` snapshot handles consumed by worker threads — same critical-path
//!   economics, different OS mechanism (see DESIGN.md).
//! - **Storage & spooling** ([`store`], [`spool`]): a segmented on-disk
//!   checkpoint store — payloads packed into large append-only segment
//!   files with CRC-protected footer indexes, a sharded in-memory index,
//!   zero-copy [`store::CheckpointStore::get_bytes`] reads, and a
//!   compacting GC — plus the S3 spool cost model behind Table 4. Writes
//!   land through [`store::WriteBatch`] group commits — one batched
//!   segment append and one batched manifest append (and, under
//!   [`store::Durability::GroupCommit`], one fsync barrier) per
//!   materializer batch instead of per checkpoint.

#![warn(missing_docs)]

pub mod background;
pub mod codec;
pub mod compress;
pub mod dedup;
pub mod delta;
pub mod exec;
mod mmap;
pub mod spool;
pub mod store;

pub use background::{Materializer, MaterializerStats, Payload, SerializeSnapshot, Strategy};
pub use codec::{decode, encode, encode_into, ByteSource, CVal, CodecError, EncodePool, LazyBytes};
pub use dedup::DedupIndex;
pub use store::{
    CheckpointStore, CkptMeta, CompactionReport, Compressor, Durability, RecoveryReport,
    SegmentRead, StoreError, StoreFormat, StoreOptions, StoreStats, WriteBatch,
};

// Byte-buffer types used in the public API (`ByteSource::write_to`,
// `SerializeSnapshot::serialize_into`), re-exported so downstream crates
// don't need their own `bytes` dependency.
pub use bytes::{Buf, BufMut, Bytes, BytesMut};
