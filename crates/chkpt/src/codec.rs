//! Tagged binary value codec — the `cloudpickle` stand-in.
//!
//! [`CVal`] is the interchange representation: checkpoint producers (the
//! interpreter's object graph, native `Checkpointable` state) lower
//! themselves to a `CVal` tree, which encodes to a self-describing byte
//! stream. The format is versioned (one magic byte) and length-prefixed
//! throughout, so truncation and corruption are detected rather than
//! misread.
//!
//! Layout (all integers little-endian; lengths are LEB128 varints):
//!
//! ```text
//! stream  := MAGIC value
//! value   := tag payload
//! tag     := u8
//! Unit    0x00 —
//! Bool    0x01 u8
//! I64     0x02 zigzag varint
//! F64     0x03 8 bytes
//! Str     0x04 len bytes(utf8)
//! Bytes   0x05 len bytes
//! List    0x06 count value*
//! Map     0x07 count (str value)*
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: u8 = 0xF1;

/// A checkpointable value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum CVal {
    /// Nothing (Python `None`).
    Unit,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes (tensor payloads).
    Bytes(Vec<u8>),
    /// Ordered sequence.
    List(Vec<CVal>),
    /// Ordered string-keyed map (insertion order preserved — determinism
    /// matters for byte-identical re-encoding).
    Map(Vec<(String, CVal)>),
}

impl CVal {
    /// Builds a map from key/value pairs.
    pub fn map(pairs: Vec<(impl Into<String>, CVal)>) -> CVal {
        CVal::Map(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&CVal> {
        match self {
            CVal::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Approximate in-memory size in bytes (used by materialization
    /// batching and the spool cost model).
    pub fn approx_bytes(&self) -> usize {
        match self {
            CVal::Unit | CVal::Bool(_) => 1,
            CVal::I64(_) | CVal::F64(_) => 8,
            CVal::Str(s) => s.len() + 5,
            CVal::Bytes(b) => b.len() + 5,
            CVal::List(items) => items.iter().map(CVal::approx_bytes).sum::<usize>() + 5,
            CVal::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| k.len() + 5 + v.approx_bytes())
                .sum::<usize>()
                + 5,
        }
    }
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

fn err(message: impl Into<String>) -> CodecError {
    CodecError {
        message: message.into(),
    }
}

/// Encodes a value tree to bytes.
pub fn encode(val: &CVal) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(val.approx_bytes() + 16);
    buf.put_u8(MAGIC);
    encode_into(val, &mut buf);
    buf.to_vec()
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn encode_into(val: &CVal, buf: &mut BytesMut) {
    match val {
        CVal::Unit => buf.put_u8(0x00),
        CVal::Bool(b) => {
            buf.put_u8(0x01);
            buf.put_u8(*b as u8);
        }
        CVal::I64(i) => {
            buf.put_u8(0x02);
            put_varint(buf, zigzag(*i));
        }
        CVal::F64(x) => {
            buf.put_u8(0x03);
            buf.put_f64_le(*x);
        }
        CVal::Str(s) => {
            buf.put_u8(0x04);
            put_varint(buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
        CVal::Bytes(b) => {
            buf.put_u8(0x05);
            put_varint(buf, b.len() as u64);
            buf.put_slice(b);
        }
        CVal::List(items) => {
            buf.put_u8(0x06);
            put_varint(buf, items.len() as u64);
            for item in items {
                encode_into(item, buf);
            }
        }
        CVal::Map(pairs) => {
            buf.put_u8(0x07);
            put_varint(buf, pairs.len() as u64);
            for (k, v) in pairs {
                put_varint(buf, k.len() as u64);
                buf.put_slice(k.as_bytes());
                encode_into(v, buf);
            }
        }
    }
}

/// Decodes bytes produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<CVal, CodecError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if !buf.has_remaining() {
        return Err(err("empty input"));
    }
    let magic = buf.get_u8();
    if magic != MAGIC {
        return Err(err(format!("bad magic byte {magic:#x}")));
    }
    let val = decode_one(&mut buf)?;
    if buf.has_remaining() {
        return Err(err(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(val)
}

fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(err("truncated varint"));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(err("varint overflow"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn get_len(buf: &mut Bytes) -> Result<usize, CodecError> {
    let n = get_varint(buf)? as usize;
    if n > buf.remaining() {
        return Err(err(format!(
            "declared length {n} exceeds remaining {} bytes",
            buf.remaining()
        )));
    }
    Ok(n)
}

fn get_str(buf: &mut Bytes) -> Result<String, CodecError> {
    let n = get_len(buf)?;
    let raw = buf.copy_to_bytes(n);
    String::from_utf8(raw.to_vec()).map_err(|_| err("invalid utf-8 in string"))
}

fn decode_one(buf: &mut Bytes) -> Result<CVal, CodecError> {
    if !buf.has_remaining() {
        return Err(err("truncated value"));
    }
    match buf.get_u8() {
        0x00 => Ok(CVal::Unit),
        0x01 => {
            if !buf.has_remaining() {
                return Err(err("truncated bool"));
            }
            match buf.get_u8() {
                0 => Ok(CVal::Bool(false)),
                1 => Ok(CVal::Bool(true)),
                other => Err(err(format!("bad bool byte {other}"))),
            }
        }
        0x02 => Ok(CVal::I64(unzigzag(get_varint(buf)?))),
        0x03 => {
            if buf.remaining() < 8 {
                return Err(err("truncated f64"));
            }
            Ok(CVal::F64(buf.get_f64_le()))
        }
        0x04 => Ok(CVal::Str(get_str(buf)?)),
        0x05 => {
            let n = get_len(buf)?;
            Ok(CVal::Bytes(buf.copy_to_bytes(n).to_vec()))
        }
        0x06 => {
            let n = get_varint(buf)? as usize;
            // Each element takes at least one byte.
            if n > buf.remaining() {
                return Err(err("list count exceeds remaining bytes"));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_one(buf)?);
            }
            Ok(CVal::List(items))
        }
        0x07 => {
            let n = get_varint(buf)? as usize;
            if n > buf.remaining() {
                return Err(err("map count exceeds remaining bytes"));
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let k = get_str(buf)?;
                let v = decode_one(buf)?;
                pairs.push((k, v));
            }
            Ok(CVal::Map(pairs))
        }
        tag => Err(err(format!("unknown tag {tag:#x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: CVal) {
        let bytes = encode(&v);
        let back = decode(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn roundtrip_scalars() {
        roundtrip(CVal::Unit);
        roundtrip(CVal::Bool(true));
        roundtrip(CVal::Bool(false));
        roundtrip(CVal::I64(0));
        roundtrip(CVal::I64(-1));
        roundtrip(CVal::I64(i64::MAX));
        roundtrip(CVal::I64(i64::MIN));
        roundtrip(CVal::F64(3.25));
        roundtrip(CVal::F64(f64::NEG_INFINITY));
        roundtrip(CVal::Str("héllo\nworld".into()));
        roundtrip(CVal::Str(String::new()));
    }

    #[test]
    fn roundtrip_containers() {
        roundtrip(CVal::Bytes(vec![0, 1, 2, 255]));
        roundtrip(CVal::List(vec![CVal::I64(1), CVal::Str("a".into()), CVal::Unit]));
        roundtrip(CVal::map(vec![
            ("weights", CVal::Bytes(vec![1; 100])),
            ("step", CVal::I64(42)),
            ("nested", CVal::List(vec![CVal::Bool(false)])),
        ]));
    }

    #[test]
    fn nan_roundtrips_as_nan() {
        let bytes = encode(&CVal::F64(f64::NAN));
        match decode(&bytes).unwrap() {
            CVal::F64(x) => assert!(x.is_nan()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn map_order_is_preserved() {
        let v = CVal::map(vec![("z", CVal::I64(1)), ("a", CVal::I64(2))]);
        match decode(&encode(&v)).unwrap() {
            CVal::Map(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = CVal::map(vec![("a", CVal::List(vec![CVal::F64(1.5); 10]))]);
        assert_eq!(encode(&v), encode(&v));
    }

    #[test]
    fn truncation_always_detected() {
        let v = CVal::map(vec![
            ("k1", CVal::Bytes(vec![7; 64])),
            ("k2", CVal::List(vec![CVal::I64(-5), CVal::Str("x".into())])),
        ]);
        let bytes = encode(&v);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = encode(&CVal::I64(7));
        bytes.push(0x00);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = encode(&CVal::I64(7));
        bytes[0] = 0x00;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_detected() {
        let bytes = vec![MAGIC, 0x42];
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn hostile_length_rejected_without_allocation() {
        // Claim a 2^60-byte string in a tiny buffer.
        let mut bytes = vec![MAGIC, 0x04];
        // varint for a huge number
        bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f]);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn get_on_map() {
        let v = CVal::map(vec![("a", CVal::I64(1))]);
        assert_eq!(v.get("a"), Some(&CVal::I64(1)));
        assert_eq!(v.get("b"), None);
        assert_eq!(CVal::Unit.get("a"), None);
    }

    #[test]
    fn approx_bytes_tracks_payload() {
        let small = CVal::I64(1);
        let big = CVal::Bytes(vec![0; 10_000]);
        assert!(big.approx_bytes() > small.approx_bytes() * 100);
    }
}
