//! Tagged binary value codec — the `cloudpickle` stand-in.
//!
//! [`CVal`] is the interchange representation: checkpoint producers (the
//! interpreter's object graph, native `Checkpointable` state) lower
//! themselves to a `CVal` tree, which encodes to a self-describing byte
//! stream. The format is versioned (one magic byte) and length-prefixed
//! throughout, so truncation and corruption are detected rather than
//! misread.
//!
//! Layout (all integers little-endian; lengths are LEB128 varints):
//!
//! ```text
//! stream  := MAGIC value
//! value   := tag payload
//! tag     := u8
//! Unit    0x00 —
//! Bool    0x01 u8
//! I64     0x02 zigzag varint     (legacy; still decoded)
//! F64     0x03 8 bytes
//! Str     0x04 len bytes(utf8)
//! Bytes   0x05 len bytes
//! List    0x06 count value*
//! Map     0x07 count (str value)*
//! I64     0x08 8 bytes           (what the encoder emits)
//! ```
//!
//! Integers encode **fixed-width** (tag `0x08`): a varint scalar early in
//! a snapshot (an RNG state, a step counter) would change length between
//! checkpoint versions and shift every later byte, destroying the
//! byte-alignment the store's XOR delta chains depend on. Length prefixes
//! stay varint — they describe structure (names, shapes, counts) that is
//! stable across versions of one checkpoint. The legacy `0x02` zigzag
//! form is still decoded, so pre-existing stores read unchanged.
//!
//! Two properties matter for the record hot path:
//!
//! - **Zero-copy leaves.** [`CVal::Bytes`] holds a refcounted
//!   [`bytes::Bytes`], and [`CVal::Lazy`] holds a [`ByteSource`] handle whose
//!   payload is produced only at encode time. Building a snapshot tree on
//!   the training thread therefore costs O(#objects), not O(bytes) — the
//!   byte-producing work runs on the background materializer. A `Lazy` leaf
//!   encodes with the same `0x05` tag as an eager `Bytes` leaf holding the
//!   same content, so the wire format is unchanged and byte-identical.
//! - **Pooled encoding.** [`encode_into`] writes into a caller-supplied
//!   [`BytesMut`] so the materializer can reuse one buffer per worker
//!   ([`EncodePool`]) instead of allocating per checkpoint. [`encode`] is the
//!   convenience wrapper producing a fresh `Vec`; both share one code path,
//!   so their output is identical by construction.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

const MAGIC: u8 = 0xF1;

/// A producer of raw payload bytes, resolved at encode time.
///
/// Implementations append exactly [`ByteSource::len`] bytes in
/// [`ByteSource::write_to`]; the codec length-prefixes with `len()` before
/// calling `write_to`, so a mismatch corrupts the stream (debug-asserted).
pub trait ByteSource: Send + Sync {
    /// Exact number of bytes [`ByteSource::write_to`] will append.
    fn len(&self) -> usize;

    /// True when the payload is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends the payload to `buf` (must not clear or otherwise disturb
    /// bytes already in the buffer).
    fn write_to(&self, buf: &mut BytesMut);
}

/// A cheap, refcounted handle to deferred payload bytes (e.g. a tensor slab
/// held by the training program). Cloning is an `Arc` bump; the bytes are
/// produced only when the tree is encoded or the leaf is materialized.
#[derive(Clone)]
pub struct LazyBytes(Arc<dyn ByteSource>);

impl LazyBytes {
    /// Wraps a byte source.
    pub fn new(source: impl ByteSource + 'static) -> Self {
        LazyBytes(Arc::new(source))
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.len() == 0
    }

    /// Produces the payload as an owned [`Bytes`].
    pub fn materialize(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.len());
        self.0.write_to(&mut buf);
        buf.freeze()
    }

    fn append_to(&self, buf: &mut BytesMut) {
        let before = buf.len();
        self.0.write_to(buf);
        debug_assert_eq!(
            buf.len() - before,
            self.len(),
            "ByteSource wrote a different length than it declared"
        );
    }
}

impl fmt::Debug for LazyBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LazyBytes({} bytes)", self.len())
    }
}

/// A checkpointable value tree.
#[derive(Debug, Clone)]
pub enum CVal {
    /// Nothing (Python `None`).
    Unit,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes (tensor payloads), refcounted — cloning shares the backing.
    Bytes(Bytes),
    /// Deferred bytes: a handle resolved at encode time, so building the
    /// tree never copies the payload on the caller thread. Encodes
    /// identically to [`CVal::Bytes`] with the same content; decoding always
    /// yields [`CVal::Bytes`].
    Lazy(LazyBytes),
    /// Ordered sequence.
    List(Vec<CVal>),
    /// Ordered string-keyed map (insertion order preserved — determinism
    /// matters for byte-identical re-encoding).
    Map(Vec<(String, CVal)>),
}

/// Equality is structural; `Bytes` and `Lazy` leaves compare by payload
/// content, so a deferred leaf equals an eager leaf with the same bytes.
impl PartialEq for CVal {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (CVal::Unit, CVal::Unit) => true,
            (CVal::Bool(a), CVal::Bool(b)) => a == b,
            (CVal::I64(a), CVal::I64(b)) => a == b,
            (CVal::F64(a), CVal::F64(b)) => a == b,
            (CVal::Str(a), CVal::Str(b)) => a == b,
            (CVal::List(a), CVal::List(b)) => a == b,
            (CVal::Map(a), CVal::Map(b)) => a == b,
            (a @ (CVal::Bytes(_) | CVal::Lazy(_)), b @ (CVal::Bytes(_) | CVal::Lazy(_))) => {
                // Compare payloads; avoid materializing when both are eager.
                match (a, b) {
                    (CVal::Bytes(x), CVal::Bytes(y)) => x == y,
                    _ => a.as_bytes() == b.as_bytes(),
                }
            }
            _ => false,
        }
    }
}

impl CVal {
    /// Builds a map from key/value pairs.
    pub fn map(pairs: Vec<(impl Into<String>, CVal)>) -> CVal {
        CVal::Map(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an eager bytes leaf.
    pub fn bytes(data: impl Into<Bytes>) -> CVal {
        CVal::Bytes(data.into())
    }

    /// Builds a deferred bytes leaf over a [`ByteSource`].
    pub fn lazy(source: impl ByteSource + 'static) -> CVal {
        CVal::Lazy(LazyBytes::new(source))
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&CVal> {
        match self {
            CVal::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Payload of a bytes-like leaf ([`CVal::Bytes`] shares its backing,
    /// [`CVal::Lazy`] materializes); `None` for every other variant.
    pub fn as_bytes(&self) -> Option<Bytes> {
        match self {
            CVal::Bytes(b) => Some(b.clone()),
            CVal::Lazy(l) => Some(l.materialize()),
            _ => None,
        }
    }

    /// Approximate in-memory size in bytes (used by materialization
    /// batching and the spool cost model).
    pub fn approx_bytes(&self) -> usize {
        match self {
            CVal::Unit | CVal::Bool(_) => 1,
            CVal::I64(_) | CVal::F64(_) => 8,
            CVal::Str(s) => s.len() + 5,
            CVal::Bytes(b) => b.len() + 5,
            CVal::Lazy(l) => l.len() + 5,
            CVal::List(items) => items.iter().map(CVal::approx_bytes).sum::<usize>() + 5,
            CVal::Map(pairs) => {
                pairs
                    .iter()
                    .map(|(k, v)| k.len() + 5 + v.approx_bytes())
                    .sum::<usize>()
                    + 5
            }
        }
    }
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.message)
    }
}

impl std::error::Error for CodecError {}

fn err(message: impl Into<String>) -> CodecError {
    CodecError {
        message: message.into(),
    }
}

/// Encodes a value tree to a fresh byte vector.
///
/// The materializer hot path uses [`encode_into`] with a pooled buffer
/// instead; both produce identical bytes (one shared code path).
pub fn encode(val: &CVal) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(val.approx_bytes() + 16);
    encode_into(val, &mut buf);
    buf.into_vec()
}

/// Encodes a value tree into `buf`, clearing it first. The buffer's
/// allocation is reused across calls — this is the zero-allocation encode
/// entry point for pooled buffers ([`EncodePool`]).
pub fn encode_into(val: &CVal, buf: &mut BytesMut) {
    buf.clear();
    buf.put_u8(MAGIC);
    encode_value(val, buf);
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Zigzag for the legacy varint I64 form (the encoder now emits fixed
/// width; this survives for tests pinning legacy-stream decoding).
#[cfg(test)]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn encode_value(val: &CVal, buf: &mut BytesMut) {
    match val {
        CVal::Unit => buf.put_u8(0x00),
        CVal::Bool(b) => {
            buf.put_u8(0x01);
            buf.put_u8(*b as u8);
        }
        CVal::I64(i) => {
            // Fixed-width (tag 0x08): a varint here would change length as
            // the value drifts between checkpoint versions and shift every
            // later byte, breaking delta-chain alignment.
            buf.put_u8(0x08);
            buf.put_slice(&i.to_le_bytes());
        }
        CVal::F64(x) => {
            buf.put_u8(0x03);
            buf.put_f64_le(*x);
        }
        CVal::Str(s) => {
            buf.put_u8(0x04);
            put_varint(buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
        CVal::Bytes(b) => {
            buf.put_u8(0x05);
            put_varint(buf, b.len() as u64);
            buf.put_slice(b.as_ref());
        }
        CVal::Lazy(l) => {
            // Same wire form as an eager Bytes leaf: the payload is simply
            // produced now, straight into the encode buffer.
            buf.put_u8(0x05);
            put_varint(buf, l.len() as u64);
            l.append_to(buf);
        }
        CVal::List(items) => {
            buf.put_u8(0x06);
            put_varint(buf, items.len() as u64);
            for item in items {
                encode_value(item, buf);
            }
        }
        CVal::Map(pairs) => {
            buf.put_u8(0x07);
            put_varint(buf, pairs.len() as u64);
            for (k, v) in pairs {
                put_varint(buf, k.len() as u64);
                buf.put_slice(k.as_bytes());
                encode_value(v, buf);
            }
        }
    }
}

/// Decodes bytes produced by [`encode`]. Bytes leaves are zero-copy slices
/// of one shared backing buffer.
pub fn decode(bytes: &[u8]) -> Result<CVal, CodecError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if !buf.has_remaining() {
        return Err(err("empty input"));
    }
    let magic = buf.get_u8();
    if magic != MAGIC {
        return Err(err(format!("bad magic byte {magic:#x}")));
    }
    let val = decode_one(&mut buf)?;
    if buf.has_remaining() {
        return Err(err(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(val)
}

fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(err("truncated varint"));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(err("varint overflow"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn get_len(buf: &mut Bytes) -> Result<usize, CodecError> {
    let n = get_varint(buf)? as usize;
    if n > buf.remaining() {
        return Err(err(format!(
            "declared length {n} exceeds remaining {} bytes",
            buf.remaining()
        )));
    }
    Ok(n)
}

fn get_str(buf: &mut Bytes) -> Result<String, CodecError> {
    let n = get_len(buf)?;
    let raw = buf.copy_to_bytes(n);
    String::from_utf8(raw.to_vec()).map_err(|_| err("invalid utf-8 in string"))
}

fn decode_one(buf: &mut Bytes) -> Result<CVal, CodecError> {
    if !buf.has_remaining() {
        return Err(err("truncated value"));
    }
    match buf.get_u8() {
        0x00 => Ok(CVal::Unit),
        0x01 => {
            if !buf.has_remaining() {
                return Err(err("truncated bool"));
            }
            match buf.get_u8() {
                0 => Ok(CVal::Bool(false)),
                1 => Ok(CVal::Bool(true)),
                other => Err(err(format!("bad bool byte {other}"))),
            }
        }
        0x02 => Ok(CVal::I64(unzigzag(get_varint(buf)?))),
        0x08 => {
            if buf.remaining() < 8 {
                return Err(err("truncated i64"));
            }
            let raw = buf.copy_to_bytes(8);
            Ok(CVal::I64(i64::from_le_bytes(
                raw.as_ref().try_into().expect("8 bytes"),
            )))
        }
        0x03 => {
            if buf.remaining() < 8 {
                return Err(err("truncated f64"));
            }
            Ok(CVal::F64(buf.get_f64_le()))
        }
        0x04 => Ok(CVal::Str(get_str(buf)?)),
        0x05 => {
            let n = get_len(buf)?;
            // Shared slice of the decode buffer — no copy per leaf.
            Ok(CVal::Bytes(buf.copy_to_bytes(n)))
        }
        0x06 => {
            let n = get_varint(buf)? as usize;
            // Each element takes at least one byte.
            if n > buf.remaining() {
                return Err(err("list count exceeds remaining bytes"));
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_one(buf)?);
            }
            Ok(CVal::List(items))
        }
        0x07 => {
            let n = get_varint(buf)? as usize;
            if n > buf.remaining() {
                return Err(err("map count exceeds remaining bytes"));
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let k = get_str(buf)?;
                let v = decode_one(buf)?;
                pairs.push((k, v));
            }
            Ok(CVal::Map(pairs))
        }
        tag => Err(err(format!("unknown tag {tag:#x}"))),
    }
}

/// Maximum buffers an [`EncodePool`] retains; beyond this, returned buffers
/// are dropped (their allocations freed) instead of pooled.
const POOL_CAP: usize = 8;

/// A pool of reusable encode buffers.
///
/// The background materializer owns one pool shared by its workers: each
/// checkpoint encode borrows a buffer, serializes into it with
/// [`encode_into`], and returns it — so steady-state encoding allocates
/// nothing, regardless of checkpoint count.
#[derive(Default)]
pub struct EncodePool {
    bufs: Mutex<Vec<BytesMut>>,
}

impl EncodePool {
    /// An empty pool.
    pub fn new() -> Self {
        EncodePool::default()
    }

    /// Borrows a buffer for the duration of `f`, returning it to the pool
    /// afterwards (cleared, allocation kept).
    pub fn with_buffer<R>(&self, f: impl FnOnce(&mut BytesMut) -> R) -> R {
        let mut buf = self.bufs.lock().pop().unwrap_or_default();
        let out = f(&mut buf);
        buf.clear();
        let mut bufs = self.bufs.lock();
        if bufs.len() < POOL_CAP {
            bufs.push(buf);
        }
        out
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.bufs.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: CVal) {
        let bytes = encode(&v);
        let back = decode(&bytes).expect("decode");
        assert_eq!(v, back);
    }

    #[test]
    fn i64_encoding_is_length_stable() {
        // The delta-chain prerequisite: drifting integers (RNG states,
        // step counters) must not change the encoded length and shift
        // every later byte of the snapshot.
        let lens: Vec<usize> = [0i64, 1, -1, 127, 128, 1 << 20, i64::MAX, i64::MIN]
            .into_iter()
            .map(|v| encode(&CVal::I64(v)).len())
            .collect();
        assert!(
            lens.windows(2).all(|w| w[0] == w[1]),
            "i64 lengths vary: {lens:?}"
        );
    }

    #[test]
    fn legacy_varint_i64_streams_still_decode() {
        // Streams written before the fixed-width encoder (tag 0x02,
        // zigzag varint) must read back unchanged.
        for v in [0i64, 1, -1, 63, -64, 300, -300, i64::MAX, i64::MIN] {
            let mut legacy = vec![MAGIC, 0x02];
            let mut z = zigzag(v);
            loop {
                let byte = (z & 0x7f) as u8;
                z >>= 7;
                if z == 0 {
                    legacy.push(byte);
                    break;
                }
                legacy.push(byte | 0x80);
            }
            assert_eq!(decode(&legacy).unwrap(), CVal::I64(v), "value {v}");
        }
    }

    #[test]
    fn roundtrip_scalars() {
        roundtrip(CVal::Unit);
        roundtrip(CVal::Bool(true));
        roundtrip(CVal::Bool(false));
        roundtrip(CVal::I64(0));
        roundtrip(CVal::I64(-1));
        roundtrip(CVal::I64(i64::MAX));
        roundtrip(CVal::I64(i64::MIN));
        roundtrip(CVal::F64(3.25));
        roundtrip(CVal::F64(f64::NEG_INFINITY));
        roundtrip(CVal::Str("héllo\nworld".into()));
        roundtrip(CVal::Str(String::new()));
    }

    #[test]
    fn roundtrip_containers() {
        roundtrip(CVal::bytes(vec![0, 1, 2, 255]));
        roundtrip(CVal::List(vec![
            CVal::I64(1),
            CVal::Str("a".into()),
            CVal::Unit,
        ]));
        roundtrip(CVal::map(vec![
            ("weights", CVal::bytes(vec![1; 100])),
            ("step", CVal::I64(42)),
            ("nested", CVal::List(vec![CVal::Bool(false)])),
        ]));
    }

    #[test]
    fn nan_roundtrips_as_nan() {
        let bytes = encode(&CVal::F64(f64::NAN));
        match decode(&bytes).unwrap() {
            CVal::F64(x) => assert!(x.is_nan()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn map_order_is_preserved() {
        let v = CVal::map(vec![("z", CVal::I64(1)), ("a", CVal::I64(2))]);
        match decode(&encode(&v)).unwrap() {
            CVal::Map(pairs) => {
                assert_eq!(pairs[0].0, "z");
                assert_eq!(pairs[1].0, "a");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = CVal::map(vec![("a", CVal::List(vec![CVal::F64(1.5); 10]))]);
        assert_eq!(encode(&v), encode(&v));
    }

    #[test]
    fn truncation_always_detected() {
        let v = CVal::map(vec![
            ("k1", CVal::bytes(vec![7; 64])),
            ("k2", CVal::List(vec![CVal::I64(-5), CVal::Str("x".into())])),
        ]);
        let bytes = encode(&v);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = encode(&CVal::I64(7));
        bytes.push(0x00);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = encode(&CVal::I64(7));
        bytes[0] = 0x00;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_detected() {
        let bytes = vec![MAGIC, 0x42];
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn hostile_length_rejected_without_allocation() {
        // Claim a 2^60-byte string in a tiny buffer.
        let mut bytes = vec![MAGIC, 0x04];
        // varint for a huge number
        bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f]);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn get_on_map() {
        let v = CVal::map(vec![("a", CVal::I64(1))]);
        assert_eq!(v.get("a"), Some(&CVal::I64(1)));
        assert_eq!(v.get("b"), None);
        assert_eq!(CVal::Unit.get("a"), None);
    }

    #[test]
    fn approx_bytes_tracks_payload() {
        let small = CVal::I64(1);
        let big = CVal::bytes(vec![0; 10_000]);
        assert!(big.approx_bytes() > small.approx_bytes() * 100);
    }

    // ---- zero-copy / lazy / pooled paths ----------------------------------

    struct CountingSource {
        payload: Vec<u8>,
        writes: std::sync::atomic::AtomicU64,
    }

    impl ByteSource for CountingSource {
        fn len(&self) -> usize {
            self.payload.len()
        }
        fn write_to(&self, buf: &mut BytesMut) {
            self.writes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            buf.put_slice(&self.payload);
        }
    }

    #[test]
    fn lazy_encodes_identically_to_eager() {
        let payload: Vec<u8> = (0..777u32).map(|i| (i % 251) as u8).collect();
        let eager = CVal::map(vec![
            ("w", CVal::bytes(payload.clone())),
            ("step", CVal::I64(3)),
        ]);
        let lazy = CVal::map(vec![
            (
                "w",
                CVal::lazy(CountingSource {
                    payload,
                    writes: Default::default(),
                }),
            ),
            ("step", CVal::I64(3)),
        ]);
        assert_eq!(encode(&eager), encode(&lazy));
        assert_eq!(eager, lazy, "content equality crosses eager/lazy variants");
        // Decoding a lazy-encoded stream yields eager leaves.
        let back = decode(&encode(&lazy)).unwrap();
        assert!(matches!(back.get("w"), Some(CVal::Bytes(_))));
    }

    #[test]
    fn lazy_source_is_not_invoked_until_encode() {
        let src = std::sync::Arc::new(CountingSource {
            payload: vec![1, 2, 3],
            writes: Default::default(),
        });
        struct Shared(std::sync::Arc<CountingSource>);
        impl ByteSource for Shared {
            fn len(&self) -> usize {
                self.0.len()
            }
            fn write_to(&self, buf: &mut BytesMut) {
                self.0.write_to(buf)
            }
        }
        let v = CVal::List(vec![CVal::lazy(Shared(src.clone())); 4]);
        assert_eq!(src.writes.load(std::sync::atomic::Ordering::Relaxed), 0);
        let _ = v.approx_bytes(); // size estimation must not materialize
        assert_eq!(src.writes.load(std::sync::atomic::Ordering::Relaxed), 0);
        let _ = encode(&v);
        assert_eq!(src.writes.load(std::sync::atomic::Ordering::Relaxed), 4);
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_buffer() {
        let v = CVal::map(vec![
            ("a", CVal::bytes(vec![9; 4096])),
            ("b", CVal::Str("x".into())),
        ]);
        let fresh = encode(&v);
        let mut buf = BytesMut::new();
        encode_into(&v, &mut buf);
        assert_eq!(buf.as_ref(), fresh.as_slice());
        let cap = buf.capacity();
        // Re-encoding into the same buffer reuses its allocation.
        encode_into(&v, &mut buf);
        assert_eq!(buf.as_ref(), fresh.as_slice());
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn pool_recycles_buffers() {
        let pool = EncodePool::new();
        let v = CVal::bytes(vec![5; 1024]);
        pool.with_buffer(|buf| {
            encode_into(&v, buf);
            assert_eq!(buf.as_ref(), encode(&v).as_slice());
        });
        assert_eq!(pool.idle(), 1);
        let mut caps = Vec::new();
        pool.with_buffer(|buf| {
            caps.push(buf.capacity());
            encode_into(&v, buf);
        });
        assert!(caps[0] >= 1024, "pooled buffer kept its allocation");
    }

    #[test]
    fn decoded_bytes_share_one_backing() {
        // Decoding many leaves must not copy each: slices share the input.
        let v = CVal::List((0..8).map(|i| CVal::bytes(vec![i as u8; 64])).collect());
        let bytes = encode(&v);
        let back = decode(&bytes).unwrap();
        if let CVal::List(items) = back {
            for (i, item) in items.iter().enumerate() {
                assert_eq!(item.as_bytes().unwrap(), vec![i as u8; 64]);
            }
        } else {
            panic!("expected list");
        }
    }
}
