//! LZ77-style compression — the gzip stand-in for checkpoint spooling.
//!
//! "The checkpoints materialized by Flor record were compressed by a
//! background process, before being spooled to an S3 bucket" (paper §6.2,
//! Table 4). Checkpoint payloads are dominated by f32 tensors with long
//! zero runs (fresh gradients, momentum buffers, padding), which LZ back
//! references capture well.
//!
//! Token format (shared by every compressor here): `magic(2) |
//! original_len varint | token*` where each token is a flag byte
//! introducing 8 items; flag bit 0 = literal byte, 1 = match
//! `(offset: u16 LE, len: u8)` with `len` biased by the minimum match
//! length (4).
//!
//! Two encoders emit that format:
//!
//! - [`compress`] — the production encoder: a **hash-chain match finder**
//!   (per 4-byte-prefix chains walked newest-first, bounded by
//!   [`MAX_CHAIN`]) that finds the longest match among recent candidates
//!   instead of only the single most recent one.
//! - [`compress_reference`] — the original single-entry-table matcher,
//!   kept bit-for-bit as the *pre-PR baseline*: `bench_compress_json`
//!   measures the production pipeline against it, and the differential
//!   tests use it as an oracle (both encoders' output must decompress to
//!   identical bytes through the one shared [`decompress`]).
//!
//! Large payloads additionally go through the **chunked frame**
//! ([`compress_chunked`]): the input is split into fixed-size chunks, each
//! compressed as an *independent* token stream (its own magic + length),
//! so chunks compress — and decompress — in parallel across a bounded
//! thread fan-out. [`compress_auto`] picks the chunked frame for inputs
//! past [`CHUNK_PARALLEL_MIN`]; [`decompress_any`] dispatches on the frame
//! magic, so callers never care which encoder produced the bytes.

const MAGIC: [u8; 2] = [0xF1, 0x02];
/// Chunked-frame magic ([`compress_chunked`]).
const CHUNK_MAGIC: [u8; 2] = [0xF1, 0x03];
const WINDOW: usize = 1 << 16; // u16 offsets
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 254;
const HASH_BITS: u32 = 15;
/// Hash-chain candidates examined per position (newest first) at the
/// default effort level. Bounds the worst case on degenerate inputs
/// (e.g. all-identical bytes hash every position into one chain, and f32
/// slabs put every exponent byte in a tiny alphabet — long chains of
/// colliding-but-useless candidates).
pub const MAX_CHAIN: usize = 16;
/// A match at least this long ends the chain walk at the default effort
/// level ("good enough" — the marginal gain of a longer candidate almost
/// never pays for the walk).
const GOOD_MATCH: usize = 64;
/// Cheapest effort level: shallow chain walks, eager early-exit.
pub const MIN_EFFORT: u8 = 1;
/// Default effort level — the pre-knob encoder behavior, bit-for-bit.
pub const DEFAULT_EFFORT: u8 = 2;
/// Most thorough effort level: deep chain walks, reluctant early-exit.
pub const MAX_EFFORT: u8 = 3;

/// Match-finder parameters `(max_chain, good_match)` for an effort level.
/// Level [`DEFAULT_EFFORT`] is exactly the historical constants; level 1
/// quarters the chain walk for ε-pressured recorders, level 3 spends 4×
/// the walk for sweep re-records with headroom.
pub(crate) fn effort_params(effort: u8) -> (usize, usize) {
    match effort.clamp(MIN_EFFORT, MAX_EFFORT) {
        1 => (MAX_CHAIN / 4, GOOD_MATCH / 2),
        2 => (MAX_CHAIN, GOOD_MATCH),
        _ => (MAX_CHAIN * 4, GOOD_MATCH * 2),
    }
}
/// After this many consecutive matchless positions the encoder starts
/// stepping over input (LZ4-style acceleration): incompressible regions
/// cost a bounded number of searches instead of one per byte.
const SKIP_TRIGGER: usize = 64;
/// Acceleration step cap, so a late compressible region is missed by at
/// most this many bytes.
const MAX_SKIP_STEP: usize = 32;
/// Uncompressed bytes per chunk of a chunked frame.
pub const CHUNK_BYTES: usize = 256 * 1024;
/// [`compress_auto`] switches to the parallel chunked frame at this size.
pub const CHUNK_PARALLEL_MIN: usize = 1024 * 1024;
/// `u32` position sentinel for the hash-chain tables.
const NO_POS: u32 = u32::MAX;

/// Decompression failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compress error: {}", self.message)
    }
}

impl std::error::Error for CompressError {}

fn err(m: impl Into<String>) -> CompressError {
    CompressError { message: m.into() }
}

fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, CompressError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos).ok_or_else(|| err("truncated varint"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(err("varint overflow"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Token-stream writer shared by both encoders: accumulates the 8-item
/// flag groups of the shared output format.
struct TokenWriter {
    out: Vec<u8>,
    flag_pos: usize,
    flag_bits: u8,
    flag_count: u8,
}

impl TokenWriter {
    fn new(capacity: usize) -> TokenWriter {
        let mut out = Vec::with_capacity(capacity);
        out.extend_from_slice(&MAGIC);
        TokenWriter {
            out,
            flag_pos: 0,
            flag_bits: 0,
            flag_count: 0,
        }
    }

    fn start_tokens(&mut self) {
        self.flag_pos = self.out.len();
        self.out.push(0);
    }

    fn push_item(&mut self, is_match: bool, payload: &[u8]) {
        if self.flag_count == 8 {
            self.out[self.flag_pos] = self.flag_bits;
            self.flag_pos = self.out.len();
            self.out.push(0);
            self.flag_bits = 0;
            self.flag_count = 0;
        }
        if is_match {
            self.flag_bits |= 1 << self.flag_count;
        }
        self.flag_count += 1;
        self.out.extend_from_slice(payload);
    }

    fn push_match(&mut self, offset: usize, len: usize) {
        // offset stored as u16; distance WINDOW encodes as 0.
        let off16 = if offset == WINDOW {
            0u16
        } else {
            offset as u16
        };
        let payload = [
            off16.to_le_bytes()[0],
            off16.to_le_bytes()[1],
            (len - MIN_MATCH) as u8,
        ];
        self.push_item(true, &payload);
    }

    fn finish(mut self) -> Vec<u8> {
        self.out[self.flag_pos] = self.flag_bits;
        self.out
    }
}

/// Compresses a byte slice with the hash-chain match finder at
/// [`DEFAULT_EFFORT`].
pub fn compress(input: &[u8]) -> Vec<u8> {
    compress_with_effort(input, DEFAULT_EFFORT)
}

/// Compresses with an explicit effort level (see [`effort_params`]):
/// higher effort walks longer candidate chains and insists on longer
/// matches before cutting the walk short — more CPU, smaller output.
pub fn compress_with_effort(input: &[u8], effort: u8) -> Vec<u8> {
    let (max_chain, good_match) = effort_params(effort);
    let mut w = TokenWriter::new(input.len() / 2 + 16);
    put_varint(&mut w.out, input.len() as u64);
    w.start_tokens();

    // head[h] = most recent position whose 4-byte prefix hashes to h;
    // prev[pos % WINDOW] = the next-older position in that chain. The ring
    // holds exactly one window of history, so chain walks terminate on
    // either a distance check or a staleness (non-decreasing) check.
    let mut head = vec![NO_POS; 1 << HASH_BITS];
    let mut prev = vec![NO_POS; WINDOW];
    let mask = WINDOW - 1;
    let mut i = 0usize;
    let mut miss_streak = 0usize;

    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_pos = 0usize;
        if i + MIN_MATCH <= input.len() {
            let max_len = (input.len() - i).min(MAX_MATCH);
            let h = hash4(&input[i..]);
            let mut cand = head[h];
            let mut walked = 0usize;
            while cand != NO_POS && walked < max_chain {
                let c = cand as usize;
                // Staleness guards: ring entries older than one window (or
                // overwritten by a newer position of the same residue) show
                // up as out-of-window or non-decreasing positions.
                if c >= i || i - c > WINDOW {
                    break;
                }
                // Cheap reject: a longer match must at least extend past the
                // current best (best_len < max_len is an invariant: the walk
                // breaks as soon as a max-length match is found).
                if best_len == 0 || input[c + best_len] == input[i + best_len] {
                    let mut len = 0usize;
                    while len < max_len && input[c + len] == input[i + len] {
                        len += 1;
                    }
                    if len > best_len {
                        best_len = len;
                        best_pos = c;
                        if len >= max_len || len >= good_match {
                            break;
                        }
                    }
                }
                let next = prev[c & mask];
                if next != NO_POS && next as usize >= c {
                    break;
                }
                cand = next;
                walked += 1;
            }
            // Index this position regardless of the match outcome.
            prev[i & mask] = head[h];
            head[h] = i as u32;
        }
        if best_len >= MIN_MATCH {
            miss_streak = 0;
            w.push_match(i - best_pos, best_len);
            // Index the positions inside the match so later matches can
            // reference them.
            let end = (i + best_len).min(input.len().saturating_sub(MIN_MATCH));
            let mut j = i + 1;
            while j < end {
                let h = hash4(&input[j..]);
                prev[j & mask] = head[h];
                head[h] = j as u32;
                j += 1;
            }
            i += best_len;
        } else {
            // Incompressible stretch: after SKIP_TRIGGER consecutive
            // misses, emit several literals per search (bounded step) so
            // random data costs O(n / step) searches, not O(n).
            let step = (1 + miss_streak / SKIP_TRIGGER).min(MAX_SKIP_STEP);
            miss_streak += 1;
            let end = (i + step).min(input.len());
            while i < end {
                w.push_item(false, &input[i..i + 1]);
                i += 1;
            }
        }
    }
    w.finish()
}

/// The original single-entry-hash-table encoder, kept as the pre-PR
/// baseline for `bench_compress_json` and as a differential-test oracle.
/// Emits the same token format as [`compress`] (one shared
/// [`decompress`] reads both).
pub fn compress_reference(input: &[u8]) -> Vec<u8> {
    let mut w = TokenWriter::new(input.len() / 2 + 16);
    put_varint(&mut w.out, input.len() as u64);
    w.start_tokens();

    // Single-entry hash table of most recent position per 4-byte prefix.
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;

    while i < input.len() {
        let mut matched = false;
        if i + MIN_MATCH <= input.len() {
            let h = hash4(&input[i..]);
            let cand = table[h];
            table[h] = i;
            if cand != usize::MAX && i - cand <= WINDOW && cand < i {
                let max_len = (input.len() - i).min(MAX_MATCH);
                let mut len = 0usize;
                while len < max_len && input[cand + len] == input[i + len] {
                    len += 1;
                }
                if len >= MIN_MATCH {
                    w.push_match(i - cand, len);
                    let end = (i + len).min(input.len().saturating_sub(MIN_MATCH));
                    let mut j = i + 1;
                    while j < end {
                        table[hash4(&input[j..])] = j;
                        j += 1;
                    }
                    i += len;
                    matched = true;
                }
            }
        }
        if !matched {
            w.push_item(false, &input[i..i + 1]);
            i += 1;
        }
    }
    w.finish()
}

/// Decompresses bytes produced by [`compress`] or [`compress_reference`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    if data.len() < 3 || data[0..2] != MAGIC {
        return Err(err("bad magic"));
    }
    let mut pos = 2usize;
    let original_len = get_varint(data, &mut pos)? as usize;
    // Sanity bound: the declared length can't exceed the maximum expansion
    // of the remaining payload (8 items of up to MAX_MATCH bytes per 25-byte
    // group, i.e. far less than 512x).
    if original_len > data.len().saturating_mul(512).max(1024) {
        return Err(err("implausible declared length"));
    }
    let mut out = Vec::with_capacity(original_len);

    while out.len() < original_len {
        let flags = *data.get(pos).ok_or_else(|| err("truncated flag byte"))?;
        pos += 1;
        for bit in 0..8 {
            if out.len() >= original_len {
                break;
            }
            if flags & (1 << bit) != 0 {
                let b0 = *data.get(pos).ok_or_else(|| err("truncated match"))?;
                let b1 = *data.get(pos + 1).ok_or_else(|| err("truncated match"))?;
                let lb = *data.get(pos + 2).ok_or_else(|| err("truncated match"))?;
                pos += 3;
                let off16 = u16::from_le_bytes([b0, b1]);
                let offset = if off16 == 0 { WINDOW } else { off16 as usize };
                let len = lb as usize + MIN_MATCH;
                if offset > out.len() {
                    return Err(err("match offset before start of output"));
                }
                let start = out.len() - offset;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            } else {
                let b = *data.get(pos).ok_or_else(|| err("truncated literal"))?;
                pos += 1;
                out.push(b);
            }
        }
    }
    if out.len() != original_len {
        return Err(err(format!(
            "decompressed {} bytes, expected {original_len}",
            out.len()
        )));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Chunked parallel frames
// ---------------------------------------------------------------------------

// Chunk fan-out runs on the store-wide persistent executor
// ([`crate::exec`]) instead of a per-call `thread::scope`: parallel
// compression no longer pays a thread spawn + join barrier per submit.
use crate::exec::parallel_map;

/// Compresses `input` as a chunked frame: fixed-size chunks, each an
/// independent [`compress`] token stream (chunks that do not shrink are
/// stored raw), compressed in parallel. The frame layout is
/// `magic(2) | raw_len | chunk_size | n_chunks | n × ((stored_len << 1) |
/// raw_flag) | bodies…` (all varints), so a reader can locate — and
/// decompress — any chunk independently of the others.
pub fn compress_chunked(input: &[u8], chunk_size: usize) -> Vec<u8> {
    compress_chunked_effort(input, chunk_size, DEFAULT_EFFORT)
}

/// [`compress_chunked`] with an explicit per-chunk effort level.
pub fn compress_chunked_effort(input: &[u8], chunk_size: usize, effort: u8) -> Vec<u8> {
    let chunk_size = chunk_size.max(1);
    let chunks: Vec<&[u8]> = input.chunks(chunk_size).collect();
    let n = chunks.len();
    let bodies: Vec<(Vec<u8>, bool)> = parallel_map(n, |i| {
        let c = compress_with_effort(chunks[i], effort);
        if c.len() >= chunks[i].len() {
            (chunks[i].to_vec(), true)
        } else {
            (c, false)
        }
    });
    let mut out = Vec::with_capacity(input.len() / 2 + 32);
    out.extend_from_slice(&CHUNK_MAGIC);
    put_varint(&mut out, input.len() as u64);
    put_varint(&mut out, chunk_size as u64);
    put_varint(&mut out, n as u64);
    for (body, raw) in &bodies {
        put_varint(&mut out, ((body.len() as u64) << 1) | u64::from(*raw));
    }
    for (body, _) in &bodies {
        out.extend_from_slice(body);
    }
    out
}

/// True when `data` starts with the chunked-frame magic.
pub fn is_chunked(data: &[u8]) -> bool {
    data.len() >= 2 && data[0..2] == CHUNK_MAGIC
}

/// Decompresses a chunked frame, fanning chunk decompression out in
/// parallel (each chunk is an independent stream).
pub fn decompress_chunked(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    if !is_chunked(data) {
        return Err(err("bad chunked magic"));
    }
    let mut pos = 2usize;
    let raw_len = get_varint(data, &mut pos)? as usize;
    let chunk_size = get_varint(data, &mut pos)? as usize;
    let n = get_varint(data, &mut pos)? as usize;
    if chunk_size == 0 {
        return Err(err("zero chunk size"));
    }
    if n != raw_len.div_ceil(chunk_size) {
        return Err(err("chunk count inconsistent with declared length"));
    }
    if raw_len > data.len().saturating_mul(512).max(1024) {
        return Err(err("implausible declared length"));
    }
    let mut slices: Vec<(&[u8], bool)> = Vec::with_capacity(n);
    let mut lens: Vec<(usize, bool)> = Vec::with_capacity(n);
    for _ in 0..n {
        let v = get_varint(data, &mut pos)?;
        lens.push(((v >> 1) as usize, v & 1 == 1));
    }
    for (len, raw) in lens {
        let body = data
            .get(pos..pos + len)
            .ok_or_else(|| err("truncated chunk body"))?;
        pos += len;
        slices.push((body, raw));
    }
    let expect = |i: usize| -> usize {
        if i + 1 == n {
            raw_len - (n - 1) * chunk_size
        } else {
            chunk_size
        }
    };
    let parts: Vec<Result<Vec<u8>, CompressError>> = parallel_map(n, |i| {
        let (body, raw) = slices[i];
        let bytes = if raw {
            body.to_vec()
        } else {
            decompress(body)?
        };
        if bytes.len() != expect(i) {
            return Err(err(format!(
                "chunk {i}: got {} bytes, expected {}",
                bytes.len(),
                expect(i)
            )));
        }
        Ok(bytes)
    });
    let mut out = Vec::with_capacity(raw_len);
    for part in parts {
        out.extend_from_slice(&part?);
    }
    Ok(out)
}

/// Compresses with the frame best suited to the input size: the parallel
/// chunked frame past [`CHUNK_PARALLEL_MIN`], a single [`compress`] stream
/// otherwise.
pub fn compress_auto(input: &[u8]) -> Vec<u8> {
    compress_auto_effort(input, DEFAULT_EFFORT)
}

/// [`compress_auto`] with an explicit effort level.
pub fn compress_auto_effort(input: &[u8], effort: u8) -> Vec<u8> {
    if input.len() >= CHUNK_PARALLEL_MIN {
        compress_chunked_effort(input, CHUNK_BYTES, effort)
    } else {
        compress_with_effort(input, effort)
    }
}

/// Decompresses either frame kind, dispatching on the magic.
pub fn decompress_any(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    if is_chunked(data) {
        decompress_chunked(data)
    } else {
        decompress(data)
    }
}

/// Compression ratio achieved on `input` (original / compressed; > 1 means
/// the data shrank).
pub fn ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    input.len() as f64 / compress(input).len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data, "roundtrip failed for {} bytes", data.len());
        // The reference encoder's output reads back through the same
        // decompressor (shared format).
        let r = compress_reference(data);
        assert_eq!(decompress(&r).expect("reference decompress"), data);
        // And decompress_any handles both plain and chunked frames.
        assert_eq!(decompress_any(&c).expect("any"), data);
        let ck = compress_chunked(data, 1024);
        assert_eq!(decompress_any(&ck).expect("chunked"), data);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
    }

    #[test]
    fn roundtrip_repetitive() {
        roundtrip(&vec![0u8; 100_000]);
        roundtrip(&b"abcabcabcabcabcabc".repeat(100));
    }

    #[test]
    fn roundtrip_binary_tensorish() {
        // f32 bytes with zero runs, like a momentum buffer.
        let mut data = Vec::new();
        for i in 0..10_000u32 {
            if i % 7 == 0 {
                data.extend_from_slice(&(i as f32).to_le_bytes());
            } else {
                data.extend_from_slice(&0f32.to_le_bytes());
            }
        }
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_incompressible() {
        // Pseudo-random bytes (xorshift) — worst case, must still roundtrip.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        roundtrip(&data);
        // Overhead on incompressible data stays modest (< 15%).
        assert!(compress(&data).len() < data.len() + data.len() / 7 + 32);
    }

    #[test]
    fn zeros_compress_well() {
        let data = vec![0u8; 1 << 20];
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 50,
            "1MiB of zeros compressed to {} bytes",
            c.len()
        );
    }

    #[test]
    fn hash_chains_beat_the_single_entry_table() {
        // Interleaved repeating structures: the single-entry table keeps
        // evicting the useful candidate, the chain walk finds it.
        let a = b"the quick brown fox jumps over the lazy dog ";
        let b = b"pack my box with five dozen liquor jugs!! ";
        let mut data = Vec::new();
        for i in 0..400 {
            data.extend_from_slice(if i % 2 == 0 { &a[..] } else { &b[..] });
            data.push((i % 251) as u8); // desynchronize the phases
        }
        let chained = compress(&data).len();
        let single = compress_reference(&data).len();
        assert!(
            chained <= single,
            "hash chains must not lose to the single-entry table: {chained} vs {single}"
        );
        roundtrip(&data);
    }

    #[test]
    fn long_range_matches_within_window() {
        let mut data = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        data.extend(vec![9u8; 30_000]);
        data.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        roundtrip(&data);
    }

    #[test]
    fn corruption_detected_or_roundtrip_fails_loudly() {
        let data = b"hello world hello world hello world".repeat(10);
        let mut c = compress(&data);
        // Truncations must error, never panic.
        for cut in 0..c.len().min(64) {
            let _ = decompress(&c[..cut]);
        }
        // Bad magic errors.
        c[0] = 0;
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn implausible_length_rejected() {
        let mut data = MAGIC.to_vec();
        // Declared length ~ 2^60 with no payload.
        data.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f]);
        assert!(decompress(&data).is_err());
    }

    #[test]
    fn ratio_reports_sensibly() {
        assert!(ratio(&vec![0u8; 10_000]) > 10.0);
        assert!((ratio(b"") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_match_copies_correctly() {
        // "aaaa..." forces matches whose source overlaps the destination.
        let data = vec![b'a'; 1000];
        roundtrip(&data);
    }

    #[test]
    fn chunked_roundtrips_across_sizes_and_boundaries() {
        for n in [
            0usize,
            1,
            1023,
            1024,
            1025,
            3 * 1024,
            3 * 1024 + 17,
            64 * 1024 + 5,
        ] {
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            let c = compress_chunked(&data, 1024);
            assert!(is_chunked(&c));
            assert_eq!(decompress_chunked(&c).expect("chunked roundtrip"), data);
        }
    }

    #[test]
    fn effort_levels_roundtrip_and_default_matches_legacy() {
        // Tensor-ish payload with structure at several scales.
        let mut data = Vec::new();
        for i in 0..20_000u32 {
            let v = if i % 7 == 0 { 0.0f32 } else { (i % 97) as f32 };
            data.extend_from_slice(&v.to_le_bytes());
        }
        for effort in [MIN_EFFORT, DEFAULT_EFFORT, MAX_EFFORT] {
            let c = compress_with_effort(&data, effort);
            assert_eq!(decompress(&c).unwrap(), data, "effort {effort}");
            let ck = compress_chunked_effort(&data, 4096, effort);
            assert_eq!(
                decompress_any(&ck).unwrap(),
                data,
                "chunked effort {effort}"
            );
        }
        // Level 2 is bit-for-bit the pre-knob encoder.
        assert_eq!(compress_with_effort(&data, DEFAULT_EFFORT), compress(&data));
        // Max effort never loses to min effort on structured data.
        assert!(
            compress_with_effort(&data, MAX_EFFORT).len()
                <= compress_with_effort(&data, MIN_EFFORT).len()
        );
        // Out-of-range levels clamp instead of panicking.
        assert_eq!(
            compress_with_effort(&data, 0),
            compress_with_effort(&data, MIN_EFFORT)
        );
        assert_eq!(
            compress_with_effort(&data, 200),
            compress_with_effort(&data, MAX_EFFORT)
        );
    }

    #[test]
    fn chunked_stores_incompressible_chunks_raw() {
        let mut x = 0xC0FFEEu32;
        let data: Vec<u8> = (0..8 * 1024)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        let c = compress_chunked(&data, 1024);
        // Raw chunks + framing: bounded overhead, never the LZ worst case.
        assert!(c.len() < data.len() + 64, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress_chunked(&c).unwrap(), data);
    }

    #[test]
    fn auto_picks_chunked_for_large_inputs() {
        let big = vec![7u8; CHUNK_PARALLEL_MIN + 1];
        assert!(is_chunked(&compress_auto(&big)));
        let small = vec![7u8; 1024];
        assert!(!is_chunked(&compress_auto(&small)));
        assert_eq!(decompress_any(&compress_auto(&big)).unwrap(), big);
    }

    #[test]
    fn chunked_truncation_and_corruption_fail_loudly() {
        let data: Vec<u8> = (0..10_000).map(|i| (i % 7) as u8).collect();
        let c = compress_chunked(&data, 1024);
        for cut in 0..c.len() {
            if let Ok(d) = decompress_chunked(&c[..cut]) {
                assert_eq!(d, data, "cut {cut} must not silently alter data");
            }
        }
        // Flip every byte one at a time: never a panic. (A flip inside a
        // raw-stored chunk body can decode "successfully" to altered bytes
        // — frames carry no checksum of their own; end-to-end corruption
        // detection is the store's payload CRC, tested at that layer.)
        let mut flipped = c.clone();
        for i in 0..flipped.len() {
            flipped[i] ^= 0xFF;
            let _ = decompress_chunked(&flipped);
            flipped[i] ^= 0xFF;
        }
    }

    #[test]
    fn differential_encoders_agree_on_random_structured_data() {
        // Mixed structure: zero runs, drifting floats, repeated phrases.
        let mut x = 1u32;
        let mut data = Vec::new();
        for i in 0..5_000u32 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            match x % 4 {
                0 => data.extend_from_slice(&[0u8; 16]),
                1 => data.extend_from_slice(&(i as f32 * 0.1).to_le_bytes()),
                2 => data.extend_from_slice(b"repeated phrase "),
                _ => data.push(x as u8),
            }
        }
        let via_chain = decompress(&compress(&data)).unwrap();
        let via_ref = decompress(&compress_reference(&data)).unwrap();
        assert_eq!(via_chain, via_ref);
        assert_eq!(via_chain, data);
    }
}
