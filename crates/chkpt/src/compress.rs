//! LZ77-style compression — the gzip stand-in for checkpoint spooling.
//!
//! "The checkpoints materialized by Flor record were compressed by a
//! background process, before being spooled to an S3 bucket" (paper §6.2,
//! Table 4). Checkpoint payloads are dominated by f32 tensors with long
//! zero runs (fresh gradients, momentum buffers, padding), which LZ back
//! references capture well.
//!
//! Format: `magic(2) | original_len varint | token*` where each token is a
//! flag byte introducing 8 items; flag bit 0 = literal byte, 1 = match
//! `(offset: u16 LE, len: u8)` with `len` biased by the minimum match length (4).

const MAGIC: [u8; 2] = [0xF1, 0x02];
const WINDOW: usize = 1 << 16; // u16 offsets
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 254;
const HASH_BITS: u32 = 15;

/// Decompression failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compress error: {}", self.message)
    }
}

impl std::error::Error for CompressError {}

fn err(m: impl Into<String>) -> CompressError {
    CompressError { message: m.into() }
}

fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, CompressError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos).ok_or_else(|| err("truncated varint"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(err("varint overflow"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Compresses a byte slice.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&MAGIC);
    put_varint(&mut out, input.len() as u64);

    // Single-entry hash table of most recent position per 4-byte prefix.
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;

    // Token accumulation: flag byte position + item count.
    let mut flag_pos = out.len();
    out.push(0);
    let mut flag_bits = 0u8;
    let mut flag_count = 0u8;

    let push_item = |out: &mut Vec<u8>,
                     is_match: bool,
                     payload: &[u8],
                     flag_pos: &mut usize,
                     flag_bits: &mut u8,
                     flag_count: &mut u8| {
        if *flag_count == 8 {
            out[*flag_pos] = *flag_bits;
            *flag_pos = out.len();
            out.push(0);
            *flag_bits = 0;
            *flag_count = 0;
        }
        if is_match {
            *flag_bits |= 1 << *flag_count;
        }
        *flag_count += 1;
        out.extend_from_slice(payload);
    };

    while i < input.len() {
        let mut matched = false;
        if i + MIN_MATCH <= input.len() {
            let h = hash4(&input[i..]);
            let cand = table[h];
            table[h] = i;
            if cand != usize::MAX && i - cand <= WINDOW && cand < i {
                // Extend the match.
                let max_len = (input.len() - i).min(MAX_MATCH);
                let mut len = 0usize;
                while len < max_len && input[cand + len] == input[i + len] {
                    len += 1;
                }
                if len >= MIN_MATCH {
                    let offset = (i - cand) as u32;
                    // offset stored as u16; distance WINDOW encodes as 0
                    let off16 = if offset == WINDOW as u32 {
                        0u16
                    } else {
                        offset as u16
                    };
                    let payload = [
                        off16.to_le_bytes()[0],
                        off16.to_le_bytes()[1],
                        (len - MIN_MATCH) as u8,
                    ];
                    push_item(
                        &mut out,
                        true,
                        &payload,
                        &mut flag_pos,
                        &mut flag_bits,
                        &mut flag_count,
                    );
                    // Index a few positions inside the match for better
                    // downstream matches.
                    let end = (i + len).min(input.len().saturating_sub(MIN_MATCH));
                    let mut j = i + 1;
                    while j < end {
                        table[hash4(&input[j..])] = j;
                        j += 1;
                    }
                    i += len;
                    matched = true;
                }
            }
        }
        if !matched {
            push_item(
                &mut out,
                false,
                &input[i..i + 1],
                &mut flag_pos,
                &mut flag_bits,
                &mut flag_count,
            );
            i += 1;
        }
    }
    out[flag_pos] = flag_bits;
    out
}

/// Decompresses bytes produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CompressError> {
    if data.len() < 3 || data[0..2] != MAGIC {
        return Err(err("bad magic"));
    }
    let mut pos = 2usize;
    let original_len = get_varint(data, &mut pos)? as usize;
    // Sanity bound: the declared length can't exceed the maximum expansion
    // of the remaining payload (8 items of up to MAX_MATCH bytes per 25-byte
    // group, i.e. far less than 512x).
    if original_len > data.len().saturating_mul(512).max(1024) {
        return Err(err("implausible declared length"));
    }
    let mut out = Vec::with_capacity(original_len);

    while out.len() < original_len {
        let flags = *data.get(pos).ok_or_else(|| err("truncated flag byte"))?;
        pos += 1;
        for bit in 0..8 {
            if out.len() >= original_len {
                break;
            }
            if flags & (1 << bit) != 0 {
                let b0 = *data.get(pos).ok_or_else(|| err("truncated match"))?;
                let b1 = *data.get(pos + 1).ok_or_else(|| err("truncated match"))?;
                let lb = *data.get(pos + 2).ok_or_else(|| err("truncated match"))?;
                pos += 3;
                let off16 = u16::from_le_bytes([b0, b1]);
                let offset = if off16 == 0 { WINDOW } else { off16 as usize };
                let len = lb as usize + MIN_MATCH;
                if offset > out.len() {
                    return Err(err("match offset before start of output"));
                }
                let start = out.len() - offset;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            } else {
                let b = *data.get(pos).ok_or_else(|| err("truncated literal"))?;
                pos += 1;
                out.push(b);
            }
        }
    }
    if out.len() != original_len {
        return Err(err(format!(
            "decompressed {} bytes, expected {original_len}",
            out.len()
        )));
    }
    Ok(out)
}

/// Compression ratio achieved on `input` (original / compressed; > 1 means
/// the data shrank).
pub fn ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    input.len() as f64 / compress(input).len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
    }

    #[test]
    fn roundtrip_repetitive() {
        roundtrip(&vec![0u8; 100_000]);
        roundtrip(&b"abcabcabcabcabcabc".repeat(100));
    }

    #[test]
    fn roundtrip_binary_tensorish() {
        // f32 bytes with zero runs, like a momentum buffer.
        let mut data = Vec::new();
        for i in 0..10_000u32 {
            if i % 7 == 0 {
                data.extend_from_slice(&(i as f32).to_le_bytes());
            } else {
                data.extend_from_slice(&0f32.to_le_bytes());
            }
        }
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_incompressible() {
        // Pseudo-random bytes (xorshift) — worst case, must still roundtrip.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        roundtrip(&data);
        // Overhead on incompressible data stays modest (< 15%).
        assert!(compress(&data).len() < data.len() + data.len() / 7 + 32);
    }

    #[test]
    fn zeros_compress_well() {
        let data = vec![0u8; 1 << 20];
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 50,
            "1MiB of zeros compressed to {} bytes",
            c.len()
        );
    }

    #[test]
    fn long_range_matches_within_window() {
        let mut data = vec![1u8, 2, 3, 4, 5, 6, 7, 8];
        data.extend(vec![9u8; 30_000]);
        data.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        roundtrip(&data);
    }

    #[test]
    fn corruption_detected_or_roundtrip_fails_loudly() {
        let data = b"hello world hello world hello world".repeat(10);
        let mut c = compress(&data);
        // Truncations must error, never panic.
        for cut in 0..c.len().min(64) {
            let _ = decompress(&c[..cut]);
        }
        // Bad magic errors.
        c[0] = 0;
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn implausible_length_rejected() {
        let mut data = MAGIC.to_vec();
        // Declared length ~ 2^60 with no payload.
        data.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f]);
        assert!(decompress(&data).is_err());
    }

    #[test]
    fn ratio_reports_sensibly() {
        assert!(ratio(&vec![0u8; 10_000]) > 10.0);
        assert!((ratio(b"") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_match_copies_correctly() {
        // "aaaa..." forces matches whose source overlaps the destination.
        let data = vec![b'a'; 1000];
        roundtrip(&data);
    }
}
