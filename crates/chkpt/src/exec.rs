//! Store-wide scoped-task executor.
//!
//! Chunked compression used to spawn a fresh `thread::scope` fan-out per
//! call — a thread spawn + join barrier on every large-payload submit.
//! This module keeps one lazily-spawned pool of persistent workers per
//! process and gives the hot paths two primitives:
//!
//! - [`parallel_map`]: a *scoped* fan-out — borrows non-`'static` data,
//!   returns index-ordered results, and never deadlocks even when every
//!   pool worker is busy, because the calling thread always drains the
//!   shared job queue itself (helpers only steal alongside it).
//! - [`spawn`]: fire-and-forget background work (`'static` jobs — e.g.
//!   shipping a sealed segment to the spool tier).
//!
//! The scoped borrow is made sound the classic way: the caller blocks
//! until every helper task it submitted has *exited* (not merely until
//! all jobs are done), so the erased pointers the helpers hold never
//! outlive the call frame.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use crossbeam::channel::{unbounded, Sender};

/// Pool workers per process (bounded so one process never oversubscribes
/// the machine, matching the old per-call fan-out cap).
const MAX_WORKERS: usize = 8;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    tx: Sender<Job>,
    workers: usize,
}

thread_local! {
    /// Set inside pool workers: a nested [`parallel_map`] on a worker runs
    /// inline instead of submitting helpers, so workers never block on a
    /// latch another queued task must satisfy.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let (tx, rx) = unbounded::<Job>();
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_WORKERS);
        for i in 0..workers {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("flor-exec-{i}"))
                .spawn(move || {
                    IN_POOL.with(|f| f.set(true));
                    while let Ok(job) = rx.recv() {
                        // A panicking task must not kill the worker: the
                        // scoped caller re-raises map panics itself, and a
                        // background job's panic is its own problem.
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                })
                .expect("spawn flor-exec worker");
        }
        Pool { tx, workers }
    })
}

/// Submits a fire-and-forget job to the pool.
pub fn spawn(job: impl FnOnce() + Send + 'static) {
    let p = pool();
    if p.tx.send(Box::new(job)).is_err() {
        panic!("executor channel closed");
    }
}

/// Shared state of one `parallel_map` call, reached from helper tasks via
/// an erased pointer (sound because the caller outlives every helper).
struct MapCtx {
    next: AtomicUsize,
    done_jobs: AtomicUsize,
    exited_helpers: AtomicUsize,
    panicked: AtomicBool,
    jobs: usize,
    latch: Mutex<()>,
    cv: Condvar,
}

/// Runs `f(0..jobs)` across the shared pool, preserving index order in
/// the returned vec. The calling thread participates (so progress never
/// depends on pool availability); helpers steal indices from the same
/// atomic queue. Panics in `f` are re-raised on the caller after all
/// tasks finish.
pub fn parallel_map<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let inline = jobs == 1 || IN_POOL.with(|c| c.get());
    if inline {
        return (0..jobs).map(f).collect();
    }
    let p = pool();
    let helpers = p.workers.min(jobs - 1);
    if helpers == 0 {
        return (0..jobs).map(f).collect();
    }

    let mut results: Vec<Option<T>> = Vec::with_capacity(jobs);
    results.resize_with(jobs, || None);
    let ctx = MapCtx {
        next: AtomicUsize::new(0),
        done_jobs: AtomicUsize::new(0),
        exited_helpers: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
        jobs,
        latch: Mutex::new(()),
        cv: Condvar::new(),
    };

    // Erase the borrows for the 'static job channel. Sound: this frame
    // blocks below until done_jobs == jobs AND every helper has exited,
    // so no helper can touch these pointers after the frame unwinds.
    let ctx_addr = &ctx as *const MapCtx as usize;
    let f_addr = &f as *const F as usize;
    let res_addr = results.as_mut_ptr() as usize;

    let drain = |ctx: &MapCtx, f: &F, res: *mut Option<T>| {
        loop {
            let i = ctx.next.fetch_add(1, Ordering::Relaxed);
            if i >= ctx.jobs {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                // SAFETY: index `i` is claimed exactly once, so this slot
                // is written by exactly one task; the buffer outlives the
                // call (latch below).
                Ok(v) => unsafe { *res.add(i) = Some(v) },
                Err(_) => ctx.panicked.store(true, Ordering::Relaxed),
            }
            if ctx.done_jobs.fetch_add(1, Ordering::Release) + 1 == ctx.jobs {
                let _g = ctx.latch.lock().unwrap();
                ctx.cv.notify_all();
            }
        }
    };

    for _ in 0..helpers {
        let job: Job = Box::new(move || {
            // SAFETY: see ctx_addr erasure comment — the caller's latch
            // keeps all three allocations alive until this task exits.
            let ctx = unsafe { &*(ctx_addr as *const MapCtx) };
            let f = unsafe { &*(f_addr as *const F) };
            drain(ctx, f, res_addr as *mut Option<T>);
            ctx.exited_helpers.fetch_add(1, Ordering::Release);
            let _g = ctx.latch.lock().unwrap();
            ctx.cv.notify_all();
        });
        if p.tx.send(job).is_err() {
            panic!("executor channel closed");
        }
    }

    // The caller drains too — a busy pool degrades to sequential, never
    // to deadlock.
    drain(&ctx, &f, results.as_mut_ptr());

    let mut g = ctx.latch.lock().unwrap();
    while ctx.done_jobs.load(Ordering::Acquire) < jobs
        || ctx.exited_helpers.load(Ordering::Acquire) < helpers
    {
        g = ctx.cv.wait(g).unwrap();
    }
    drop(g);

    if ctx.panicked.load(Ordering::Relaxed) {
        panic!("parallel_map worker panicked");
    }
    results
        .into_iter()
        .map(|r| r.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_index_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_borrows_caller_stack_data() {
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        let parts = parallel_map(16, |i| {
            let s: u64 = data[i * 62..(i + 1) * 62].iter().sum();
            sum.fetch_add(s, Ordering::Relaxed);
            s
        });
        assert_eq!(parts.len(), 16);
        assert_eq!(sum.load(Ordering::Relaxed), parts.iter().sum::<u64>());
    }

    #[test]
    fn nested_maps_complete() {
        // Outer map on the caller + inner maps that may land on pool
        // workers (which run them inline) — must not deadlock.
        let out = parallel_map(8, |i| parallel_map(8, move |j| i * 8 + j).len());
        assert_eq!(out, vec![8; 8]);
    }

    #[test]
    #[should_panic(expected = "parallel_map worker panicked")]
    fn map_panics_propagate() {
        parallel_map(16, |i| {
            if i == 7 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn spawn_runs_detached_jobs() {
        let (tx, rx) = crossbeam::channel::unbounded();
        for i in 0..4 {
            let tx = tx.clone();
            spawn(move || {
                let _ = tx.send(i);
            });
        }
        let mut got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
