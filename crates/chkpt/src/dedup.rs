//! Registry-wide content-addressed keyframe dedup.
//!
//! Sweep-style workloads re-record near-identical models across runs and
//! generations; without dedup every run pays full storage for payloads
//! that are byte-identical to a sibling run's. A [`DedupIndex`] is a
//! shared *blob arena* (one per registry, pointed at by a `DEDUP` pointer
//! file in each store root): stores hash each candidate's **stored
//! representation** (the post-arbitration bytes — compressed keyframe,
//! raw payload, or delta frame) and, on a verified hit, write a MANIFEST
//! v4 `@dup:<hash>` reference entry instead of duplicate segment bytes.
//!
//! ## Layout
//!
//! ```text
//! <arena>/
//!   DEDUPLOG                 # refcount log: "D1\t<crc32>\t<payload>" lines
//!   blobs/<hash:016x>.blob   # one content-addressed stored payload each
//! ```
//!
//! A blob file is `FLRBLOB1 | flags u8 | raw_len u64 LE | payload_crc u32
//! LE | stored bytes` — self-describing, so reads never depend on the
//! in-memory index.
//!
//! ## Refcount contract
//!
//! Every manifest `@dup` reference corresponds to one `+` op in the
//! DEDUPLOG, *appended and synced before* the manifest line is written.
//! Retention appends a `-` op (synced) before deleting a pruned run's
//! directory, and a blob is unlinked only when its count reaches zero.
//! Crash ordering therefore only ever *over-counts* (a synced `+` whose
//! manifest line was lost leaks one reference — bytes, never
//! correctness); it can never under-count, so pruning one run can never
//! sever a surviving run's base. The log recovers like the run catalog:
//! a torn final line is dropped and rewritten away, interior corruption
//! is a loud error.
//!
//! ## Collisions
//!
//! The content address is FNV-1a 64 of the stored bytes, but a hit is
//! honored only when the candidate's full meta — stored length, stored
//! CRC32, raw length, raw-payload CRC32, and flags — matches the indexed
//! blob. A false positive needs a simultaneous FNV-64 + CRC32 + length
//! collision; on mismatch the store simply keeps its private copy (dedup
//! is an optimization, never a correctness dependency).

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::store::{crc32, write_atomic};

/// Blob file magic.
const BLOB_MAGIC: &[u8; 8] = b"FLRBLOB1";
/// Blob header: magic (8) + flags (1) + raw_len (8) + payload_crc (4).
const BLOB_HEADER_BYTES: usize = 8 + 1 + 8 + 4;
/// Refcount log file name within the arena.
const LOG_NAME: &str = "DEDUPLOG";
/// Log record version tag.
const LOG_TAG: &str = "D1";

/// FNV-1a 64 — same constants as `flor_core::record::fnv1a64` (the
/// registry's content-address hash), restated here because `flor-core`
/// depends on this crate, not the other way around.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Everything needed to verify a dedup hit and to reconstruct a store
/// index entry from a reference: the identity of the *stored* bytes plus
/// the payload-level meta the manifest also carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlobMeta {
    /// Stored (post-arbitration) byte length.
    pub stored_len: u64,
    /// CRC32 of the stored bytes.
    pub stored_crc: u32,
    /// Uncompressed payload length.
    pub raw_len: u64,
    /// CRC32 of the uncompressed payload.
    pub payload_crc: u32,
    /// Segment-entry flags of the stored representation (raw/delta).
    pub flags: u8,
}

struct Slot {
    meta: BlobMeta,
    refs: i64,
}

struct Inner {
    slots: HashMap<u64, Slot>,
    appender: Option<fs::File>,
    /// Appends since the last [`DedupIndex::sync`].
    dirty: bool,
}

/// Outcome of [`DedupIndex::intern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interned {
    /// The bytes were already in the arena; a reference was acquired.
    Hit,
    /// First occurrence: the blob was written and a reference acquired.
    Inserted,
    /// Hash present but meta mismatched (collision) — the caller must
    /// store its own copy.
    Collision,
}

/// A shared content-addressed blob arena with a persistent refcount log.
/// One instance per arena directory per process (see [`DedupIndex::open`]);
/// stores clone the `Arc`.
pub struct DedupIndex {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

/// Process-wide instance cache: two stores attaching the same arena must
/// share one in-memory refcount map, or their views would diverge.
fn instances() -> &'static Mutex<HashMap<PathBuf, Weak<DedupIndex>>> {
    static INSTANCES: OnceLock<Mutex<HashMap<PathBuf, Weak<DedupIndex>>>> = OnceLock::new();
    INSTANCES.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arena I/O failure.
pub type DedupError = std::io::Error;

fn corrupt(msg: String) -> DedupError {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

impl DedupIndex {
    /// Opens (or creates) the arena at `dir`, replaying the refcount log.
    /// Returns the process-shared instance for that directory if one is
    /// already live.
    pub fn open(dir: &Path) -> Result<Arc<DedupIndex>, DedupError> {
        let mut live = instances().lock().unwrap();
        // Key by absolute path so relative and absolute spellings share.
        let key = if dir.is_absolute() {
            dir.to_path_buf()
        } else {
            std::env::current_dir()?.join(dir)
        };
        if let Some(idx) = live.get(&key).and_then(Weak::upgrade) {
            return Ok(idx);
        }
        fs::create_dir_all(dir.join("blobs"))?;
        let slots = Self::replay_log(dir)?;
        let idx = Arc::new(DedupIndex {
            dir: dir.to_path_buf(),
            inner: Mutex::new(Inner {
                slots,
                appender: None,
                dirty: false,
            }),
        });
        // Sweep blobs that are unreferenced (a crash between the synced
        // final `-` op and the unlink leaves the file behind) or entirely
        // unknown to the log (a crash before the first `+` was synced).
        idx.sweep_orphans();
        live.insert(key, Arc::downgrade(&idx));
        Ok(idx)
    }

    /// Arena root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn blob_path(&self, hash: u64) -> PathBuf {
        self.dir.join("blobs").join(format!("{hash:016x}.blob"))
    }

    fn log_payload(op: char, hash: u64, meta: &BlobMeta) -> String {
        format!(
            "{op}\t{hash:016x}\t{}\t{:08x}\t{}\t{:08x}\t{}",
            meta.stored_len, meta.stored_crc, meta.raw_len, meta.payload_crc, meta.flags
        )
    }

    fn parse_payload(payload: &str) -> Option<(char, u64, BlobMeta)> {
        let parts: Vec<&str> = payload.split('\t').collect();
        let [op, hash, stored_len, stored_crc, raw_len, payload_crc, flags] = parts.as_slice()
        else {
            return None;
        };
        let op = match *op {
            "+" => '+',
            "-" => '-',
            _ => return None,
        };
        Some((
            op,
            u64::from_str_radix(hash, 16).ok()?,
            BlobMeta {
                stored_len: stored_len.parse().ok()?,
                stored_crc: u32::from_str_radix(stored_crc, 16).ok()?,
                raw_len: raw_len.parse().ok()?,
                payload_crc: u32::from_str_radix(payload_crc, 16).ok()?,
                flags: flags.parse().ok()?,
            },
        ))
    }

    /// Replays the DEDUPLOG into a refcount map. Torn-tail handling
    /// mirrors the run catalog: a final line that is unterminated or
    /// fails its CRC is dropped (and rewritten away); a bad *interior*
    /// line is corruption and errors loudly.
    fn replay_log(dir: &Path) -> Result<HashMap<u64, Slot>, DedupError> {
        let path = dir.join(LOG_NAME);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashMap::new()),
            Err(e) => return Err(e),
        };
        let mut slots: HashMap<u64, Slot> = HashMap::new();
        let mut kept_len = 0usize;
        let mut torn = false;
        let mut lines = text.split_inclusive('\n').peekable();
        while let Some(line) = lines.next() {
            let last = lines.peek().is_none();
            let terminated = line.ends_with('\n');
            let body = line.trim_end_matches('\n');
            let parsed = Self::parse_line(body);
            match parsed {
                Some((op, hash, meta)) if terminated => {
                    kept_len += line.len();
                    let slot = slots.entry(hash).or_insert(Slot { meta, refs: 0 });
                    match op {
                        '+' => {
                            // First `+` fixes the meta; later ops must agree
                            // (they describe the same immutable blob).
                            if slot.refs == 0 {
                                slot.meta = meta;
                            }
                            slot.refs += 1;
                        }
                        _ => slot.refs -= 1,
                    }
                }
                _ if last => {
                    // Torn tail (unterminated, short, or CRC-failed final
                    // line): drop it.
                    torn = true;
                }
                _ => {
                    return Err(corrupt(format!(
                        "dedup log {}: corrupt interior line {:?}",
                        path.display(),
                        &body[..body.len().min(80)]
                    )));
                }
            }
        }
        if torn {
            write_atomic(&path, &text.as_bytes()[..kept_len])?;
        }
        slots.retain(|_, s| s.refs > 0);
        Ok(slots)
    }

    fn parse_line(body: &str) -> Option<(char, u64, BlobMeta)> {
        let rest = body.strip_prefix(LOG_TAG)?.strip_prefix('\t')?;
        let (crc_hex, payload) = rest.split_once('\t')?;
        let crc = u32::from_str_radix(crc_hex, 16).ok()?;
        if crc32(payload.as_bytes()) != crc {
            return None;
        }
        Self::parse_payload(payload)
    }

    /// Unlinks blob files whose hash has no positive refcount.
    fn sweep_orphans(&self) {
        let inner = self.inner.lock().unwrap();
        let Ok(rd) = fs::read_dir(self.dir.join("blobs")) else {
            return;
        };
        for entry in rd.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(hex) = name.strip_suffix(".blob") else {
                continue;
            };
            let Ok(hash) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            if !inner.slots.contains_key(&hash) {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    fn append(&self, inner: &mut Inner, line: String) -> Result<(), DedupError> {
        if inner.appender.is_none() {
            inner.appender = Some(
                fs::OpenOptions::new()
                    .append(true)
                    .create(true)
                    .open(self.dir.join(LOG_NAME))?,
            );
        }
        inner
            .appender
            .as_mut()
            .unwrap()
            .write_all(line.as_bytes())?;
        inner.dirty = true;
        Ok(())
    }

    fn render_line(op: char, hash: u64, meta: &BlobMeta) -> String {
        let payload = Self::log_payload(op, hash, meta);
        format!("{LOG_TAG}\t{:08x}\t{payload}\n", crc32(payload.as_bytes()))
    }

    /// Content address of a stored representation.
    pub fn hash_of(stored: &[u8]) -> u64 {
        fnv1a64(stored)
    }

    /// Interns `stored` under `hash`: acquires a reference on a verified
    /// hit, writes the blob and acquires on a miss, reports a collision
    /// (caller keeps its own copy) on meta mismatch. The `+` op is
    /// appended to the log but **not yet synced** — callers must
    /// [`DedupIndex::sync`] before persisting any reference to it.
    pub fn intern(&self, hash: u64, meta: BlobMeta, stored: &[u8]) -> Result<Interned, DedupError> {
        let mut inner = self.inner.lock().unwrap();
        match inner.slots.get(&hash) {
            Some(slot) if slot.meta == meta => {
                self.append(&mut inner, Self::render_line('+', hash, &meta))?;
                inner.slots.get_mut(&hash).unwrap().refs += 1;
                flor_obs::counter!("dedup.hits").add(1);
                Ok(Interned::Hit)
            }
            Some(_) => {
                flor_obs::counter!("dedup.collisions").add(1);
                Ok(Interned::Collision)
            }
            None => {
                let mut blob = Vec::with_capacity(BLOB_HEADER_BYTES + stored.len());
                blob.extend_from_slice(BLOB_MAGIC);
                blob.push(meta.flags);
                blob.extend_from_slice(&meta.raw_len.to_le_bytes());
                blob.extend_from_slice(&meta.payload_crc.to_le_bytes());
                blob.extend_from_slice(stored);
                write_atomic(&self.blob_path(hash), &blob)?;
                self.append(&mut inner, Self::render_line('+', hash, &meta))?;
                inner.slots.insert(hash, Slot { meta, refs: 1 });
                flor_obs::counter!("dedup.inserts").add(1);
                Ok(Interned::Inserted)
            }
        }
    }

    /// Syncs pending log appends to disk. Must complete before any
    /// manifest line referencing a freshly interned blob is written — the
    /// over-count-only crash guarantee depends on this ordering.
    pub fn sync(&self) -> Result<(), DedupError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.dirty {
            if let Some(f) = inner.appender.as_mut() {
                f.sync_data()?;
            }
            inner.dirty = false;
        }
        Ok(())
    }

    /// Releases one reference to `hash` (a pruned run's manifest entry).
    /// The `-` op is synced before the blob is unlinked at refcount zero,
    /// so a crash leaves an orphan blob (swept at next open), never a
    /// dangling reference. Unknown hashes are ignored (the reference may
    /// have over-counted away already).
    pub fn release(&self, hash: u64) -> Result<(), DedupError> {
        let mut inner = self.inner.lock().unwrap();
        let Some(slot) = inner.slots.get(&hash) else {
            return Ok(());
        };
        let line = Self::render_line('-', hash, &slot.meta);
        self.append(&mut inner, line)?;
        if let Some(f) = inner.appender.as_mut() {
            f.sync_data()?;
        }
        inner.dirty = false;
        let slot = inner.slots.get_mut(&hash).unwrap();
        slot.refs -= 1;
        if slot.refs <= 0 {
            inner.slots.remove(&hash);
            let _ = fs::remove_file(self.blob_path(hash));
        }
        Ok(())
    }

    /// Reads a blob's stored bytes + meta straight from its file (the
    /// in-memory index is not consulted: reads must work even for
    /// references whose `+` op over-counted away). Missing or corrupt
    /// blobs are loud errors.
    pub fn read_stored(&self, hash: u64) -> Result<(Vec<u8>, u8, u64, u32), DedupError> {
        let path = self.blob_path(hash);
        let data = fs::read(&path).map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!(
                    "dedup blob {hash:016x} unreadable at {}: {e}",
                    path.display()
                ),
            )
        })?;
        if data.len() < BLOB_HEADER_BYTES || &data[..8] != BLOB_MAGIC {
            return Err(corrupt(format!("dedup blob {hash:016x}: bad header")));
        }
        let flags = data[8];
        let raw_len = u64::from_le_bytes(data[9..17].try_into().unwrap());
        let payload_crc = u32::from_le_bytes(data[17..21].try_into().unwrap());
        let stored = data[BLOB_HEADER_BYTES..].to_vec();
        if fnv1a64(&stored) != hash {
            return Err(corrupt(format!(
                "dedup blob {hash:016x}: stored bytes hash mismatch"
            )));
        }
        Ok((stored, flags, raw_len, payload_crc))
    }

    /// Current reference count of `hash` (0 when absent) — test and
    /// retention introspection.
    pub fn refs(&self, hash: u64) -> i64 {
        self.inner
            .lock()
            .unwrap()
            .slots
            .get(&hash)
            .map(|s| s.refs)
            .unwrap_or(0)
    }

    /// Number of live (positively referenced) blobs.
    pub fn entries(&self) -> u64 {
        self.inner.lock().unwrap().slots.len() as u64
    }

    /// Total bytes in the blob arena directory.
    pub fn blob_bytes(&self) -> u64 {
        fs::read_dir(self.dir.join("blobs"))
            .map(|rd| {
                rd.flatten()
                    .filter_map(|e| e.metadata().ok())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmparena(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flor-dedup-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta_of(stored: &[u8], raw: &[u8]) -> BlobMeta {
        BlobMeta {
            stored_len: stored.len() as u64,
            stored_crc: crc32(stored),
            raw_len: raw.len() as u64,
            payload_crc: crc32(raw),
            flags: 0,
        }
    }

    #[test]
    fn intern_hit_release_lifecycle() {
        let dir = tmparena("lifecycle");
        let idx = DedupIndex::open(&dir).unwrap();
        let stored = vec![42u8; 4096];
        let h = DedupIndex::hash_of(&stored);
        let m = meta_of(&stored, &stored);
        assert_eq!(idx.intern(h, m, &stored).unwrap(), Interned::Inserted);
        assert_eq!(idx.intern(h, m, &stored).unwrap(), Interned::Hit);
        idx.sync().unwrap();
        assert_eq!(idx.refs(h), 2);
        let (bytes, flags, raw_len, _) = idx.read_stored(h).unwrap();
        assert_eq!(bytes, stored);
        assert_eq!(flags, 0);
        assert_eq!(raw_len, 4096);
        idx.release(h).unwrap();
        assert_eq!(idx.refs(h), 1);
        assert!(idx.blob_path(h).exists());
        idx.release(h).unwrap();
        assert_eq!(idx.refs(h), 0);
        assert!(!idx.blob_path(h).exists(), "refcount zero unlinks the blob");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_mismatch_is_a_collision_not_a_hit() {
        let dir = tmparena("collision");
        let idx = DedupIndex::open(&dir).unwrap();
        let stored = b"stored bytes".to_vec();
        let h = DedupIndex::hash_of(&stored);
        let m = meta_of(&stored, b"payload one");
        assert_eq!(idx.intern(h, m, &stored).unwrap(), Interned::Inserted);
        let other = BlobMeta {
            raw_len: m.raw_len + 1,
            ..m
        };
        assert_eq!(idx.intern(h, other, &stored).unwrap(), Interned::Collision);
        assert_eq!(idx.refs(h), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn refcounts_survive_reopen() {
        let dir = tmparena("reopen");
        let stored = vec![7u8; 2048];
        let h = DedupIndex::hash_of(&stored);
        let m = meta_of(&stored, &stored);
        {
            let idx = DedupIndex::open(&dir).unwrap();
            idx.intern(h, m, &stored).unwrap();
            idx.intern(h, m, &stored).unwrap();
            idx.intern(h, m, &stored).unwrap();
            idx.sync().unwrap();
            idx.release(h).unwrap();
        }
        // Drop the process-shared instance so open() replays from disk.
        instances().lock().unwrap().clear();
        let idx = DedupIndex::open(&dir).unwrap();
        assert_eq!(idx.refs(h), 2);
        assert_eq!(idx.read_stored(h).unwrap().0, stored);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_unreferenced_blobs() {
        let dir = tmparena("orphan");
        fs::create_dir_all(dir.join("blobs")).unwrap();
        // A blob with no log entry: crash before the first `+` synced.
        fs::write(dir.join("blobs/deadbeefdeadbeef.blob"), b"junk").unwrap();
        let idx = DedupIndex::open(&dir).unwrap();
        assert!(!dir.join("blobs/deadbeefdeadbeef.blob").exists());
        assert_eq!(idx.entries(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_log_tail_is_dropped_interior_corruption_is_loud() {
        let dir = tmparena("torn");
        let stored = vec![9u8; 128];
        let h = DedupIndex::hash_of(&stored);
        let m = meta_of(&stored, &stored);
        {
            let idx = DedupIndex::open(&dir).unwrap();
            idx.intern(h, m, &stored).unwrap();
            idx.intern(h, m, &stored).unwrap();
            idx.sync().unwrap();
        }
        instances().lock().unwrap().clear();
        let log = dir.join(LOG_NAME);
        let text = fs::read_to_string(&log).unwrap();
        // Truncate mid-final-line: recovered. The dropped final `+` was
        // synced before its manifest line, so that reference was lost
        // with it — refs drops to 1, never below a surviving reference.
        fs::write(&log, &text.as_bytes()[..text.len() - 3]).unwrap();
        let idx = DedupIndex::open(&dir).unwrap();
        assert_eq!(idx.refs(h), 1);
        assert_eq!(idx.read_stored(h).unwrap().0, stored);
        drop(idx);
        instances().lock().unwrap().clear();
        // Corrupt an interior byte of the (rewritten) first line: loud.
        let mut bytes = fs::read(&log).unwrap();
        bytes[8] ^= 0xFF;
        fs::write(&log, &bytes).unwrap();
        // Append a second valid line so the corrupt one is interior.
        let mut f = fs::OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(DedupIndex::render_line('+', h, &m).as_bytes())
            .unwrap();
        drop(f);
        assert!(DedupIndex::open(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_dir_opens_share_one_instance() {
        let dir = tmparena("shared");
        let a = DedupIndex::open(&dir).unwrap();
        let b = DedupIndex::open(&dir).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let _ = fs::remove_dir_all(&dir);
    }
}
