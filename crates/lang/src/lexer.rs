//! Indentation-aware tokenizer for FlorScript.
//!
//! Follows the Python model: physical lines produce a NEWLINE token; changes
//! in leading whitespace produce INDENT/DEDENT tokens tracked with an indent
//! stack. Blank lines and `#` comments are skipped.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword-adjacent name.
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (contents, quotes stripped).
    Str(String),
    /// Keyword: one of `import for in if else and or not True False None
    /// pass skipblock`.
    Keyword(&'static str),
    /// Operator or punctuation.
    Op(&'static str),
    /// End of a logical line.
    Newline,
    /// Increase in indentation.
    Indent,
    /// Decrease in indentation.
    Dedent,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Name(n) => write!(f, "{n}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Op(o) => write!(f, "{o}"),
            Token::Newline => write!(f, "NEWLINE"),
            Token::Indent => write!(f, "INDENT"),
            Token::Dedent => write!(f, "DEDENT"),
            Token::Eof => write!(f, "EOF"),
        }
    }
}

/// A token plus the 1-based source line it starts on.
pub type Spanned = (Token, usize);

/// Lexing failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

const KEYWORDS: &[&str] = &[
    "import",
    "for",
    "in",
    "if",
    "else",
    "and",
    "or",
    "not",
    "True",
    "False",
    "None",
    "pass",
    "skipblock",
];

/// Tokenizes FlorScript source into a spanned token stream ending in
/// [`Token::Eof`].
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out: Vec<Spanned> = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    // Depth of open brackets — newlines inside brackets are not logical.
    let mut bracket_depth = 0usize;

    for (line_idx, raw_line) in src.lines().enumerate() {
        let lineno = line_idx + 1;
        // Strip comments (no # inside strings supported in comments check —
        // handle by scanning).
        let line = strip_comment(raw_line);
        if line.trim().is_empty() && bracket_depth == 0 {
            continue; // blank or comment-only line
        }

        if bracket_depth == 0 {
            let indent = line.len() - line.trim_start_matches(' ').len();
            if line[..indent].contains('\t') {
                return Err(LexError {
                    message: "tabs are not allowed in indentation".into(),
                    line: lineno,
                });
            }
            let current = *indents.last().unwrap();
            if indent > current {
                indents.push(indent);
                out.push((Token::Indent, lineno));
            } else if indent < current {
                while *indents.last().unwrap() > indent {
                    indents.pop();
                    out.push((Token::Dedent, lineno));
                }
                if *indents.last().unwrap() != indent {
                    return Err(LexError {
                        message: format!("inconsistent dedent to column {indent}"),
                        line: lineno,
                    });
                }
            }
        }

        lex_line(
            line.trim_start_matches(' '),
            lineno,
            &mut out,
            &mut bracket_depth,
        )?;

        if bracket_depth == 0 {
            out.push((Token::Newline, lineno));
        }
    }

    let last_line = src.lines().count().max(1);
    while indents.len() > 1 {
        indents.pop();
        out.push((Token::Dedent, last_line));
    }
    out.push((Token::Eof, last_line));
    Ok(out)
}

/// Removes a trailing comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate() {
        match in_str {
            Some(q) => {
                if b == q {
                    in_str = None;
                }
            }
            None => {
                if b == b'"' || b == b'\'' {
                    in_str = Some(b);
                } else if b == b'#' {
                    return &line[..i];
                }
            }
        }
    }
    line
}

fn lex_line(
    line: &str,
    lineno: usize,
    out: &mut Vec<Spanned>,
    bracket_depth: &mut usize,
) -> Result<(), LexError> {
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == ' ' {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            if let Some(&kw) = KEYWORDS.iter().find(|&&k| k == word) {
                out.push((Token::Keyword(kw), lineno));
            } else {
                out.push((Token::Name(word), lineno));
            }
        } else if c.is_ascii_digit()
            || (c == '.' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let start = i;
            let mut is_float = false;
            while i < chars.len()
                && (chars[i].is_ascii_digit() || chars[i] == '.' || chars[i] == '_')
            {
                if chars[i] == '.' {
                    if is_float {
                        break; // second dot: attribute on a float literal, stop
                    }
                    is_float = true;
                }
                i += 1;
            }
            // Exponent suffix.
            if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                let mut j = i + 1;
                if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
                    j += 1;
                }
                if j < chars.len() && chars[j].is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text: String = chars[start..i].iter().filter(|&&c| c != '_').collect();
            if is_float {
                let v = text.parse::<f64>().map_err(|_| LexError {
                    message: format!("bad float literal {text:?}"),
                    line: lineno,
                })?;
                out.push((Token::Float(v), lineno));
            } else {
                let v = text.parse::<i64>().map_err(|_| LexError {
                    message: format!("bad int literal {text:?}"),
                    line: lineno,
                })?;
                out.push((Token::Int(v), lineno));
            }
        } else if c == '"' || c == '\'' {
            let quote = c;
            i += 1;
            let mut s = String::new();
            let mut closed = false;
            while i < chars.len() {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    let esc = chars[i + 1];
                    s.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        '\\' => '\\',
                        '\'' => '\'',
                        '"' => '"',
                        other => other,
                    });
                    i += 2;
                    continue;
                }
                if chars[i] == quote {
                    closed = true;
                    i += 1;
                    break;
                }
                s.push(chars[i]);
                i += 1;
            }
            if !closed {
                return Err(LexError {
                    message: "unterminated string literal".into(),
                    line: lineno,
                });
            }
            out.push((Token::Str(s), lineno));
        } else {
            // Operators, longest first.
            let two: String = chars[i..(i + 2).min(chars.len())].iter().collect();
            let matched2 = ["==", "!=", "<=", ">=", "**", "//"]
                .iter()
                .find(|&&op| op == two);
            if let Some(&op) = matched2 {
                out.push((Token::Op(op), lineno));
                i += 2;
                continue;
            }
            let one = c;
            let op: &'static str = match one {
                '+' => "+",
                '-' => "-",
                '*' => "*",
                '/' => "/",
                '%' => "%",
                '=' => "=",
                '<' => "<",
                '>' => ">",
                '(' => "(",
                ')' => ")",
                '[' => "[",
                ']' => "]",
                ',' => ",",
                '.' => ".",
                ':' => ":",
                _ => {
                    return Err(LexError {
                        message: format!("unexpected character {one:?}"),
                        line: lineno,
                    })
                }
            };
            match op {
                "(" | "[" => *bracket_depth += 1,
                ")" | "]" => {
                    *bracket_depth = bracket_depth.checked_sub(1).ok_or_else(|| LexError {
                        message: "unbalanced closing bracket".into(),
                        line: lineno,
                    })?
                }
                _ => {}
            }
            out.push((Token::Op(op), lineno));
            i += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            toks("x = 1"),
            vec![
                Token::Name("x".into()),
                Token::Op("="),
                Token::Int(1),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn keywords_vs_names() {
        assert_eq!(
            toks("for x in xs"),
            vec![
                Token::Keyword("for"),
                Token::Name("x".into()),
                Token::Keyword("in"),
                Token::Name("xs".into()),
                Token::Newline,
                Token::Eof
            ]
        );
    }

    #[test]
    fn indentation_produces_indent_dedent() {
        let src = "for i in r:\n    x = 1\ny = 2\n";
        let t = toks(src);
        assert!(t.contains(&Token::Indent));
        assert!(t.contains(&Token::Dedent));
        // Dedent arrives before the `y` token.
        let di = t.iter().position(|x| *x == Token::Dedent).unwrap();
        let yi = t
            .iter()
            .position(|x| *x == Token::Name("y".into()))
            .unwrap();
        assert!(di < yi);
    }

    #[test]
    fn nested_indentation() {
        let src = "for i in r:\n    for j in s:\n        x = 1\n";
        let t = toks(src);
        assert_eq!(t.iter().filter(|x| **x == Token::Indent).count(), 2);
        assert_eq!(t.iter().filter(|x| **x == Token::Dedent).count(), 2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let src = "x = 1  # set x\n\n# full comment line\ny = 2\n";
        let t = toks(src);
        assert_eq!(t.iter().filter(|x| **x == Token::Newline).count(), 2);
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let t = toks("x = \"a#b\"");
        assert!(t.contains(&Token::Str("a#b".into())));
    }

    #[test]
    fn float_and_int_literals() {
        assert_eq!(
            toks("a = 1.5"),
            vec![
                Token::Name("a".into()),
                Token::Op("="),
                Token::Float(1.5),
                Token::Newline,
                Token::Eof
            ]
        );
        assert!(toks("a = 1e-3").contains(&Token::Float(1e-3)));
        assert!(toks("a = 100").contains(&Token::Int(100)));
    }

    #[test]
    fn attribute_on_int_is_not_float() {
        // `x.0` never appears, but `a.b` after an int like `1.item()` would
        // be weird anyway; check the normal method chain lexes.
        let t = toks("y = obj.method(1)");
        assert!(t.contains(&Token::Op(".")));
    }

    #[test]
    fn strings_with_escapes() {
        assert!(toks(r#"s = "a\nb""#).contains(&Token::Str("a\nb".into())));
        assert!(toks(r#"s = 'it\'s'"#).contains(&Token::Str("it's".into())));
    }

    #[test]
    fn continuation_inside_brackets() {
        let src = "x = f(1,\n      2)\ny = 3\n";
        let t = toks(src);
        // Only two logical lines.
        assert_eq!(t.iter().filter(|x| **x == Token::Newline).count(), 2);
        assert!(!t.contains(&Token::Indent), "no INDENT inside brackets");
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("s = \"abc").is_err());
    }

    #[test]
    fn inconsistent_dedent_errors() {
        let src = "for i in r:\n    x = 1\n  y = 2\n";
        assert!(lex(src).is_err());
    }

    #[test]
    fn tabs_in_indentation_rejected() {
        assert!(lex("for i in r:\n\tx = 1\n").is_err());
    }

    #[test]
    fn two_char_operators() {
        let t = toks("a == b != c <= d >= e");
        assert!(t.contains(&Token::Op("==")));
        assert!(t.contains(&Token::Op("!=")));
        assert!(t.contains(&Token::Op("<=")));
        assert!(t.contains(&Token::Op(">=")));
    }

    #[test]
    fn line_numbers_tracked() {
        let spanned = lex("x = 1\ny = 2\n").unwrap();
        let y = spanned
            .iter()
            .find(|(t, _)| *t == Token::Name("y".into()))
            .unwrap();
        assert_eq!(y.1, 2);
    }
}
