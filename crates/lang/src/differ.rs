//! Structural program diff: probe detection for replay.
//!
//! At replay time Flor compares the current source against the copy saved at
//! record (paper §3.2): "Any differences between the source codes are due to
//! hindsight logging statements added by the model developer." This module
//! implements that comparison *structurally* over ASTs, so formatting is
//! irrelevant, and classifies every difference:
//!
//! - an **added log statement** (`log(...)` / `flor.log(...)`) is a *probe*,
//!   attributed to its innermost enclosing SkipBlock (or to the open program
//!   if it is outside every SkipBlock — an "outer-loop probe" in the paper's
//!   Figure 12 terminology);
//! - anything else (edits, deletions, added non-log statements) is an *other
//!   change* — the replay engine refuses to reuse checkpoints across such
//!   changes and warns the user.

use crate::ast::{Program, Stmt};
use crate::printer::print_stmt_at;

/// Where a probe landed.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSite {
    /// Innermost enclosing SkipBlock id, or `None` for probes outside every
    /// SkipBlock (outer-loop probes — cheap on replay).
    pub skipblock_id: Option<String>,
    /// The probe statement itself (a log statement).
    pub stmt: Stmt,
}

/// Result of diffing a record-time program against a replay-time program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Added log statements, with their enclosing SkipBlock attribution.
    pub probes: Vec<ProbeSite>,
    /// Human-readable descriptions of all non-probe differences.
    pub other_changes: Vec<String>,
}

impl DiffReport {
    /// True if the only differences are hindsight probes.
    pub fn is_pure_hindsight(&self) -> bool {
        self.other_changes.is_empty()
    }

    /// True if some probe targets the inside of the given SkipBlock.
    pub fn probes_block(&self, skipblock_id: &str) -> bool {
        self.probes
            .iter()
            .any(|p| p.skipblock_id.as_deref() == Some(skipblock_id))
    }

    /// True if any probe lies outside every SkipBlock.
    pub fn has_outer_probe(&self) -> bool {
        self.probes.iter().any(|p| p.skipblock_id.is_none())
    }
}

/// Diffs two programs (record version → replay version).
pub fn diff_programs(old: &Program, new: &Program) -> DiffReport {
    let mut report = DiffReport::default();
    diff_block(&old.body, &new.body, None, &mut report);
    report
}

/// A statement's alignment key: full text for simple statements, kind+header
/// for container statements (so body edits don't break header alignment).
fn stmt_key(stmt: &Stmt) -> String {
    match stmt {
        Stmt::For { var, iter, .. } => {
            format!("for {var} in {}:", crate::printer::print_expr(iter))
        }
        Stmt::If { cond, .. } => format!("if {}:", crate::printer::print_expr(cond)),
        Stmt::SkipBlock { id, .. } => format!("skipblock {id:?}:"),
        simple => print_stmt_at(simple, 0),
    }
}

fn diff_block(old: &[Stmt], new: &[Stmt], enclosing_sb: Option<&str>, report: &mut DiffReport) {
    let old_keys: Vec<String> = old.iter().map(stmt_key).collect();
    let new_keys: Vec<String> = new.iter().map(stmt_key).collect();
    let (n, m) = (old.len(), new.len());

    // LCS table over statement keys.
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if old_keys[i] == new_keys[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }

    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if old_keys[i] == new_keys[j] {
            // Headers match: recurse into bodies of container statements.
            match (&old[i], &new[j]) {
                (Stmt::For { body: ob, .. }, Stmt::For { body: nb, .. }) => {
                    diff_block(ob, nb, enclosing_sb, report);
                }
                (
                    Stmt::If {
                        then: ot,
                        orelse: oe,
                        ..
                    },
                    Stmt::If {
                        then: nt,
                        orelse: ne,
                        ..
                    },
                ) => {
                    diff_block(ot, nt, enclosing_sb, report);
                    diff_block(oe, ne, enclosing_sb, report);
                }
                (Stmt::SkipBlock { id, body: ob }, Stmt::SkipBlock { body: nb, .. }) => {
                    diff_block(ob, nb, Some(id), report);
                }
                _ => {} // identical simple statements
            }
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            removed(&old[i], report);
            i += 1;
        } else {
            added(&new[j], enclosing_sb, report);
            j += 1;
        }
    }
    while i < n {
        removed(&old[i], report);
        i += 1;
    }
    while j < m {
        added(&new[j], enclosing_sb, report);
        j += 1;
    }
}

fn added(stmt: &Stmt, enclosing_sb: Option<&str>, report: &mut DiffReport) {
    if stmt.is_log_stmt() {
        report.probes.push(ProbeSite {
            skipblock_id: enclosing_sb.map(str::to_string),
            stmt: stmt.clone(),
        });
    } else {
        report.other_changes.push(format!(
            "added non-log statement: {}",
            print_stmt_at(stmt, 0).trim_end()
        ));
    }
}

fn removed(stmt: &Stmt, report: &mut DiffReport) {
    report.other_changes.push(format!(
        "removed statement: {}",
        print_stmt_at(stmt, 0).trim_end()
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn report(old: &str, new: &str) -> DiffReport {
        diff_programs(&parse(old).unwrap(), &parse(new).unwrap())
    }

    const RECORDED: &str = "\
import flor
net = resnet(classes=10)
optimizer = sgd(net, lr=0.1)
for epoch in range(4):
    skipblock \"sb_0\":
        for batch in loader:
            loss = net.train_step(batch, optimizer)
    log(\"epoch\", epoch)
";

    #[test]
    fn identical_programs_have_empty_report() {
        let r = report(RECORDED, RECORDED);
        assert!(r.probes.is_empty());
        assert!(r.other_changes.is_empty());
        assert!(r.is_pure_hindsight());
    }

    #[test]
    fn probe_inside_skipblock_is_attributed() {
        let probed = RECORDED.replace(
            "            loss = net.train_step(batch, optimizer)\n",
            "            loss = net.train_step(batch, optimizer)\n            log(\"grad\", net.grad_norm())\n",
        );
        let r = report(RECORDED, &probed);
        assert!(r.is_pure_hindsight());
        assert_eq!(r.probes.len(), 1);
        assert_eq!(r.probes[0].skipblock_id.as_deref(), Some("sb_0"));
        assert!(r.probes_block("sb_0"));
        assert!(!r.has_outer_probe());
    }

    #[test]
    fn probe_outside_skipblock_is_outer() {
        let probed = RECORDED.replace(
            "    log(\"epoch\", epoch)\n",
            "    log(\"epoch\", epoch)\n    log(\"wnorm\", net.weight_norm())\n",
        );
        let r = report(RECORDED, &probed);
        assert!(r.is_pure_hindsight());
        assert_eq!(r.probes.len(), 1);
        assert_eq!(r.probes[0].skipblock_id, None);
        assert!(r.has_outer_probe());
        assert!(!r.probes_block("sb_0"));
    }

    #[test]
    fn formatting_differences_are_invisible() {
        // Extra blank lines and comments don't change the AST.
        let reformatted = RECORDED.replace("import flor\n", "import flor\n\n# comment\n");
        let r = report(RECORDED, &reformatted);
        assert!(r.probes.is_empty() && r.other_changes.is_empty());
    }

    #[test]
    fn non_log_addition_is_other_change() {
        let edited = RECORDED.replace(
            "    log(\"epoch\", epoch)\n",
            "    log(\"epoch\", epoch)\n    extra_work(net)\n",
        );
        let r = report(RECORDED, &edited);
        assert!(!r.is_pure_hindsight());
        assert_eq!(r.other_changes.len(), 1);
        assert!(r.other_changes[0].contains("extra_work"));
    }

    #[test]
    fn edited_statement_is_two_other_changes() {
        let edited = RECORDED.replace("lr=0.1", "lr=0.5");
        let r = report(RECORDED, &edited);
        assert_eq!(r.other_changes.len(), 2, "{:?}", r.other_changes);
        assert!(r.probes.is_empty());
    }

    #[test]
    fn removed_statement_is_other_change() {
        let edited = RECORDED.replace("    log(\"epoch\", epoch)\n", "");
        let r = report(RECORDED, &edited);
        assert_eq!(r.other_changes.len(), 1);
        assert!(r.other_changes[0].contains("removed"));
    }

    #[test]
    fn multiple_probes_in_different_scopes() {
        let probed = RECORDED
            .replace(
                "            loss = net.train_step(batch, optimizer)\n",
                "            loss = net.train_step(batch, optimizer)\n            log(\"loss\", loss)\n",
            )
            .replace(
                "    log(\"epoch\", epoch)\n",
                "    log(\"epoch\", epoch)\n    log(\"w\", net.weight_norm())\n",
            );
        let r = report(RECORDED, &probed);
        assert_eq!(r.probes.len(), 2);
        assert!(r.probes_block("sb_0"));
        assert!(r.has_outer_probe());
    }

    #[test]
    fn nested_skipblocks_attribute_to_innermost() {
        let old = "\
skipblock \"outer\":
    for e in range(2):
        skipblock \"inner\":
            for b in loader:
                net.step(b)
";
        let new = "\
skipblock \"outer\":
    for e in range(2):
        skipblock \"inner\":
            for b in loader:
                net.step(b)
                log(\"x\", 1)
";
        let r = report(old, new);
        assert_eq!(r.probes.len(), 1);
        assert_eq!(r.probes[0].skipblock_id.as_deref(), Some("inner"));
    }

    #[test]
    fn probe_added_in_if_branch_keeps_enclosure() {
        let old = "\
skipblock \"sb\":
    for b in loader:
        if b > 1:
            net.step(b)
";
        let new = "\
skipblock \"sb\":
    for b in loader:
        if b > 1:
            net.step(b)
            log(\"b\", b)
";
        let r = report(old, new);
        assert_eq!(r.probes.len(), 1);
        assert_eq!(r.probes[0].skipblock_id.as_deref(), Some("sb"));
    }

    #[test]
    fn changed_loop_header_is_other_change() {
        let old = "for e in range(2):\n    net.step(e)\n";
        let new = "for e in range(3):\n    net.step(e)\n";
        let r = report(old, new);
        assert!(!r.is_pure_hindsight());
    }
}
