//! Recursive-descent parser for FlorScript.
//!
//! Grammar (statements are newline-terminated; blocks are INDENT/DEDENT):
//!
//! ```text
//! program    := stmt*
//! stmt       := import | for | if | skipblock | pass | simple NEWLINE
//! import     := "import" NAME
//! for        := "for" NAME "in" expr ":" block
//! if         := "if" expr ":" block ("else" ":" block)?
//! skipblock  := "skipblock" STR ":" block
//! simple     := target_list "=" expr_list | expr_list
//! block      := NEWLINE INDENT stmt+ DEDENT
//! expr       := or_expr
//! or_expr    := and_expr ("or" and_expr)*
//! and_expr   := not_expr ("and" not_expr)*
//! not_expr   := "not" not_expr | comparison
//! comparison := arith (("=="|"!="|"<"|"<="|">"|">=") arith)?
//! arith      := term (("+"|"-") term)*
//! term       := unary (("*"|"/"|"%") unary)*
//! unary      := "-" unary | postfix
//! postfix    := atom ("." NAME | "(" args ")" | "[" expr "]")*
//! atom       := NAME | INT | FLOAT | STR | "True" | "False" | "None"
//!             | "(" expr ("," expr)* ")" | "[" expr_list? "]"
//! ```

use crate::ast::{Arg, BinOp, Expr, Program, Stmt, UnaryOp};
use crate::lexer::{lex, LexError, Spanned, Token};
use std::fmt;

/// Parse failure with a 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parses FlorScript source text into a [`Program`].
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let body = p.parse_stmts_until_eof()?;
    Ok(Program::new(body))
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].0
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].1
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Token::Op(o) if *o == op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &str) -> Result<(), ParseError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.err(format!("expected {op:?}, found {}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Keyword(k) if *k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_newline(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Token::Newline => {
                self.bump();
                Ok(())
            }
            Token::Eof => Ok(()),
            other => Err(self.err(format!("expected end of line, found {other}"))),
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            line: self.line(),
        }
    }

    fn parse_stmts_until_eof(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut body = Vec::new();
        loop {
            match self.peek() {
                Token::Eof => return Ok(body),
                Token::Newline => {
                    self.bump();
                }
                Token::Dedent | Token::Indent => {
                    return Err(self.err("unexpected indentation at top level".into()))
                }
                _ => body.push(self.parse_stmt()?),
            }
        }
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_op(":")?;
        match self.bump() {
            Token::Newline => {}
            other => return Err(self.err(format!("expected newline after ':', found {other}"))),
        }
        match self.bump() {
            Token::Indent => {}
            other => return Err(self.err(format!("expected an indented block, found {other}"))),
        }
        let mut body = Vec::new();
        loop {
            match self.peek() {
                Token::Dedent => {
                    self.bump();
                    break;
                }
                Token::Eof => break,
                Token::Newline => {
                    self.bump();
                }
                _ => body.push(self.parse_stmt()?),
            }
        }
        if body.is_empty() {
            return Err(self.err("empty block".into()));
        }
        Ok(body)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_keyword("import") {
            let module = match self.bump() {
                Token::Name(n) => n,
                other => return Err(self.err(format!("expected module name, found {other}"))),
            };
            self.expect_newline()?;
            return Ok(Stmt::Import { module });
        }
        if self.eat_keyword("pass") {
            self.expect_newline()?;
            return Ok(Stmt::Pass);
        }
        if self.eat_keyword("for") {
            let var = match self.bump() {
                Token::Name(n) => n,
                other => return Err(self.err(format!("expected loop variable, found {other}"))),
            };
            if !self.eat_keyword("in") {
                return Err(self.err("expected 'in' in for statement".into()));
            }
            let iter = self.parse_expr()?;
            let body = self.parse_block()?;
            return Ok(Stmt::For { var, iter, body });
        }
        if self.eat_keyword("if") {
            let cond = self.parse_expr()?;
            let then = self.parse_block()?;
            let orelse = if self.eat_keyword("else") {
                self.parse_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then, orelse });
        }
        if self.eat_keyword("skipblock") {
            let id = match self.bump() {
                Token::Str(s) => s,
                other => {
                    return Err(self.err(format!("expected skipblock id string, found {other}")))
                }
            };
            let body = self.parse_block()?;
            return Ok(Stmt::SkipBlock { id, body });
        }

        // Simple statement: assignment or expression.
        let first = self.parse_expr()?;
        let mut exprs = vec![first];
        while self.eat_op(",") {
            exprs.push(self.parse_expr()?);
        }
        if self.eat_op("=") {
            // targets = value_list
            for t in &exprs {
                match t {
                    Expr::Name(_) | Expr::Attr { .. } | Expr::Subscript { .. } => {}
                    other => return Err(self.err(format!("invalid assignment target: {other}"))),
                }
            }
            let mut values = vec![self.parse_expr()?];
            while self.eat_op(",") {
                values.push(self.parse_expr()?);
            }
            let value = if values.len() == 1 {
                values.pop().unwrap()
            } else {
                Expr::Tuple(values)
            };
            self.expect_newline()?;
            return Ok(Stmt::Assign {
                targets: exprs,
                value,
            });
        }
        let expr = if exprs.len() == 1 {
            exprs.pop().unwrap()
        } else {
            Expr::Tuple(exprs)
        };
        self.expect_newline()?;
        Ok(Stmt::ExprStmt { expr })
    }

    // -- expressions --------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat_keyword("or") {
            let rhs = self.parse_and()?;
            lhs = Expr::Bin {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_not()?;
        while self.eat_keyword("and") {
            let rhs = self.parse_not()?;
            lhs = Expr::Bin {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat_keyword("not") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_arith()?;
        let op = match self.peek() {
            Token::Op("==") => Some(BinOp::Eq),
            Token::Op("!=") => Some(BinOp::Ne),
            Token::Op("<") => Some(BinOp::Lt),
            Token::Op("<=") => Some(BinOp::Le),
            Token::Op(">") => Some(BinOp::Gt),
            Token::Op(">=") => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_arith()?;
            return Ok(Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn parse_arith(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Token::Op("+") => BinOp::Add,
                Token::Op("-") => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_term()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Op("*") => BinOp::Mul,
                Token::Op("/") => BinOp::Div,
                Token::Op("%") => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_op("-") {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_atom()?;
        loop {
            if self.eat_op(".") {
                let name = match self.bump() {
                    Token::Name(n) => n,
                    other => {
                        return Err(self.err(format!("expected attribute name, found {other}")))
                    }
                };
                expr = Expr::Attr {
                    obj: Box::new(expr),
                    name,
                };
            } else if self.eat_op("(") {
                let mut args = Vec::new();
                if !self.eat_op(")") {
                    loop {
                        // Keyword argument: NAME '=' expr (lookahead).
                        let arg = if let Token::Name(n) = self.peek().clone() {
                            if matches!(&self.tokens[self.pos + 1].0, Token::Op("=")) {
                                self.bump(); // name
                                self.bump(); // '='
                                Arg::kw(n, self.parse_expr()?)
                            } else {
                                Arg::pos(self.parse_expr()?)
                            }
                        } else {
                            Arg::pos(self.parse_expr()?)
                        };
                        args.push(arg);
                        if self.eat_op(")") {
                            break;
                        }
                        self.expect_op(",")?;
                    }
                }
                expr = Expr::Call {
                    func: Box::new(expr),
                    args,
                };
            } else if self.eat_op("[") {
                let index = self.parse_expr()?;
                self.expect_op("]")?;
                expr = Expr::Subscript {
                    obj: Box::new(expr),
                    index: Box::new(index),
                };
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Token::Name(n) => Ok(Expr::Name(n)),
            Token::Int(i) => Ok(Expr::Int(i)),
            Token::Float(x) => Ok(Expr::Float(x)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::Keyword("True") => Ok(Expr::Bool(true)),
            Token::Keyword("False") => Ok(Expr::Bool(false)),
            Token::Keyword("None") => Ok(Expr::NoneLit),
            Token::Op("(") => {
                let first = self.parse_expr()?;
                if self.eat_op(",") {
                    let mut items = vec![first];
                    if !matches!(self.peek(), Token::Op(")")) {
                        loop {
                            items.push(self.parse_expr()?);
                            if !self.eat_op(",") {
                                break;
                            }
                            if matches!(self.peek(), Token::Op(")")) {
                                break;
                            }
                        }
                    }
                    self.expect_op(")")?;
                    Ok(Expr::Tuple(items))
                } else {
                    self.expect_op(")")?;
                    Ok(first)
                }
            }
            Token::Op("[") => {
                let mut items = Vec::new();
                if !self.eat_op("]") {
                    loop {
                        items.push(self.parse_expr()?);
                        if self.eat_op("]") {
                            break;
                        }
                        self.expect_op(",")?;
                    }
                }
                Ok(Expr::List(items))
            }
            other => Err(self.err(format!("unexpected token {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Program {
        parse(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource:\n{src}"))
    }

    #[test]
    fn import_statement() {
        let prog = p("import flor\n");
        assert_eq!(
            prog.body,
            vec![Stmt::Import {
                module: "flor".into()
            }]
        );
    }

    #[test]
    fn simple_assignment() {
        let prog = p("x = 1 + 2 * 3\n");
        match &prog.body[0] {
            Stmt::Assign { targets, value } => {
                assert_eq!(targets, &[Expr::name("x")]);
                // Precedence: 1 + (2 * 3)
                match value {
                    Expr::Bin {
                        op: BinOp::Add,
                        rhs,
                        ..
                    } => {
                        assert!(matches!(rhs.as_ref(), Expr::Bin { op: BinOp::Mul, .. }))
                    }
                    other => panic!("bad tree: {other:?}"),
                }
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn multi_target_assignment() {
        let prog = p("loss, preds = net.eval(batch)\n");
        match &prog.body[0] {
            Stmt::Assign { targets, value } => {
                assert_eq!(targets.len(), 2);
                assert!(matches!(value, Expr::Call { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tuple_rhs_assignment() {
        let prog = p("a, b = 1, 2\n");
        match &prog.body[0] {
            Stmt::Assign { value, .. } => {
                assert_eq!(value, &Expr::Tuple(vec![Expr::Int(1), Expr::Int(2)]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attribute_assignment_target() {
        let prog = p("optimizer.lr = 0.1\n");
        match &prog.body[0] {
            Stmt::Assign { targets, .. } => {
                assert!(matches!(&targets[0], Expr::Attr { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn method_call_statement() {
        let prog = p("optimizer.step()\n");
        match &prog.body[0] {
            Stmt::ExprStmt {
                expr: Expr::Call { func, args },
            } => {
                assert!(args.is_empty());
                assert!(matches!(func.as_ref(), Expr::Attr { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn keyword_arguments() {
        let prog = p("opt = sgd(net, lr=0.1, momentum=0.9)\n");
        match &prog.body[0] {
            Stmt::Assign {
                value: Expr::Call { args, .. },
                ..
            } => {
                assert_eq!(args.len(), 3);
                assert_eq!(args[0].name, None);
                assert_eq!(args[1].name.as_deref(), Some("lr"));
                assert_eq!(args[2].name.as_deref(), Some("momentum"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn for_loop_with_body() {
        let src = "for epoch in range(10):\n    x = epoch\n    log(\"e\", epoch)\n";
        let prog = p(src);
        match &prog.body[0] {
            Stmt::For { var, body, .. } => {
                assert_eq!(var, "epoch");
                assert_eq!(body.len(), 2);
                assert!(body[1].is_log_stmt());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_loops() {
        let src =
            "for e in range(2):\n    for b in loader:\n        net.step(b)\n    sched.step()\n";
        let prog = p(src);
        match &prog.body[0] {
            Stmt::For { body, .. } => {
                assert_eq!(body.len(), 2);
                assert!(matches!(&body[0], Stmt::For { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_else() {
        let src = "if x > 1:\n    y = 1\nelse:\n    y = 2\n";
        let prog = p(src);
        match &prog.body[0] {
            Stmt::If { then, orelse, .. } => {
                assert_eq!(then.len(), 1);
                assert_eq!(orelse.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn skipblock_statement() {
        let src = "skipblock \"sb_1\":\n    for b in loader:\n        net.step(b)\n";
        let prog = p(src);
        match &prog.body[0] {
            Stmt::SkipBlock { id, body } => {
                assert_eq!(id, "sb_1");
                assert_eq!(body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn subscript_and_chained_attr() {
        let prog = p("v = batches[0].data.shape\n");
        match &prog.body[0] {
            Stmt::Assign { value, .. } => {
                assert_eq!(value.root_name(), Some("batches"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn list_literal() {
        let prog = p("xs = [1, 2.5, \"a\"]\n");
        match &prog.body[0] {
            Stmt::Assign {
                value: Expr::List(items),
                ..
            } => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comparison_and_bool_ops() {
        let prog = p("ok = x >= 1 and not done or y == 2\n");
        assert!(matches!(
            &prog.body[0],
            Stmt::Assign {
                value: Expr::Bin { op: BinOp::Or, .. },
                ..
            }
        ));
    }

    #[test]
    fn unary_minus() {
        let prog = p("x = -y + 1\n");
        match &prog.body[0] {
            Stmt::Assign {
                value: Expr::Bin { lhs, .. },
                ..
            } => {
                assert!(matches!(
                    lhs.as_ref(),
                    Expr::Unary {
                        op: UnaryOp::Neg,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn figure2_shape_parses() {
        // The paper's Figure 2 PyTorch example, transliterated.
        let src = "\
import flor
net = resnet(classes=100)
optimizer = sgd(net, lr=0.1)
for epoch in range(200):
    for batch in loader:
        loss = net.train_step(batch, optimizer)
    eval_net(net)
    log(\"epoch\", epoch)
";
        let prog = p(src);
        assert_eq!(prog.body.len(), 4);
    }

    #[test]
    fn error_reports_line() {
        let err = parse("x = 1\ny = = 2\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn invalid_assignment_target_rejected() {
        assert!(parse("1 = x\n").is_err());
        assert!(parse("f() = x\n").is_err());
    }

    #[test]
    fn empty_block_rejected() {
        assert!(parse("for i in r:\npass\n").is_err());
    }

    #[test]
    fn parenthesized_tuple() {
        let prog = p("t = (1, 2, 3)\n");
        match &prog.body[0] {
            Stmt::Assign {
                value: Expr::Tuple(items),
                ..
            } => assert_eq!(items.len(), 3),
            other => panic!("{other:?}"),
        }
    }
}
