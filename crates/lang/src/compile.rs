//! Bytecode compiler: lowers a FlorScript [`Program`] to a flat
//! instruction stream executed by `flor-core`'s VM.
//!
//! The tree-walking interpreter re-dispatches on [`Stmt`]/[`Expr`] nodes
//! and hashes `String` names into the environment on every variable
//! touch — the dominant cost of replay once checkpoint reads are ~1µs
//! (paper §5: replay speed is the product's reason to exist). One
//! compile pass per source version eliminates both:
//!
//! - **Constant pool** — literals are materialized once per run, not per
//!   evaluation ([`Const`], [`Op::Const`]).
//! - **Slot-resolved variables** — every distinct name gets a `u16`
//!   frame slot at compile time; the VM indexes a `Vec` instead of
//!   hashing strings ([`Op::LoadSlot`]/[`Op::StoreSlot`]). `Env` remains
//!   only the boundary representation for checkpoint restore and
//!   materialization.
//! - **Compact ops** — control flow becomes absolute jumps; skipblock
//!   and main-loop bodies are inlined ranges re-enterable at iteration
//!   boundaries, which is exactly what the work-stealing replay executor
//!   needs to run a stolen range without walking the tree to find it.
//!
//! Compilation preserves the tree-walker's observable semantics *by
//! construction*: operand evaluation order matches the recursive
//! evaluator statement-for-statement, and runtime error strings are
//! either produced by the same shared helpers or pre-formatted here from
//! the same AST nodes ([`Op::Fail`]).

use crate::ast::{Arg, BinOp, Expr, Program, Stmt, UnaryOp};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Address of one statement in a program: one packed [`path_step`] per
/// nesting level, root first. The slot halves are fixed per container —
/// `For`/`SkipBlock` bodies and `If` then-branches are slot 0, `If`
/// else-branches slot 1, and the top-level program body slot 0 — so a
/// path identifies the same statement to the AST pruner
/// ([`prune_program`]), the elision compiler ([`compile_sliced`]), and
/// the slicer in `flor-analysis` that produces the dead set.
pub type StmtPath = Vec<u64>;

/// Packs one [`StmtPath`] step: which body of the parent statement
/// (`slot`) and the statement's index within that body.
pub fn path_step(slot: u32, idx: usize) -> u64 {
    ((slot as u64) << 32) | idx as u64
}

/// Number of statement nodes in a subtree — the unit of the slicer's
/// elision accounting (a dead `if` counts itself plus both branches).
pub fn stmt_count(stmt: &Stmt) -> u32 {
    match stmt {
        Stmt::For { body, .. } | Stmt::SkipBlock { body, .. } => {
            1 + body.iter().map(stmt_count).sum::<u32>()
        }
        Stmt::If { then, orelse, .. } => {
            1 + then.iter().map(stmt_count).sum::<u32>()
                + orelse.iter().map(stmt_count).sum::<u32>()
        }
        _ => 1,
    }
}

/// Removes every statement whose [`StmtPath`] is in `dead`, recursively.
/// This is the tree-walking interpreter's view of the slice: it executes
/// the pruned program directly, while the VM executes
/// [`compile_sliced`]'s module — both derive from the same dead set, and
/// `compile_sliced(prog, dead) == compile(prune_program(prog, dead))` by
/// construction (a bodies-emptied `pass` lowers to no instructions).
pub fn prune_program(prog: &Program, dead: &HashSet<StmtPath>) -> Program {
    let mut path = StmtPath::new();
    Program::new(prune_body(&prog.body, 0, &mut path, dead))
}

fn prune_body(
    body: &[Stmt],
    slot: u32,
    path: &mut StmtPath,
    dead: &HashSet<StmtPath>,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(body.len());
    for (i, s) in body.iter().enumerate() {
        path.push(path_step(slot, i));
        if !dead.contains(path) {
            out.push(prune_stmt(s, path, dead));
        }
        path.pop();
    }
    if out.is_empty() && !body.is_empty() {
        // Keep emptied bodies printable and re-parseable; `pass` lowers
        // to no instructions, preserving module equality with in-place
        // elision.
        out.push(Stmt::Pass);
    }
    out
}

fn prune_stmt(stmt: &Stmt, path: &mut StmtPath, dead: &HashSet<StmtPath>) -> Stmt {
    match stmt {
        Stmt::For { var, iter, body } => Stmt::For {
            var: var.clone(),
            iter: iter.clone(),
            body: prune_body(body, 0, path, dead),
        },
        Stmt::If { cond, then, orelse } => Stmt::If {
            cond: cond.clone(),
            then: prune_body(then, 0, path, dead),
            orelse: prune_body(orelse, 1, path, dead),
        },
        Stmt::SkipBlock { id, body } => Stmt::SkipBlock {
            id: id.clone(),
            body: prune_body(body, 0, path, dead),
        },
        other => other.clone(),
    }
}

/// A compile-time constant in the module's pool.
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `None`.
    None,
}

/// One VM instruction. Operands index the module's side tables
/// ([`Module::consts`], [`Module::names`], [`Module::calls`],
/// [`Module::loops`], [`Module::blocks`]) or frame slots; jump targets
/// are absolute instruction indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push `consts[i]`.
    Const(u16),
    /// Push the value in frame slot `i`; error if unbound.
    LoadSlot(u16),
    /// Pop into frame slot `i`.
    StoreSlot(u16),
    /// Push the `flor` module sentinel (checked before any binding, like
    /// the tree-walker's `Name("flor")` special case).
    LoadFlor,
    /// Pop `n` values, push a list (first-pushed first).
    MakeList(u16),
    /// Pop `n` values, push a tuple.
    MakeTuple(u16),
    /// Arithmetic negation of the top of stack.
    Neg,
    /// Logical negation (truthiness) of the top of stack.
    Not,
    /// Pop rhs, pop lhs, push `lhs op rhs`. Never [`BinOp::And`] /
    /// [`BinOp::Or`] — those compile to short-circuit jumps.
    Bin(BinOp),
    /// Fused [`Op::Bin`]: push `slots[a] op slots[b]` without touching
    /// the operand stack. Unbound-slot errors fire for `a` before `b`,
    /// exactly like the discrete `LoadSlot a; LoadSlot b; Bin` sequence.
    BinSS {
        /// Operator (never `And`/`Or`).
        op: BinOp,
        /// Lhs frame slot.
        a: u16,
        /// Rhs frame slot.
        b: u16,
    },
    /// Fused [`Op::Bin`]: push `slots[a] op consts[c]`.
    BinSC {
        /// Operator (never `And`/`Or`).
        op: BinOp,
        /// Lhs frame slot.
        a: u16,
        /// Rhs constant-pool index.
        c: u16,
    },
    /// Fused [`Op::Bin`]: push `consts[c] op slots[b]`.
    BinCS {
        /// Operator (never `And`/`Or`).
        op: BinOp,
        /// Lhs constant-pool index.
        c: u16,
        /// Rhs frame slot.
        b: u16,
    },
    /// Fused [`Op::Bin`]: pop lhs, push `lhs op slots[b]`.
    BinTS {
        /// Operator (never `And`/`Or`).
        op: BinOp,
        /// Rhs frame slot.
        b: u16,
    },
    /// Fused [`Op::Bin`]: pop lhs, push `lhs op consts[c]`.
    BinTC {
        /// Operator (never `And`/`Or`).
        op: BinOp,
        /// Rhs constant-pool index.
        c: u16,
    },
    /// Unconditional jump.
    Jump(u32),
    /// Pop the condition; jump if falsy.
    JumpIfFalse(u32),
    /// `and` short-circuit: if the top of stack is falsy, jump (keeping
    /// it as the result); otherwise pop it and continue into the rhs.
    AndJump(u32),
    /// `or` short-circuit: if the top of stack is truthy, jump (keeping
    /// it as the result); otherwise pop it and continue into the rhs.
    OrJump(u32),
    /// Discard the top of stack.
    Pop,
    /// Pop index, pop receiver, push `recv[index]`.
    Index,
    /// Pop index, pop receiver, pop value; `recv[index] = value`.
    StoreIndex,
    /// Pop receiver, push `recv.<names[i]>`.
    LoadAttr(u16),
    /// Pop receiver, pop value; `recv.<names[i]> = value`.
    StoreAttr(u16),
    /// Pop a tuple/list of exactly `n` items; push them in reverse so
    /// the first target's value ends up on top.
    Unpack(u16),
    /// Pop `n` evaluated arguments and emit a log entry (the `log(...)`
    /// / `flor.log(...)` primitive; keyword names are ignored, exactly
    /// like the tree-walker).
    CallLog(u16),
    /// Pop `calls[i].args.len()` arguments and invoke the builtin named
    /// `calls[i].name`.
    CallBuiltin(u16),
    /// Pop `calls[i].args.len()` arguments, pop the receiver, and invoke
    /// the method named `calls[i].name`.
    CallMethod(u16),
    /// Pop an iterable and push an iteration frame over its items
    /// (snapshotting, like the tree-walker's `eval_to_items`).
    GetIter,
    /// Advance the innermost iteration frame: store the next item into
    /// `slot` and fall through, or pop the frame and jump to `exit`.
    ForIter {
        /// Loop-variable frame slot.
        slot: u16,
        /// Jump target once the frame is exhausted.
        exit: u32,
    },
    /// Enter the `flor.partition` main loop described by `loops[i]`; the
    /// iterable's items are on the stack. The handler runs the inlined
    /// body range per iteration and resumes after it.
    MainLoop(u16),
    /// Execute the skipblock described by `blocks[i]` (record/restore
    /// decision at runtime); its body is the inlined range after this
    /// instruction, and the handler resumes past it.
    SkipBlock(u16),
    /// Raise the pre-formatted runtime error `names[i]` (statically
    /// uncallable callee, invalid assignment target). Evaluation order
    /// up to the failure point matches the tree-walker.
    Fail(u16),
}

impl Op {
    /// Stable mnemonic for disassembly and the opcode-coverage gate.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::Const(_) => "const",
            Op::LoadSlot(_) => "load-slot",
            Op::StoreSlot(_) => "store-slot",
            Op::LoadFlor => "load-flor",
            Op::MakeList(_) => "make-list",
            Op::MakeTuple(_) => "make-tuple",
            Op::Neg => "neg",
            Op::Not => "not",
            Op::Bin(_) => "bin",
            Op::BinSS { .. } => "bin-ss",
            Op::BinSC { .. } => "bin-sc",
            Op::BinCS { .. } => "bin-cs",
            Op::BinTS { .. } => "bin-ts",
            Op::BinTC { .. } => "bin-tc",
            Op::Jump(_) => "jump",
            Op::JumpIfFalse(_) => "jump-if-false",
            Op::AndJump(_) => "and-jump",
            Op::OrJump(_) => "or-jump",
            Op::Pop => "pop",
            Op::Index => "index",
            Op::StoreIndex => "store-index",
            Op::LoadAttr(_) => "load-attr",
            Op::StoreAttr(_) => "store-attr",
            Op::Unpack(_) => "unpack",
            Op::CallLog(_) => "call-log",
            Op::CallBuiltin(_) => "call-builtin",
            Op::CallMethod(_) => "call-method",
            Op::GetIter => "get-iter",
            Op::ForIter { .. } => "for-iter",
            Op::MainLoop(_) => "main-loop",
            Op::SkipBlock(_) => "skip-block",
            Op::Fail(_) => "fail",
        }
    }

    /// Every mnemonic, in declaration order — the opcode-coverage test
    /// asserts each one is constructed by at least one compiler test.
    pub const MNEMONICS: [&'static str; 32] = [
        "const",
        "load-slot",
        "store-slot",
        "load-flor",
        "make-list",
        "make-tuple",
        "neg",
        "not",
        "bin",
        "bin-ss",
        "bin-sc",
        "bin-cs",
        "bin-ts",
        "bin-tc",
        "jump",
        "jump-if-false",
        "and-jump",
        "or-jump",
        "pop",
        "index",
        "store-index",
        "load-attr",
        "store-attr",
        "unpack",
        "call-log",
        "call-builtin",
        "call-method",
        "get-iter",
        "for-iter",
        "main-loop",
        "skip-block",
        "fail",
    ];
}

/// Signature of one call site: the callee (or method) name plus each
/// argument's keyword name (`None` = positional), in source order. The
/// VM zips this with the popped argument values to rebuild the
/// positional/keyword split without re-inspecting the AST.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSpec {
    /// Callee name index into [`Module::names`] (function name for
    /// [`Op::CallBuiltin`], method name for [`Op::CallMethod`]).
    pub name: u16,
    /// Per-argument keyword-name index (`None` = positional).
    pub args: Vec<Option<u16>>,
}

/// One `flor.partition` main loop: its loop-variable slot and the
/// inlined body's instruction range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopInfo {
    /// Frame slot of the loop variable.
    pub var_slot: u16,
    /// First instruction of the inlined body.
    pub body_start: usize,
    /// One past the last instruction of the body (resume point).
    pub body_end: usize,
}

/// One skipblock: its static id and the inlined body's instruction
/// range.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockInfo {
    /// Static skipblock id (stable across runs).
    pub id: String,
    /// First instruction of the inlined body.
    pub body_start: usize,
    /// One past the last instruction of the body (resume point).
    pub body_end: usize,
}

/// A compiled program: the instruction stream plus its side tables.
/// Immutable after compilation and `Send + Sync`, so replay workers
/// share one module behind an `Arc` and the registry caches it across
/// queries keyed by `source_version`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Flat instruction stream; execution starts at 0.
    pub ops: Vec<Op>,
    /// Constant pool.
    pub consts: Vec<Const>,
    /// Interned strings: attribute/method/builtin/keyword names and
    /// pre-formatted [`Op::Fail`] messages.
    pub names: Vec<String>,
    /// Call-site signatures for [`Op::CallBuiltin`]/[`Op::CallMethod`].
    pub calls: Vec<CallSpec>,
    /// Slot index → variable name (for unbound-name errors and the
    /// slots→`Env` boundary flush).
    pub slot_names: Vec<String>,
    /// Variable name → slot index (for the `Env`→slots boundary on
    /// checkpoint restore).
    pub slot_of: HashMap<String, u16>,
    /// Main-loop descriptors for [`Op::MainLoop`].
    pub loops: Vec<LoopInfo>,
    /// Skipblock descriptors for [`Op::SkipBlock`].
    pub blocks: Vec<BlockInfo>,
}

impl Module {
    /// Number of frame slots a VM frame for this module needs.
    pub fn slot_count(&self) -> usize {
        self.slot_names.len()
    }
}

/// Compilation failure: a program exceeding the bytecode format's
/// limits (2¹⁶ slots/names/constants/call sites, 2³² instructions).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError(pub String);

/// A side-effect-free operand the compiler can fold into a fused
/// binary op instead of routing through the operand stack.
#[derive(Debug, Clone, Copy)]
enum Leaf {
    /// A plain variable reference, resolved to its frame slot.
    Slot(u16),
    /// A literal, interned in the constant pool.
    Const(u16),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// Compiles a program to a [`Module`].
pub fn compile(prog: &Program) -> Result<Module, CompileError> {
    compile_sliced(prog, &HashSet::new()).map(|(m, _)| m)
}

/// Compiles a program with dead-statement elision: statements whose
/// [`StmtPath`] is in `dead` (and their subtrees) lower to nothing.
/// Returns the module and the number of statement nodes elided.
///
/// Produces exactly the module `compile(&prune_program(prog, dead))`
/// would — the differential unit test below pins this — so the VM and
/// the tree-walker execute the same slice.
pub fn compile_sliced(
    prog: &Program,
    dead: &HashSet<StmtPath>,
) -> Result<(Module, u32), CompileError> {
    let mut c = Compiler {
        dead: dead.clone(),
        ..Compiler::default()
    };
    c.body(&prog.body, 0)?;
    let elided = c.elided;
    Ok((
        Module {
            ops: c.ops,
            consts: c.consts,
            names: c.names,
            calls: c.calls,
            slot_names: c.slot_names,
            slot_of: c.slot_of,
            loops: c.loops,
            blocks: c.blocks,
        },
        elided,
    ))
}

/// Constant-pool dedup key (floats keyed by bit pattern).
#[derive(PartialEq, Eq, Hash)]
enum ConstKey {
    Int(i64),
    Float(u64),
    Str(String),
    Bool(bool),
    None,
}

#[derive(Default)]
struct Compiler {
    ops: Vec<Op>,
    consts: Vec<Const>,
    const_ids: HashMap<ConstKey, u16>,
    names: Vec<String>,
    name_ids: HashMap<String, u16>,
    calls: Vec<CallSpec>,
    slot_names: Vec<String>,
    slot_of: HashMap<String, u16>,
    loops: Vec<LoopInfo>,
    blocks: Vec<BlockInfo>,
    path: StmtPath,
    dead: HashSet<StmtPath>,
    elided: u32,
}

impl Compiler {
    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn here(&self) -> Result<u32, CompileError> {
        u32::try_from(self.ops.len())
            .map_err(|_| CompileError("program exceeds 2^32 instructions".into()))
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump(t)
            | Op::JumpIfFalse(t)
            | Op::AndJump(t)
            | Op::OrJump(t)
            | Op::ForIter { exit: t, .. } => *t = target,
            other => unreachable!("patching non-jump op {other:?}"),
        }
    }

    fn konst(&mut self, c: Const) -> Result<u16, CompileError> {
        let key = match &c {
            Const::Int(i) => ConstKey::Int(*i),
            Const::Float(f) => ConstKey::Float(f.to_bits()),
            Const::Str(s) => ConstKey::Str(s.clone()),
            Const::Bool(b) => ConstKey::Bool(*b),
            Const::None => ConstKey::None,
        };
        if let Some(&id) = self.const_ids.get(&key) {
            return Ok(id);
        }
        let id = u16::try_from(self.consts.len())
            .map_err(|_| CompileError("more than 2^16 constants".into()))?;
        self.consts.push(c);
        self.const_ids.insert(key, id);
        Ok(id)
    }

    fn name_id(&mut self, name: &str) -> Result<u16, CompileError> {
        if let Some(&id) = self.name_ids.get(name) {
            return Ok(id);
        }
        let id = u16::try_from(self.names.len())
            .map_err(|_| CompileError("more than 2^16 interned names".into()))?;
        self.names.push(name.to_string());
        self.name_ids.insert(name.to_string(), id);
        Ok(id)
    }

    fn slot(&mut self, name: &str) -> Result<u16, CompileError> {
        if let Some(&id) = self.slot_of.get(name) {
            return Ok(id);
        }
        let id = u16::try_from(self.slot_names.len())
            .map_err(|_| CompileError("more than 2^16 variables".into()))?;
        self.slot_names.push(name.to_string());
        self.slot_of.insert(name.to_string(), id);
        Ok(id)
    }

    fn fail(&mut self, message: String) -> Result<(), CompileError> {
        let id = self.name_id(&message)?;
        self.emit(Op::Fail(id));
        Ok(())
    }

    fn call_spec(&mut self, name: &str, args: &[Arg]) -> Result<u16, CompileError> {
        let name = self.name_id(name)?;
        let mut kws = Vec::with_capacity(args.len());
        for a in args {
            kws.push(match &a.name {
                Some(n) => Some(self.name_id(n)?),
                None => None,
            });
        }
        let id = u16::try_from(self.calls.len())
            .map_err(|_| CompileError("more than 2^16 call sites".into()))?;
        self.calls.push(CallSpec { name, args: kws });
        Ok(id)
    }

    fn body(&mut self, body: &[Stmt], slot: u32) -> Result<(), CompileError> {
        for (i, s) in body.iter().enumerate() {
            self.path.push(path_step(slot, i));
            if self.dead.contains(&self.path) {
                self.elided += stmt_count(s);
            } else {
                self.stmt(s)?;
            }
            self.path.pop();
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Import { .. } | Stmt::Pass => Ok(()),
            Stmt::Assign { targets, value } => {
                self.expr(value)?;
                if targets.len() == 1 {
                    self.store_target(&targets[0])
                } else {
                    let n = u16::try_from(targets.len())
                        .map_err(|_| CompileError("more than 2^16 assignment targets".into()))?;
                    self.emit(Op::Unpack(n));
                    for t in targets {
                        self.store_target(t)?;
                    }
                    Ok(())
                }
            }
            Stmt::ExprStmt { expr } => {
                self.expr(expr)?;
                self.emit(Op::Pop);
                Ok(())
            }
            Stmt::If { cond, then, orelse } => {
                self.expr(cond)?;
                let jf = self.emit(Op::JumpIfFalse(u32::MAX));
                self.body(then, 0)?;
                let j = self.emit(Op::Jump(u32::MAX));
                let else_at = self.here()?;
                self.patch(jf, else_at);
                self.body(orelse, 1)?;
                let end = self.here()?;
                self.patch(j, end);
                Ok(())
            }
            Stmt::SkipBlock { id, body } => {
                let bi = self.blocks.len();
                self.blocks.push(BlockInfo {
                    id: id.clone(),
                    body_start: 0,
                    body_end: 0,
                });
                let bi16 = u16::try_from(bi)
                    .map_err(|_| CompileError("more than 2^16 skipblocks".into()))?;
                self.emit(Op::SkipBlock(bi16));
                self.blocks[bi].body_start = self.ops.len();
                self.body(body, 0)?;
                self.blocks[bi].body_end = self.ops.len();
                Ok(())
            }
            Stmt::For { var, iter, body } => {
                // The main loop: `for v in flor.partition(inner):` — same
                // detection as the tree-walker's exec_stmt.
                if let Expr::Call { func, args } = iter {
                    if let Expr::Attr { obj, name } = func.as_ref() {
                        if name == "partition" && obj.as_name() == Some("flor") && args.len() == 1 {
                            return self.main_loop(var, &args[0].value, body);
                        }
                    }
                }
                self.expr(iter)?;
                self.emit(Op::GetIter);
                let head = self.here()?;
                let slot = self.slot(var)?;
                let fi = self.emit(Op::ForIter {
                    slot,
                    exit: u32::MAX,
                });
                self.body(body, 0)?;
                self.emit(Op::Jump(head));
                let exit = self.here()?;
                self.patch(fi, exit);
                Ok(())
            }
        }
    }

    fn main_loop(&mut self, var: &str, inner: &Expr, body: &[Stmt]) -> Result<(), CompileError> {
        self.expr(inner)?;
        let var_slot = self.slot(var)?;
        let li = self.loops.len();
        self.loops.push(LoopInfo {
            var_slot,
            body_start: 0,
            body_end: 0,
        });
        let li16 =
            u16::try_from(li).map_err(|_| CompileError("more than 2^16 main loops".into()))?;
        self.emit(Op::MainLoop(li16));
        self.loops[li].body_start = self.ops.len();
        self.body(body, 0)?;
        self.loops[li].body_end = self.ops.len();
        Ok(())
    }

    fn store_target(&mut self, target: &Expr) -> Result<(), CompileError> {
        match target {
            Expr::Name(n) => {
                let slot = self.slot(n)?;
                self.emit(Op::StoreSlot(slot));
                Ok(())
            }
            Expr::Attr { obj, name } => {
                self.expr(obj)?;
                let id = self.name_id(name)?;
                self.emit(Op::StoreAttr(id));
                Ok(())
            }
            Expr::Subscript { obj, index } => {
                self.expr(obj)?;
                self.expr(index)?;
                self.emit(Op::StoreIndex);
                Ok(())
            }
            other => self.fail(format!("invalid assignment target {other}")),
        }
    }

    /// Classifies a fusible leaf operand: a plain variable (slot) or a
    /// literal (constant-pool entry). `flor` is not a leaf — it loads
    /// the module sentinel through its own op. Interning here is
    /// idempotent with [`Self::expr`], so classifying an operand that
    /// ends up compiled discretely wastes nothing.
    fn leaf(&mut self, e: &Expr) -> Result<Option<Leaf>, CompileError> {
        Ok(match e {
            Expr::Int(i) => Some(Leaf::Const(self.konst(Const::Int(*i))?)),
            Expr::Float(f) => Some(Leaf::Const(self.konst(Const::Float(*f))?)),
            Expr::Str(s) => Some(Leaf::Const(self.konst(Const::Str(s.clone()))?)),
            Expr::Bool(b) => Some(Leaf::Const(self.konst(Const::Bool(*b))?)),
            Expr::NoneLit => Some(Leaf::Const(self.konst(Const::None)?)),
            Expr::Name(n) if n != "flor" => Some(Leaf::Slot(self.slot(n)?)),
            _ => None,
        })
    }

    fn expr(&mut self, expr: &Expr) -> Result<(), CompileError> {
        match expr {
            Expr::Int(i) => {
                let id = self.konst(Const::Int(*i))?;
                self.emit(Op::Const(id));
                Ok(())
            }
            Expr::Float(f) => {
                let id = self.konst(Const::Float(*f))?;
                self.emit(Op::Const(id));
                Ok(())
            }
            Expr::Str(s) => {
                let id = self.konst(Const::Str(s.clone()))?;
                self.emit(Op::Const(id));
                Ok(())
            }
            Expr::Bool(b) => {
                let id = self.konst(Const::Bool(*b))?;
                self.emit(Op::Const(id));
                Ok(())
            }
            Expr::NoneLit => {
                let id = self.konst(Const::None)?;
                self.emit(Op::Const(id));
                Ok(())
            }
            Expr::Name(n) => {
                // `flor` resolves to the module sentinel before any
                // binding — mirror the tree-walker's eval order.
                if n == "flor" {
                    self.emit(Op::LoadFlor);
                } else {
                    let slot = self.slot(n)?;
                    self.emit(Op::LoadSlot(slot));
                }
                Ok(())
            }
            Expr::List(items) => {
                for item in items {
                    self.expr(item)?;
                }
                let n = u16::try_from(items.len())
                    .map_err(|_| CompileError("more than 2^16 list items".into()))?;
                self.emit(Op::MakeList(n));
                Ok(())
            }
            Expr::Tuple(items) => {
                for item in items {
                    self.expr(item)?;
                }
                let n = u16::try_from(items.len())
                    .map_err(|_| CompileError("more than 2^16 tuple items".into()))?;
                self.emit(Op::MakeTuple(n));
                Ok(())
            }
            Expr::Unary { op, expr } => {
                self.expr(expr)?;
                self.emit(match op {
                    UnaryOp::Neg => Op::Neg,
                    UnaryOp::Not => Op::Not,
                });
                Ok(())
            }
            Expr::Bin { op, lhs, rhs } => match op {
                BinOp::And => {
                    self.expr(lhs)?;
                    let j = self.emit(Op::AndJump(u32::MAX));
                    self.expr(rhs)?;
                    let end = self.here()?;
                    self.patch(j, end);
                    Ok(())
                }
                BinOp::Or => {
                    self.expr(lhs)?;
                    let j = self.emit(Op::OrJump(u32::MAX));
                    self.expr(rhs)?;
                    let end = self.here()?;
                    self.patch(j, end);
                    Ok(())
                }
                _ => {
                    // Operand fusion: variable / literal leaves fold into
                    // the operator itself, skipping the operand stack.
                    // Leaves are side-effect free, so evaluation order —
                    // and the unbound-name error order — is unchanged.
                    match (self.leaf(lhs)?, self.leaf(rhs)?) {
                        (Some(Leaf::Slot(a)), Some(Leaf::Slot(b))) => {
                            self.emit(Op::BinSS { op: *op, a, b });
                        }
                        (Some(Leaf::Slot(a)), Some(Leaf::Const(c))) => {
                            self.emit(Op::BinSC { op: *op, a, c });
                        }
                        (Some(Leaf::Const(c)), Some(Leaf::Slot(b))) => {
                            self.emit(Op::BinCS { op: *op, c, b });
                        }
                        (Some(Leaf::Const(c)), Some(Leaf::Const(c2))) => {
                            self.emit(Op::Const(c));
                            self.emit(Op::BinTC { op: *op, c: c2 });
                        }
                        (None, Some(Leaf::Slot(b))) => {
                            self.expr(lhs)?;
                            self.emit(Op::BinTS { op: *op, b });
                        }
                        (None, Some(Leaf::Const(c))) => {
                            self.expr(lhs)?;
                            self.emit(Op::BinTC { op: *op, c });
                        }
                        (_, None) => {
                            self.expr(lhs)?;
                            self.expr(rhs)?;
                            self.emit(Op::Bin(*op));
                        }
                    }
                    Ok(())
                }
            },
            Expr::Subscript { obj, index } => {
                self.expr(obj)?;
                self.expr(index)?;
                self.emit(Op::Index);
                Ok(())
            }
            Expr::Attr { obj, name } => {
                self.expr(obj)?;
                let id = self.name_id(name)?;
                self.emit(Op::LoadAttr(id));
                Ok(())
            }
            Expr::Call { func, args } => self.call(func, args),
        }
    }

    fn call(&mut self, func: &Expr, args: &[Arg]) -> Result<(), CompileError> {
        // `log(...)` / `flor.log(...)` is the logging primitive
        // regardless of environment bindings — a static decision in the
        // tree-walker, so a static decision here.
        let is_flor_attr = |target: &str| -> bool {
            matches!(func, Expr::Attr { obj, name } if name == target && obj.as_name() == Some("flor"))
        };
        if matches!(func, Expr::Name(n) if n == "log") || is_flor_attr("log") {
            for a in args {
                self.expr(&a.value)?;
            }
            let n = u16::try_from(args.len())
                .map_err(|_| CompileError("more than 2^16 log arguments".into()))?;
            self.emit(Op::CallLog(n));
            return Ok(());
        }
        // `flor.partition` outside a for-header is the identity over its
        // first argument (only that argument is evaluated).
        if is_flor_attr("partition") {
            return match args.first() {
                Some(a) => self.expr(&a.value),
                None => self.fail("flor.partition requires an argument".into()),
            };
        }
        match func {
            Expr::Name(n) => {
                for a in args {
                    self.expr(&a.value)?;
                }
                let spec = self.call_spec(n, args)?;
                self.emit(Op::CallBuiltin(spec));
                Ok(())
            }
            Expr::Attr { obj, name } => {
                self.expr(obj)?;
                for a in args {
                    self.expr(&a.value)?;
                }
                let spec = self.call_spec(name, args)?;
                self.emit(Op::CallMethod(spec));
                Ok(())
            }
            // The tree-walker rejects a non-name, non-attribute callee
            // without evaluating anything — so no argument code here.
            other => self.fail(format!("cannot call {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use std::collections::HashSet;

    fn compile_src(src: &str) -> Module {
        compile(&parse(src).expect("parse")).expect("compile")
    }

    fn mnemonics(m: &Module) -> HashSet<&'static str> {
        m.ops.iter().map(|op| op.mnemonic()).collect()
    }

    #[test]
    fn literals_are_pooled_and_deduped() {
        let m = compile_src("x = 1\ny = 1\nz = 2.5\ns = \"hi\"\nt = \"hi\"\nb = True\nn = None\n");
        assert_eq!(
            m.consts,
            vec![
                Const::Int(1),
                Const::Float(2.5),
                Const::Str("hi".into()),
                Const::Bool(true),
                Const::None,
            ],
            "duplicate literals share one pool entry"
        );
    }

    #[test]
    fn names_resolve_to_stable_slots() {
        let m = compile_src("x = 1\ny = x\nx = y\n");
        assert_eq!(m.slot_names, vec!["x".to_string(), "y".to_string()]);
        assert_eq!(m.slot_of["x"], 0);
        assert_eq!(m.slot_of["y"], 1);
        assert_eq!(
            m.ops,
            vec![
                Op::Const(0),
                Op::StoreSlot(0),
                Op::LoadSlot(0),
                Op::StoreSlot(1),
                Op::LoadSlot(1),
                Op::StoreSlot(0),
            ]
        );
    }

    #[test]
    fn flor_name_compiles_to_sentinel_load() {
        let m = compile_src("x = flor\nflor = 1\n");
        assert!(m.ops.contains(&Op::LoadFlor), "loads use the sentinel");
        // Stores still get a slot (dead, like the tree-walker's env entry).
        assert!(m.slot_of.contains_key("flor"));
    }

    #[test]
    fn if_else_compiles_to_jumps() {
        let m = compile_src("if x > 1:\n    y = 1\nelse:\n    y = 2\n");
        // x > 1 fuses to one op: BinSC, JumpIfFalse(else), 1, store,
        // Jump(end), else: 2, store
        assert!(matches!(m.ops[0], Op::BinSC { op: BinOp::Gt, .. }));
        assert_eq!(m.ops[1], Op::JumpIfFalse(5));
        assert_eq!(m.ops[4], Op::Jump(7));
        assert_eq!(m.ops.len(), 7);
    }

    #[test]
    fn and_or_compile_to_short_circuit_jumps() {
        let m = compile_src("x = a and b\ny = a or b\n");
        let mn = mnemonics(&m);
        assert!(mn.contains("and-jump") && mn.contains("or-jump"));
        assert!(
            !m.ops
                .iter()
                .any(|op| matches!(op, Op::Bin(BinOp::And) | Op::Bin(BinOp::Or))),
            "short-circuit ops never compile to Bin"
        );
    }

    #[test]
    fn plain_for_compiles_to_iter_frame_loop() {
        let m = compile_src("for i in xs:\n    y = i\n");
        // LoadSlot(xs), GetIter, ForIter, LoadSlot(i), StoreSlot(y), Jump(head)
        assert_eq!(m.ops[1], Op::GetIter);
        let slot_i = m.slot_of["i"];
        assert_eq!(
            m.ops[2],
            Op::ForIter {
                slot: slot_i,
                exit: 6
            }
        );
        assert_eq!(m.ops[5], Op::Jump(2));
    }

    #[test]
    fn main_loop_records_body_range() {
        let m = compile_src("for epoch in flor.partition(range(3)):\n    log(\"e\", epoch)\n");
        assert_eq!(m.loops.len(), 1);
        let li = m.loops[0];
        assert_eq!(li.var_slot, m.slot_of["epoch"]);
        // range(3), MainLoop, [body: "e", epoch, CallLog, Pop]
        assert!(matches!(m.ops[li.body_start - 1], Op::MainLoop(0)));
        assert_eq!(li.body_end, m.ops.len());
        assert!(mnemonics(&m).contains("call-log"));
    }

    #[test]
    fn skipblock_records_body_range() {
        let prog = Program::new(vec![Stmt::SkipBlock {
            id: "sb1".into(),
            body: vec![Stmt::Assign {
                targets: vec![Expr::name("x")],
                value: Expr::Int(1),
            }],
        }]);
        let m = compile(&prog).expect("compile");
        assert_eq!(m.blocks.len(), 1);
        assert_eq!(m.blocks[0].id, "sb1");
        assert!(matches!(
            m.ops[m.blocks[0].body_start - 1],
            Op::SkipBlock(0)
        ));
        assert_eq!(m.blocks[0].body_end, m.ops.len());
    }

    #[test]
    fn calls_preserve_argument_order_and_keywords() {
        let m = compile_src("net = mlp(4, hidden=6)\nloss = net.forward(batch)\n");
        assert_eq!(m.calls.len(), 2);
        let mlp = &m.calls[0];
        assert_eq!(m.names[mlp.name as usize], "mlp");
        assert_eq!(mlp.args.len(), 2);
        assert!(mlp.args[0].is_none());
        assert_eq!(m.names[mlp.args[1].unwrap() as usize], "hidden");
        let fwd = &m.calls[1];
        assert_eq!(m.names[fwd.name as usize], "forward");
        let mn = mnemonics(&m);
        assert!(mn.contains("call-builtin") && mn.contains("call-method"));
    }

    #[test]
    fn partition_outside_for_header_is_identity_over_first_arg() {
        let m = compile_src("x = flor.partition(xs)\n");
        assert_eq!(
            m.ops,
            vec![Op::LoadSlot(0), Op::StoreSlot(1)],
            "identity: just the inner expression"
        );
    }

    #[test]
    fn uncallable_callee_compiles_to_fail_without_arg_code() {
        let prog = Program::new(vec![Stmt::ExprStmt {
            expr: Expr::Call {
                func: Box::new(Expr::Int(3)),
                args: vec![Arg::pos(Expr::name("x"))],
            },
        }]);
        let m = compile(&prog).expect("compile");
        assert!(matches!(m.ops[0], Op::Fail(_)));
        assert_eq!(m.names[0], "cannot call 3");
        assert!(
            !m.ops.iter().any(|op| matches!(op, Op::LoadSlot(_))),
            "arguments are not evaluated for an uncallable callee"
        );
    }

    #[test]
    fn invalid_assignment_target_compiles_to_fail_after_value() {
        let prog = Program::new(vec![Stmt::Assign {
            targets: vec![Expr::Int(3)],
            value: Expr::name("x"),
        }]);
        let m = compile(&prog).expect("compile");
        assert!(matches!(m.ops[0], Op::LoadSlot(_)), "value evaluates first");
        assert!(matches!(m.ops[1], Op::Fail(_)));
        assert_eq!(m.names[0], "invalid assignment target 3");
    }

    #[test]
    fn multi_assign_unpacks_then_stores_in_order() {
        let m = compile_src("a, b = xs\nys[0] = a\nnet.lr = b\n");
        let mn = mnemonics(&m);
        for op in ["unpack", "store-index", "store-attr", "index"] {
            assert!(mn.contains(op) || op == "index", "{op} present");
        }
        assert!(m.ops.contains(&Op::Unpack(2)));
    }

    #[test]
    fn subscript_and_attr_loads() {
        let m = compile_src("x = xs[0]\ny = net.lr\nz = -x\nw = not y\nl = [1, 2]\nt = (1, 2)\n");
        let mn = mnemonics(&m);
        for op in [
            "index",
            "load-attr",
            "neg",
            "not",
            "make-list",
            "make-tuple",
        ] {
            assert!(mn.contains(op), "{op} present");
        }
    }

    #[test]
    fn opcode_coverage_every_op_constructed_by_compiler_tests() {
        // Union of the ops produced across representative programs; the
        // CI quick gate runs this test so a new Op variant without
        // compiler coverage fails the build.
        let mut seen: HashSet<&'static str> = HashSet::new();
        let sources = [
            "x = 1\ny = 2.5\ns = \"hi\"\nb = True\nn = None\nz = x + y\nq = x < 2 and b or not b\nw = -x\n",
            "xs = [1, 2, 3]\nt = (1, 2)\na, b = t\nxs[0] = a\nfirst = xs[0]\n",
            "if x > 1:\n    y = 1\nelse:\n    y = 2\n",
            "for i in xs:\n    log(\"i\", i)\n",
            "for epoch in flor.partition(range(3)):\n    log(\"e\", epoch)\n",
            "net = mlp(4, hidden=6)\nnet.lr = 0.5\nlr = net.lr\nloss = net.forward(batch)\nm = flor\n",
            // Every fused-operand shape plus the unfused fallback:
            // slot∘slot, slot∘const, const∘slot, stack∘slot, stack∘const,
            // and a compound∘compound that stays a raw `bin`.
            "a = x + y\nb = x + 1\nc = 1 + x\nd = (x + y) * x\ne = (x + y) * 2\nf = (x + y) * (x - y)\n",
        ];
        for src in sources {
            seen.extend(mnemonics(&compile_src(src)));
        }
        let skipblock = Program::new(vec![Stmt::SkipBlock {
            id: "sb".into(),
            body: vec![Stmt::Pass],
        }]);
        seen.extend(
            compile(&skipblock)
                .expect("compile")
                .ops
                .iter()
                .map(|op| op.mnemonic()),
        );
        let fail = Program::new(vec![Stmt::ExprStmt {
            expr: Expr::Call {
                func: Box::new(Expr::Int(1)),
                args: vec![],
            },
        }]);
        seen.extend(
            compile(&fail)
                .expect("compile")
                .ops
                .iter()
                .map(|op| op.mnemonic()),
        );
        let missing: Vec<_> = Op::MNEMONICS
            .iter()
            .filter(|m| !seen.contains(**m))
            .collect();
        assert!(
            missing.is_empty(),
            "ops never constructed by compiler tests: {missing:?}"
        );
    }

    #[test]
    fn compile_is_deterministic() {
        let src =
            "x = 1\nfor epoch in flor.partition(range(4)):\n    x = x + epoch\n    log(\"x\", x)\n";
        let a = compile_src(src);
        let b = compile_src(src);
        assert_eq!(a, b);
    }

    const SLICE_SRC: &str = "import flor\n\
        base = 1\n\
        for epoch in flor.partition(range(4)):\n\
        \x20   waste = busy(3)\n\
        \x20   x = base + epoch\n\
        \x20   if epoch > 2:\n\
        \x20       extra = busy(1)\n\
        \x20   log(\"x\", x)\n\
        done = x\n";

    // Paths of `waste = busy(3)` and the whole `if epoch > 2:` subtree.
    fn slice_dead() -> HashSet<StmtPath> {
        let for_path = path_step(0, 2);
        let mut dead = HashSet::new();
        dead.insert(vec![for_path, path_step(0, 0)]);
        dead.insert(vec![for_path, path_step(0, 2)]);
        dead
    }

    #[test]
    fn compile_sliced_matches_compiling_the_pruned_tree() {
        let prog = parse(SLICE_SRC).expect("parse");
        let dead = slice_dead();
        let (sliced, elided) = compile_sliced(&prog, &dead).expect("compile_sliced");
        assert_eq!(elided, 3, "waste + if + its body");
        let pruned = prune_program(&prog, &dead);
        assert_eq!(sliced, compile(&pruned).expect("compile pruned"));
        let full = compile(&prog).expect("compile full");
        assert!(sliced.ops.len() < full.ops.len());
        assert!(
            !sliced.slot_of.contains_key("waste"),
            "dead slots not interned"
        );
    }

    #[test]
    fn compile_sliced_with_empty_dead_set_is_plain_compile() {
        let prog = parse(SLICE_SRC).expect("parse");
        let (m, elided) = compile_sliced(&prog, &HashSet::new()).expect("compile_sliced");
        assert_eq!(elided, 0);
        assert_eq!(m, compile(&prog).expect("compile"));
    }

    #[test]
    fn prune_keeps_emptied_bodies_printable() {
        let prog = parse("if x > 1:\n    y = 2\nelse:\n    z = 3\n").expect("parse");
        let mut dead = HashSet::new();
        dead.insert(vec![path_step(0, 0), path_step(0, 0)]); // then body
        let pruned = prune_program(&prog, &dead);
        let printed = crate::print_program(&pruned);
        assert!(
            printed.contains("pass"),
            "emptied branch prints as pass: {printed}"
        );
        // pass lowers to nothing: module equality with in-place elision.
        let (sliced, _) = compile_sliced(&prog, &dead).expect("compile_sliced");
        assert_eq!(sliced, compile(&pruned).expect("compile pruned"));
        // Round-trips through the parser.
        crate::parse(&printed).expect("pruned program re-parses");
    }
}
