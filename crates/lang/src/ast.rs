//! The FlorScript abstract syntax tree.

use std::fmt;

/// A parsed FlorScript program: a list of top-level statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level statements in source order.
    pub body: Vec<Stmt>,
}

impl Program {
    /// A program from a statement list.
    pub fn new(body: Vec<Stmt>) -> Self {
        Program { body }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl BinOp {
    /// Source form of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `not`
    Not,
}

/// A call argument: positional or keyword (`lr=0.1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Arg {
    /// Keyword name, if this is a keyword argument.
    pub name: Option<String>,
    /// Argument value.
    pub value: Expr,
}

impl Arg {
    /// Positional argument.
    pub fn pos(value: Expr) -> Self {
        Arg { name: None, value }
    }

    /// Keyword argument.
    pub fn kw(name: impl Into<String>, value: Expr) -> Self {
        Arg {
            name: Some(name.into()),
            value,
        }
    }
}

/// FlorScript expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable reference.
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `None`.
    NoneLit,
    /// Attribute access `obj.name`.
    Attr {
        /// Receiver.
        obj: Box<Expr>,
        /// Attribute name.
        name: String,
    },
    /// Function or method call `f(a, b=c)`.
    Call {
        /// Callee (a [`Expr::Name`] for functions, [`Expr::Attr`] for
        /// methods).
        func: Box<Expr>,
        /// Arguments.
        args: Vec<Arg>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Subscript `obj[index]`.
    Subscript {
        /// Receiver.
        obj: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// List literal `[a, b]`.
    List(Vec<Expr>),
    /// Tuple `a, b` (parenthesized or bare on assignment RHS).
    Tuple(Vec<Expr>),
}

impl Expr {
    /// Builds `Expr::Name`.
    pub fn name(n: impl Into<String>) -> Self {
        Expr::Name(n.into())
    }

    /// Builds an attribute access.
    pub fn attr(obj: Expr, name: impl Into<String>) -> Self {
        Expr::Attr {
            obj: Box::new(obj),
            name: name.into(),
        }
    }

    /// Builds a call.
    pub fn call(func: Expr, args: Vec<Arg>) -> Self {
        Expr::Call {
            func: Box::new(func),
            args,
        }
    }

    /// If this expression is a plain name, returns it.
    pub fn as_name(&self) -> Option<&str> {
        match self {
            Expr::Name(n) => Some(n),
            _ => None,
        }
    }

    /// The *root name* of an attribute/subscript chain:
    /// `optimizer.state[0].lr` → `optimizer`. Used by the side-effect
    /// analysis, which tracks whole objects.
    pub fn root_name(&self) -> Option<&str> {
        match self {
            Expr::Name(n) => Some(n),
            Expr::Attr { obj, .. } => obj.root_name(),
            Expr::Subscript { obj, .. } => obj.root_name(),
            _ => None,
        }
    }
}

/// FlorScript statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `import flor` (and friends).
    Import {
        /// Module name.
        module: String,
    },
    /// Assignment, possibly multi-target: `v1, v2 = expr`.
    Assign {
        /// Assignment targets (names, attributes, or subscripts).
        targets: Vec<Expr>,
        /// Right-hand side.
        value: Expr,
    },
    /// Bare expression statement (typically a call).
    ExprStmt {
        /// The expression.
        expr: Expr,
    },
    /// `for var in iter:` loop.
    For {
        /// Loop variable.
        var: String,
        /// Iterated expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if cond:` / `else:`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch body.
        then: Vec<Stmt>,
        /// Else-branch body (possibly empty).
        orelse: Vec<Stmt>,
    },
    /// A SkipBlock wrapping a loop — produced by Flor instrumentation
    /// (paper §4.2), printed as `skipblock "id":`.
    SkipBlock {
        /// Static identifier of this block (stable across runs).
        id: String,
        /// Enclosed statements (in practice, exactly one loop).
        body: Vec<Stmt>,
    },
    /// `pass`.
    Pass,
}

impl Stmt {
    /// True if this statement is a *log statement* — the hindsight probe
    /// form: a bare call to `log(...)` or `flor.log(...)`.
    pub fn is_log_stmt(&self) -> bool {
        match self {
            Stmt::ExprStmt {
                expr: Expr::Call { func, .. },
            } => match func.as_ref() {
                Expr::Name(n) => n == "log",
                Expr::Attr { obj, name } => name == "log" && obj.as_name() == Some("flor"),
                _ => false,
            },
            _ => false,
        }
    }

    /// True if this statement carries a nested body.
    pub fn has_body(&self) -> bool {
        matches!(
            self,
            Stmt::For { .. } | Stmt::If { .. } | Stmt::SkipBlock { .. }
        )
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::printer::print_expr(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_name_walks_chains() {
        // optimizer.state[0].lr
        let e = Expr::attr(
            Expr::Subscript {
                obj: Box::new(Expr::attr(Expr::name("optimizer"), "state")),
                index: Box::new(Expr::Int(0)),
            },
            "lr",
        );
        assert_eq!(e.root_name(), Some("optimizer"));
        assert_eq!(Expr::Int(3).root_name(), None);
    }

    #[test]
    fn log_stmt_recognition() {
        let log = Stmt::ExprStmt {
            expr: Expr::call(Expr::name("log"), vec![Arg::pos(Expr::Str("x".into()))]),
        };
        assert!(log.is_log_stmt());

        let flor_log = Stmt::ExprStmt {
            expr: Expr::call(
                Expr::attr(Expr::name("flor"), "log"),
                vec![Arg::pos(Expr::Int(1))],
            ),
        };
        assert!(flor_log.is_log_stmt());

        let other = Stmt::ExprStmt {
            expr: Expr::call(Expr::name("print"), vec![]),
        };
        assert!(!other.is_log_stmt());

        let method = Stmt::ExprStmt {
            expr: Expr::call(Expr::attr(Expr::name("logger"), "log"), vec![]),
        };
        assert!(!method.is_log_stmt(), "only flor.log counts");
    }

    #[test]
    fn has_body_matches_container_statements() {
        assert!(Stmt::For {
            var: "i".into(),
            iter: Expr::Int(1),
            body: vec![]
        }
        .has_body());
        assert!(!Stmt::Pass.has_body());
    }
}
