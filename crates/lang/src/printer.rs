//! Canonical pretty-printer: the inverse of the parser.
//!
//! Flor stores a copy of the (instrumented) source at record time and diffs
//! it against the source at replay time. For that diff to be meaningful the
//! printer must be *canonical*: `print(parse(print(ast))) == print(ast)`,
//! and parsing printed output must reproduce the AST exactly (verified by a
//! property test in this module).

use crate::ast::{Arg, BinOp, Expr, Program, Stmt, UnaryOp};
use std::fmt::Write;

const INDENT: &str = "    ";

/// Pretty-prints a whole program with 4-space indentation and a trailing
/// newline.
pub fn print_program(prog: &Program) -> String {
    let mut out = String::new();
    for stmt in &prog.body {
        print_stmt(stmt, 0, &mut out);
    }
    out
}

/// Pretty-prints a single statement at the given indent depth (with trailing
/// newline).
pub fn print_stmt_at(stmt: &Stmt, depth: usize) -> String {
    let mut out = String::new();
    print_stmt(stmt, depth, &mut out);
    out
}

fn print_stmt(stmt: &Stmt, depth: usize, out: &mut String) {
    let pad = INDENT.repeat(depth);
    match stmt {
        Stmt::Import { module } => {
            let _ = writeln!(out, "{pad}import {module}");
        }
        Stmt::Assign { targets, value } => {
            let t = targets
                .iter()
                .map(print_expr)
                .collect::<Vec<_>>()
                .join(", ");
            // Bare tuple on the RHS prints without parens (Python style).
            let v = match value {
                Expr::Tuple(items) if !items.is_empty() => {
                    items.iter().map(print_expr).collect::<Vec<_>>().join(", ")
                }
                other => print_expr(other),
            };
            let _ = writeln!(out, "{pad}{t} = {v}");
        }
        Stmt::ExprStmt { expr } => {
            let _ = writeln!(out, "{pad}{}", print_expr(expr));
        }
        Stmt::For { var, iter, body } => {
            let _ = writeln!(out, "{pad}for {var} in {}:", print_expr(iter));
            for s in body {
                print_stmt(s, depth + 1, out);
            }
        }
        Stmt::If { cond, then, orelse } => {
            let _ = writeln!(out, "{pad}if {}:", print_expr(cond));
            for s in then {
                print_stmt(s, depth + 1, out);
            }
            if !orelse.is_empty() {
                let _ = writeln!(out, "{pad}else:");
                for s in orelse {
                    print_stmt(s, depth + 1, out);
                }
            }
        }
        Stmt::SkipBlock { id, body } => {
            let _ = writeln!(out, "{pad}skipblock {}:", quote(id));
            for s in body {
                print_stmt(s, depth + 1, out);
            }
        }
        Stmt::Pass => {
            let _ = writeln!(out, "{pad}pass");
        }
    }
}

/// Pretty-prints an expression (fully parenthesizing nested binary
/// operations where needed for re-parse fidelity).
pub fn print_expr(expr: &Expr) -> String {
    print_prec(expr, 0)
}

/// Operator precedence levels, matching the parser's grammar.
fn prec_of(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
    }
}

fn print_prec(expr: &Expr, min_prec: u8) -> String {
    match expr {
        Expr::Name(n) => n.clone(),
        Expr::Int(i) => i.to_string(),
        Expr::Float(x) => {
            // Keep the text a float so the re-parse yields Float, not Int.
            let s = format!("{x}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Str(s) => quote(s),
        Expr::Bool(true) => "True".into(),
        Expr::Bool(false) => "False".into(),
        Expr::NoneLit => "None".into(),
        Expr::Attr { obj, name } => format!("{}.{name}", print_prec(obj, 7)),
        Expr::Call { func, args } => {
            let a = args
                .iter()
                .map(|Arg { name, value }| match name {
                    Some(n) => format!("{n}={}", print_expr(value)),
                    None => print_expr(value),
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("{}({a})", print_prec(func, 7))
        }
        Expr::Subscript { obj, index } => {
            format!("{}[{}]", print_prec(obj, 7), print_expr(index))
        }
        Expr::List(items) => {
            let a = items.iter().map(print_expr).collect::<Vec<_>>().join(", ");
            format!("[{a}]")
        }
        Expr::Tuple(items) => {
            let a = items.iter().map(print_expr).collect::<Vec<_>>().join(", ");
            format!("({a})")
        }
        Expr::Unary { op, expr } => {
            let inner = print_prec(expr, 6);
            let s = match op {
                UnaryOp::Neg => format!("-{inner}"),
                UnaryOp::Not => format!("not {inner}"),
            };
            if min_prec > 5 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Bin { op, lhs, rhs } => {
            let p = prec_of(*op);
            // Left-associative: the rhs needs strictly higher precedence.
            let s = format!(
                "{} {} {}",
                print_prec(lhs, p),
                op.as_str(),
                print_prec(rhs, p + 1)
            );
            if p < min_prec {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let prog = parse(src).expect("initial parse");
        let printed = print_program(&prog);
        let reparsed =
            parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed}"));
        assert_eq!(prog, reparsed, "roundtrip mismatch for:\n{printed}");
        // Printing again must be a fixed point.
        assert_eq!(printed, print_program(&reparsed));
    }

    #[test]
    fn roundtrip_basics() {
        roundtrip("import flor\nx = 1\ny = x + 2 * 3\n");
    }

    #[test]
    fn roundtrip_precedence() {
        roundtrip("z = (1 + 2) * 3\n");
        roundtrip("z = 1 + 2 * 3 - 4 / 5\n");
        roundtrip("z = -x * 2\n");
        roundtrip("z = 1 - (2 - 3)\n");
        roundtrip("ok = a and b or not c\n");
        roundtrip("ok = (a or b) and c\n");
    }

    #[test]
    fn roundtrip_calls_and_chains() {
        roundtrip("v = net.layers[0].weight.norm()\n");
        roundtrip("opt = sgd(net, lr=0.1, momentum=0.9)\n");
        roundtrip("loss, preds = net.eval(batch)\n");
    }

    #[test]
    fn roundtrip_blocks() {
        roundtrip(
            "for e in range(10):\n    for b in loader:\n        net.step(b)\n    sched.step()\n",
        );
        roundtrip("if x > 1:\n    y = 1\nelse:\n    y = 2\n");
        roundtrip("skipblock \"sb_0\":\n    for b in loader:\n        net.step(b)\n");
    }

    #[test]
    fn roundtrip_literals() {
        roundtrip("a = 1.5\nb = \"hi\\n\"\nc = True\nd = None\ne = [1, 2]\nf = (1, 2)\n");
        roundtrip("g = 2.0\n"); // float that formats without a dot
    }

    #[test]
    fn float_prints_as_float() {
        let prog = parse("x = 2.0\n").unwrap();
        assert_eq!(print_program(&prog), "x = 2.0\n");
    }

    #[test]
    fn subtraction_is_left_associative() {
        let prog = parse("x = 1 - 2 - 3\n").unwrap();
        // (1 - 2) - 3 needs no parens.
        assert_eq!(print_program(&prog), "x = 1 - 2 - 3\n");
        let prog2 = parse("x = 1 - (2 - 3)\n").unwrap();
        assert_eq!(print_program(&prog2), "x = 1 - (2 - 3)\n");
        assert_ne!(print_program(&prog), print_program(&prog2));
    }

    #[test]
    fn bare_tuple_assignment_prints_bare() {
        let prog = parse("a, b = 1, 2\n").unwrap();
        assert_eq!(print_program(&prog), "a, b = 1, 2\n");
    }
}
