//! Plain line diff (longest-common-subsequence based).
//!
//! Two uses in Flor:
//! 1. human-readable source diffs in replay reports,
//! 2. the **deferred correctness check** (paper §5.2.2): "at the end of
//!    replay, we run `diff`, and warn the user if the replay logs differ from
//!    the record logs in any way other than the statements added for
//!    hindsight logging."

/// A single diff operation over lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOp {
    /// Line present in both sequences.
    Equal(String),
    /// Line only in the new sequence.
    Insert(String),
    /// Line only in the old sequence.
    Delete(String),
}

/// Computes a line diff from `old` to `new`.
///
/// Uses dynamic-programming LCS; inputs in this codebase (scripts and log
/// streams) are at most a few thousand lines.
pub fn diff_lines(old: &str, new: &str) -> Vec<DiffOp> {
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();
    let (n, m) = (a.len(), b.len());

    // lcs[i][j] = LCS length of a[i..] and b[j..]
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }

    let mut ops = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.push(DiffOp::Equal(a[i].to_string()));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            ops.push(DiffOp::Delete(a[i].to_string()));
            i += 1;
        } else {
            ops.push(DiffOp::Insert(b[j].to_string()));
            j += 1;
        }
    }
    while i < n {
        ops.push(DiffOp::Delete(a[i].to_string()));
        i += 1;
    }
    while j < m {
        ops.push(DiffOp::Insert(b[j].to_string()));
        j += 1;
    }
    ops
}

/// Renders a diff in unified-ish format (` `, `+`, `-` prefixes).
pub fn render(ops: &[DiffOp]) -> String {
    let mut out = String::new();
    for op in ops {
        match op {
            DiffOp::Equal(l) => {
                out.push_str("  ");
                out.push_str(l);
            }
            DiffOp::Insert(l) => {
                out.push_str("+ ");
                out.push_str(l);
            }
            DiffOp::Delete(l) => {
                out.push_str("- ");
                out.push_str(l);
            }
        }
        out.push('\n');
    }
    out
}

/// True if the diff contains no insertions or deletions.
pub fn is_identical(ops: &[DiffOp]) -> bool {
    ops.iter().all(|op| matches!(op, DiffOp::Equal(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs() {
        let ops = diff_lines("a\nb\n", "a\nb\n");
        assert!(is_identical(&ops));
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn pure_insertion() {
        let ops = diff_lines("a\nc\n", "a\nb\nc\n");
        assert_eq!(
            ops,
            vec![
                DiffOp::Equal("a".into()),
                DiffOp::Insert("b".into()),
                DiffOp::Equal("c".into()),
            ]
        );
    }

    #[test]
    fn pure_deletion() {
        let ops = diff_lines("a\nb\nc\n", "a\nc\n");
        assert_eq!(
            ops,
            vec![
                DiffOp::Equal("a".into()),
                DiffOp::Delete("b".into()),
                DiffOp::Equal("c".into()),
            ]
        );
    }

    #[test]
    fn replacement_is_delete_plus_insert() {
        let ops = diff_lines("x\n", "y\n");
        assert_eq!(
            ops.iter()
                .filter(|o| !matches!(o, DiffOp::Equal(_)))
                .count(),
            2
        );
    }

    #[test]
    fn empty_inputs() {
        assert!(diff_lines("", "").is_empty());
        assert_eq!(diff_lines("", "a\n"), vec![DiffOp::Insert("a".into())]);
        assert_eq!(diff_lines("a\n", ""), vec![DiffOp::Delete("a".into())]);
    }

    #[test]
    fn render_prefixes() {
        let out = render(&[
            DiffOp::Equal("same".into()),
            DiffOp::Insert("new".into()),
            DiffOp::Delete("gone".into()),
        ]);
        assert_eq!(out, "  same\n+ new\n- gone\n");
    }

    #[test]
    fn diff_preserves_both_sides() {
        // Every old line appears as Equal or Delete; every new line as Equal
        // or Insert.
        let old = "a\nb\nc\nd\n";
        let new = "b\nx\nd\ny\n";
        let ops = diff_lines(old, new);
        let olds: Vec<&str> = ops
            .iter()
            .filter_map(|o| match o {
                DiffOp::Equal(l) | DiffOp::Delete(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        let news: Vec<&str> = ops
            .iter()
            .filter_map(|o| match o {
                DiffOp::Equal(l) | DiffOp::Insert(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(olds, vec!["a", "b", "c", "d"]);
        assert_eq!(news, vec!["b", "x", "d", "y"]);
    }
}
