//! # flor-lang
//!
//! **FlorScript**: a small, Python-like training-script language — the
//! stand-in for Python source code in the flor-rs reproduction of *Hindsight
//! Logging for Model Training* (Garcia et al., VLDB 2020).
//!
//! Flor's record phase works by statically analyzing and instrumenting the
//! user's *source code* (paper §5.2), and its replay phase detects hindsight
//! probes by *diffing source versions* (§3.2, Figure 1: "Flor diffs the
//! current version of the source code with the version saved at record").
//! Reproducing those mechanisms requires an analyzable source language;
//! FlorScript keeps exactly the statement forms that Table 1's side-effect
//! rules pattern-match on:
//!
//! ```text
//! import flor                      # the paper's one-line opt-in
//! net = resnet(hidden=16)         # rule 2: v = func(args)
//! loss, preds = net.eval(batch)   # rule 1: v1..vn = obj.method(args)
//! lr = 0.1                        # rule 3: v1..vn = u1..um
//! optimizer.step()                # rule 4: obj.method(args)
//! shutil.rmtree(path)             # rule 5: func(args) — side effects!
//! for epoch in range(200):        # loops, the unit of checkpointing
//!     log("loss", loss)           # the log statement — a hindsight probe
//! ```
//!
//! The crate provides:
//! - [`lexer`]: indentation-aware tokenizer (INDENT/DEDENT, Python style),
//! - [`parser`]: recursive-descent parser to the [`ast`] types,
//! - [`printer`]: canonical pretty-printer (parse ∘ print = identity),
//! - [`differ`]: structural AST diff that classifies changes into *probes*
//!   (added log statements, keyed by enclosing SkipBlock) versus *other
//!   changes* (which invalidate checkpoint reuse),
//! - [`compile`]: bytecode compiler lowering a program to the flat
//!   instruction stream `flor-core`'s replay VM executes (constant pool,
//!   slot-resolved variables, jump-based control flow),
//! - [`textdiff`]: a plain line diff used for human-readable reports and by
//!   Flor's deferred correctness checks over log streams.

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod differ;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod textdiff;

pub use ast::{Arg, BinOp, Expr, Program, Stmt, UnaryOp};
pub use compile::{
    compile, compile_sliced, path_step, prune_program, stmt_count, CompileError, Module, Op,
    StmtPath,
};
pub use differ::{diff_programs, DiffReport, ProbeSite};
pub use parser::{parse, ParseError};
pub use printer::print_program;

/// Parses source text, returning the program or a parse error.
///
/// Convenience alias for [`parser::parse`].
pub fn parse_source(src: &str) -> Result<Program, ParseError> {
    parser::parse(src)
}
