//! Stateful loss objects (mirroring `criterion = nn.CrossEntropyLoss()` in
//! the paper's PyTorch figures).

use flor_tensor::{ops, Tensor};

/// Cross-entropy loss over logits and integer class targets.
///
/// `forward` caches the softmax probabilities and targets; `backward`
/// produces the logits gradient to feed into the model's backward pass.
pub struct CrossEntropyLoss {
    cached: Option<(Tensor, Vec<usize>)>,
}

impl CrossEntropyLoss {
    /// New loss object.
    pub fn new() -> Self {
        CrossEntropyLoss { cached: None }
    }

    /// Computes the mean cross-entropy of `logits` against `targets`.
    pub fn forward(&mut self, logits: &Tensor, targets: &[usize]) -> f32 {
        let (loss, probs) = ops::cross_entropy(logits, targets);
        self.cached = Some((probs, targets.to_vec()));
        loss
    }

    /// Gradient of the last `forward` with respect to its logits.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self) -> Tensor {
        let (probs, targets) = self
            .cached
            .as_ref()
            .expect("CrossEntropyLoss::backward called before forward");
        ops::cross_entropy_backward(probs, targets)
    }
}

impl Default for CrossEntropyLoss {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_then_backward() {
        let mut loss = CrossEntropyLoss::new();
        let logits = Tensor::new([2, 2], vec![2.0, 0.0, 0.0, 2.0]);
        let l = loss.forward(&logits, &[0, 1]);
        assert!(l > 0.0 && l < 0.2, "confident correct predictions: {l}");
        let g = loss.backward();
        assert_eq!(g.shape().dims(), &[2, 2]);
        // Gradient pushes the correct logit up (negative gradient).
        assert!(g.data()[0] < 0.0);
        assert!(g.data()[3] < 0.0);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_without_forward_panics() {
        CrossEntropyLoss::new().backward();
    }
}
