//! Parameters, the layer container, and `state_dict`-style checkpointing.

use crate::layer::Layer;
use flor_tensor::Tensor;

/// A trainable (or frozen) parameter: a value tensor, its gradient
/// accumulator, and a name used in state dicts.
///
/// `frozen` parameters participate in the forward pass but receive no
/// gradient and are skipped by optimizers. Fine-tuning workloads (paper
/// Table 3: RTE, CoLA) freeze "the vast majority of weights" (§5.3.4) —
/// which is precisely what makes their checkpoints enormous relative to
/// their per-epoch compute, triggering Flor's periodic (sparse) adaptive
/// checkpointing.
#[derive(Debug, Clone)]
pub struct Param {
    /// Name of this parameter within its layer (e.g. `"weight"`, `"bias"`).
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the latest backward pass.
    pub grad: Tensor,
    /// Frozen parameters are excluded from optimization.
    pub frozen: bool,
}

impl Param {
    /// Creates a trainable parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Param {
            name: name.into(),
            value,
            grad,
            frozen: false,
        }
    }

    /// Creates a frozen parameter (kept in checkpoints, never optimized).
    pub fn frozen(name: impl Into<String>, value: Tensor) -> Self {
        let mut p = Self::new(name, value);
        p.frozen = true;
        p
    }

    /// Zeroes the gradient accumulator (the `optimizer.zero_grad()` step).
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }
}

/// A named, ordered collection of tensors — the checkpointable snapshot of a
/// model, optimizer, or scheduler.
///
/// The ordering is deterministic (layer order, then parameter order), so
/// a `StateDict` round-trips byte-identically, which Flor's deferred
/// correctness checks rely on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StateDict {
    entries: Vec<(String, Tensor)>,
}

impl StateDict {
    /// Creates an empty state dict.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry. Names must be unique.
    ///
    /// # Panics
    /// Panics on a duplicate name.
    pub fn insert(&mut self, name: impl Into<String>, value: Tensor) {
        let name = name.into();
        assert!(
            !self.entries.iter().any(|(n, _)| *n == name),
            "duplicate state dict entry {name:?}"
        );
        self.entries.push((name, value));
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dict is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of f32 elements across all entries (the checkpoint
    /// "weight" of this object).
    pub fn numel(&self) -> usize {
        self.entries.iter().map(|(_, t)| t.numel()).sum()
    }
}

impl FromIterator<(String, Tensor)> for StateDict {
    fn from_iter<I: IntoIterator<Item = (String, Tensor)>>(iter: I) -> Self {
        let mut sd = StateDict::new();
        for (n, t) in iter {
            sd.insert(n, t);
        }
        sd
    }
}

/// An ordered stack of layers — the model type of flor-ml.
///
/// `Sequential` is deliberately the *only* container: the paper's workloads
/// all reduce to "forward through the net, compute loss, backward, step",
/// and a layer stack (with [`crate::layer::Residual`] for skip connections)
/// expresses every miniature workload in Table 3's live counterparts.
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty model with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// The model's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass through every layer, caching activations for backward.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the model input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Visits every parameter mutably (optimizers use this).
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params_mut(f);
        }
    }

    /// Visits every parameter immutably.
    pub fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        for layer in &self.layers {
            layer.visit_params(f);
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params_mut(&mut |p| p.zero_grad());
    }

    /// Total parameter count (including frozen).
    pub fn numel(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.numel());
        n
    }

    /// Total *trainable* parameter count.
    pub fn numel_trainable(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| {
            if !p.frozen {
                n += p.value.numel()
            }
        });
        n
    }

    /// L2 norm over all parameter values — the "magnitude of the weights"
    /// Alice probes in the paper's §2.1 debugging scenario.
    pub fn weight_norm(&self) -> f32 {
        let mut acc = 0.0f64;
        self.visit_params(&mut |p| {
            let n = p.value.norm() as f64;
            acc += n * n;
        });
        acc.sqrt() as f32
    }

    /// L2 norm over all parameter gradients — the "magnitude of the
    /// gradients" from the same scenario (exploding/vanishing diagnosis).
    pub fn grad_norm(&self) -> f32 {
        let mut acc = 0.0f64;
        self.visit_params(&mut |p| {
            if !p.frozen {
                let n = p.grad.norm() as f64;
                acc += n * n;
            }
        });
        acc.sqrt() as f32
    }

    /// Snapshot of all parameter values, keyed `"<param_idx>.<param_name>"`
    /// where `param_idx` counts parameters in visit order (layer indices
    /// would collide inside composite layers like `Residual`, which carry
    /// several same-named parameters).
    pub fn state_dict(&self) -> StateDict {
        let mut sd = StateDict::new();
        let mut idx = 0usize;
        self.visit_params(&mut |p| {
            sd.insert(format!("{idx}.{}", p.name), p.value.clone());
            idx += 1;
        });
        sd
    }

    /// Restores parameter values from a snapshot produced by
    /// [`Sequential::state_dict`] on an identically shaped model.
    ///
    /// # Panics
    /// Panics if an expected entry is missing or has the wrong shape —
    /// loading a checkpoint into the wrong architecture is a programming
    /// error that must not be silently absorbed.
    pub fn load_state_dict(&mut self, sd: &StateDict) {
        let mut idx = 0usize;
        self.visit_params_mut(&mut |p| {
            let key = format!("{idx}.{}", p.name);
            idx += 1;
            let t = sd
                .get(&key)
                .unwrap_or_else(|| panic!("state dict missing entry {key:?}"));
            assert_eq!(
                t.shape(),
                p.value.shape(),
                "state dict entry {key:?} has shape {} but parameter has {}",
                t.shape(),
                p.value.shape()
            );
            p.value = t.clone();
        });
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Sequential({:?}, {} layers, {} params, {} trainable)",
            self.name,
            self.layers.len(),
            self.numel(),
            self.numel_trainable()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Linear};
    use flor_tensor::Pcg64;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = Pcg64::seeded(seed);
        Sequential::new("tiny")
            .push(Linear::new(4, 8, &mut rng))
            .push(Activation::relu())
            .push(Linear::new(8, 3, &mut rng))
    }

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new("w", Tensor::ones([2, 2]));
        p.grad = Tensor::full([2, 2], 5.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn state_dict_roundtrip() {
        let m = tiny_model(1);
        let sd = m.state_dict();
        assert_eq!(sd.len(), 4); // 2 Linear layers × (weight, bias)
        let mut m2 = tiny_model(2);
        assert_ne!(m2.state_dict(), sd, "different seeds → different weights");
        m2.load_state_dict(&sd);
        assert_eq!(m2.state_dict(), sd);
    }

    #[test]
    #[should_panic(expected = "missing entry")]
    fn load_state_dict_missing_entry_panics() {
        let mut m = tiny_model(1);
        m.load_state_dict(&StateDict::new());
    }

    #[test]
    #[should_panic(expected = "duplicate state dict entry")]
    fn duplicate_state_dict_entry_panics() {
        let mut sd = StateDict::new();
        sd.insert("a", Tensor::scalar(1.0));
        sd.insert("a", Tensor::scalar(2.0));
    }

    #[test]
    fn numel_counts() {
        let m = tiny_model(1);
        // (4*8 + 8) + (8*3 + 3) = 40 + 27
        assert_eq!(m.numel(), 67);
        assert_eq!(m.numel_trainable(), 67);
    }

    #[test]
    fn forward_shape() {
        let mut m = tiny_model(1);
        let x = Tensor::zeros([5, 4]);
        let y = m.forward(&x);
        assert_eq!(y.shape().dims(), &[5, 3]);
    }

    #[test]
    fn deterministic_forward_given_seed() {
        let mut a = tiny_model(42);
        let mut b = tiny_model(42);
        let x = Tensor::ones([2, 4]);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn grad_norm_zero_before_backward() {
        let m = tiny_model(1);
        assert_eq!(m.grad_norm(), 0.0);
        assert!(m.weight_norm() > 0.0);
    }
}
