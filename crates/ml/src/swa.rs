//! Stochastic weight averaging (SWA) — the "experimental training technique
//! from the literature" Alice implements in the paper's §2.1 scenario
//! (Izmailov et al., 2018).
//!
//! SWA maintains a running average of model weights sampled along the
//! (cyclically scheduled) SGD trajectory, and swaps the average in at the end
//! of training. Alice's first bug is averaging "along the wrong dimension";
//! [`SwaAverager::update_buggy`] reproduces that bug for the Alice example
//! (it transposes rank-2 weights before averaging, corrupting shapes exactly
//! the way her TensorBoard plots revealed).

use crate::module::{Sequential, StateDict};
use flor_tensor::Tensor;

/// Running average over model snapshots.
#[derive(Debug, Default)]
pub struct SwaAverager {
    count: u32,
    avg: Option<StateDict>,
}

impl SwaAverager {
    /// New, empty averager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of snapshots folded in so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Rebuilds an averager from checkpointed parts.
    pub fn restore(count: u32, avg: Option<StateDict>) -> Self {
        SwaAverager { count, avg }
    }

    /// Folds the model's current weights into the running average.
    pub fn update(&mut self, model: &Sequential) {
        let sd = model.state_dict();
        self.fold(sd);
    }

    /// The buggy variant from the Alice scenario: transposes every rank-2
    /// tensor before averaging, i.e. averages along the wrong dimension.
    /// With square weight matrices this silently corrupts values; with
    /// non-square ones it corrupts shapes.
    pub fn update_buggy(&mut self, model: &Sequential) {
        let sd: StateDict = model
            .state_dict()
            .iter()
            .map(|(n, t)| {
                let t = if t.shape().rank() == 2 {
                    t.transpose()
                } else {
                    t.clone()
                };
                (n.to_string(), t)
            })
            .collect();
        self.fold(sd);
    }

    fn fold(&mut self, sd: StateDict) {
        self.count += 1;
        match &mut self.avg {
            None => self.avg = Some(sd),
            Some(avg) => {
                let k = self.count as f32;
                let merged: StateDict = avg
                    .iter()
                    .zip(sd.iter())
                    .map(|((name, a), (name2, b))| {
                        assert_eq!(name, name2, "state dict entry order changed");
                        assert_eq!(
                            a.shape(),
                            b.shape(),
                            "SWA shape mismatch on {name:?}: running average has {} but \
                             snapshot has {} (averaging along the wrong dimension?)",
                            a.shape(),
                            b.shape()
                        );
                        // running_avg += (x - running_avg) / k
                        let mut upd = a.clone();
                        upd.axpy(-1.0 / k, a);
                        upd.axpy(1.0 / k, b);
                        (name.to_string(), upd)
                    })
                    .collect();
                *avg = merged;
            }
        }
    }

    /// The current averaged weights, if any snapshot has been folded in.
    pub fn average(&self) -> Option<&StateDict> {
        self.avg.as_ref()
    }

    /// Writes the averaged weights into the model (the end-of-training swap).
    ///
    /// # Panics
    /// Panics if no snapshots were folded in, or on shape mismatch (the
    /// symptom of the wrong-dimension bug).
    pub fn apply(&self, model: &mut Sequential) {
        let avg = self.avg.as_ref().expect("SWA apply before any update");
        model.load_state_dict(avg);
    }

    /// Like [`SwaAverager::apply`] but returns an error message instead of
    /// panicking, so scripted workloads can surface the failure as a log.
    pub fn try_apply(&self, model: &mut Sequential) -> Result<(), String> {
        let avg = match &self.avg {
            Some(a) => a,
            None => return Err("SWA apply before any update".to_string()),
        };
        // Validate shapes first so we can produce a diagnostic rather than
        // panic inside load_state_dict.
        let expect = model.state_dict();
        for (name, t) in expect.iter() {
            match avg.get(name) {
                Some(a) if a.shape() == t.shape() => {}
                Some(a) => {
                    return Err(format!(
                        "SWA average for {name:?} has shape {} but model expects {}",
                        a.shape(),
                        t.shape()
                    ))
                }
                None => return Err(format!("SWA average missing entry {name:?}")),
            }
        }
        model.load_state_dict(avg);
        Ok(())
    }
}

/// Averages a frozen tensor pair elementwise — helper used in tests.
fn _unused(_a: &Tensor) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Linear;
    use flor_tensor::Pcg64;

    fn model(seed: u64) -> Sequential {
        let mut rng = Pcg64::seeded(seed);
        Sequential::new("m").push(Linear::new(3, 2, &mut rng))
    }

    #[test]
    fn average_of_identical_snapshots_is_identity() {
        let m = model(1);
        let mut swa = SwaAverager::new();
        swa.update(&m);
        swa.update(&m);
        let avg = swa.average().unwrap();
        for ((_, a), (_, b)) in avg.iter().zip(m.state_dict().iter()) {
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn average_is_running_mean() {
        let mut m = model(2);
        let mut swa = SwaAverager::new();
        swa.update(&m); // snapshot A
        let a0 = m.state_dict().get("1.bias").unwrap().data()[0];
        // Shift all weights by +1 and fold again.
        m.visit_params_mut(&mut |p| p.value.map_inplace(|v| v + 1.0));
        swa.update(&m); // snapshot A+1
        let avg = swa.average().unwrap().get("1.bias").unwrap().data()[0];
        assert!((avg - (a0 + 0.5)).abs() < 1e-5, "avg {avg} vs {}", a0 + 0.5);
    }

    #[test]
    fn apply_swaps_average_into_model() {
        let mut m = model(3);
        let mut swa = SwaAverager::new();
        swa.update(&m);
        m.visit_params_mut(&mut |p| p.value.map_inplace(|v| v + 2.0));
        swa.update(&m);
        swa.apply(&mut m);
        // Model now halfway between the two snapshots; folding it again
        // must keep shapes intact.
        swa.update(&m);
    }

    #[test]
    fn buggy_update_breaks_on_nonsquare_weights() {
        let m = model(4); // weight is [3, 2] — not square
        let mut swa = SwaAverager::new();
        swa.update_buggy(&m);
        let mut m2 = model(4);
        let err = swa.try_apply(&mut m2).unwrap_err();
        assert!(
            err.contains("shape"),
            "diagnostic should mention shape: {err}"
        );
    }

    #[test]
    fn buggy_then_good_update_shape_mismatch_panics() {
        let m = model(5);
        let mut swa = SwaAverager::new();
        swa.update_buggy(&m);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            swa.update(&m);
        }));
        assert!(
            result.is_err(),
            "mixing buggy and correct updates must fail"
        );
    }

    #[test]
    fn try_apply_before_update_errors() {
        let swa = SwaAverager::new();
        let mut m = model(6);
        assert!(swa.try_apply(&mut m).is_err());
    }
}
