//! Optimizers: the objects that *mutate the model* through a shared
//! reference.
//!
//! In the paper's side-effect analysis this is the crucial encoded library
//! fact (a): "the model may be updated via the optimizer" (§5.2.1). Flor's
//! rules detect that `optimizer` is in a loop's changeset (rule 4:
//! `optimizer.step()` ⇒ `{optimizer}`), and the runtime augmentation step
//! infers that the model the optimizer points at is modified too.
//!
//! Optimizer state (velocity / moment buffers, step counters, and
//! hyperparameters including the scheduler-controlled learning rate) is fully
//! checkpointable via [`Optimizer::state_dict`].

use crate::module::{Param, Sequential, StateDict};
use flor_tensor::Tensor;

/// A gradient-based optimizer over a [`Sequential`] model's parameters.
pub trait Optimizer {
    /// Applies one update step from the accumulated gradients, then leaves
    /// gradients untouched (call [`Sequential::zero_grad`] separately, as
    /// training scripts do).
    fn step(&mut self, model: &mut Sequential);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Sets the learning rate (this is the hook schedulers use — encoded
    /// library fact (b): "the optimizer may be updated via the learning rate
    /// schedule").
    fn set_lr(&mut self, lr: f32);

    /// Current weight-decay coefficient.
    fn weight_decay(&self) -> f32;

    /// Sets the weight-decay coefficient (Alice's final fix in §2.1 is
    /// `weight_decay = 0`).
    fn set_weight_decay(&mut self, wd: f32);

    /// Snapshot of all optimizer state: hyperparameters and moment buffers.
    fn state_dict(&self) -> StateDict;

    /// Restores state captured by [`Optimizer::state_dict`].
    ///
    /// # Panics
    /// Panics if the snapshot is structurally incompatible.
    fn load_state_dict(&mut self, sd: &StateDict);

    /// Cheap estimate of the state-dict element count, *without* building
    /// it (used by Flor's adaptive checkpointing to predict materialization
    /// cost before deciding whether to checkpoint).
    fn state_numel(&self) -> usize;
}

/// Collects per-parameter shapes of the trainable parameters, in visit order.
fn trainable_shapes(model: &Sequential) -> Vec<flor_tensor::Shape> {
    let mut shapes = Vec::new();
    model.visit_params(&mut |p| {
        if !p.frozen {
            shapes.push(p.value.shape().clone());
        }
    });
    shapes
}

// ---------------------------------------------------------------------------
// SGD
// ---------------------------------------------------------------------------

/// Stochastic gradient descent with momentum and (decoupled) weight decay.
///
/// Update rule per trainable parameter `w` with gradient `g`:
/// ```text
/// g' = g + weight_decay * w
/// v  = momentum * v + g'
/// w  = w - lr * v
/// ```
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>, // lazily sized on first step
    steps: u64,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
            steps: 0,
        }
    }

    /// Number of `step` calls so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    fn ensure_buffers(&mut self, model: &Sequential) {
        if self.velocity.is_empty() {
            self.velocity = trainable_shapes(model)
                .into_iter()
                .map(Tensor::zeros)
                .collect();
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut Sequential) {
        self.ensure_buffers(model);
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        let mut idx = 0;
        model.visit_params_mut(&mut |p: &mut Param| {
            if p.frozen {
                return;
            }
            let v = &mut velocity[idx];
            idx += 1;
            let vd = v.data_mut();
            let wdata = p.value.data_mut();
            let gdata = p.grad.data();
            for i in 0..wdata.len() {
                let g = gdata[i] + wd * wdata[i];
                vd[i] = mu * vd[i] + g;
                wdata[i] -= lr * vd[i];
            }
        });
        self.steps += 1;
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn weight_decay(&self) -> f32 {
        self.weight_decay
    }

    fn set_weight_decay(&mut self, wd: f32) {
        self.weight_decay = wd;
    }

    fn state_dict(&self) -> StateDict {
        let mut sd = StateDict::new();
        sd.insert(
            "hyper",
            Tensor::from_slice(&[self.lr, self.momentum, self.weight_decay, self.steps as f32]),
        );
        for (i, v) in self.velocity.iter().enumerate() {
            sd.insert(format!("velocity.{i}"), v.clone());
        }
        sd
    }

    fn load_state_dict(&mut self, sd: &StateDict) {
        let hyper = sd.get("hyper").expect("Sgd state dict missing 'hyper'");
        let h = hyper.data();
        assert_eq!(h.len(), 4, "Sgd hyper tensor must have 4 entries");
        self.lr = h[0];
        self.momentum = h[1];
        self.weight_decay = h[2];
        self.steps = h[3] as u64;
        self.velocity.clear();
        let mut i = 0;
        while let Some(v) = sd.get(&format!("velocity.{i}")) {
            self.velocity.push(v.clone());
            i += 1;
        }
    }

    fn state_numel(&self) -> usize {
        4 + self.velocity.iter().map(Tensor::numel).sum::<usize>()
    }
}

// ---------------------------------------------------------------------------
// Adam
// ---------------------------------------------------------------------------

/// Adam optimizer with bias correction and L2 weight decay.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    /// New Adam optimizer with the conventional defaults
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    fn ensure_buffers(&mut self, model: &Sequential) {
        if self.m.is_empty() {
            let shapes = trainable_shapes(model);
            self.m = shapes.iter().cloned().map(Tensor::zeros).collect();
            self.v = shapes.into_iter().map(Tensor::zeros).collect();
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut Sequential) {
        self.ensure_buffers(model);
        self.t += 1;
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        model.visit_params_mut(&mut |p: &mut Param| {
            if p.frozen {
                return;
            }
            let m = ms[idx].data_mut();
            let v = vs[idx].data_mut();
            idx += 1;
            let wdata = p.value.data_mut();
            let gdata = p.grad.data();
            for i in 0..wdata.len() {
                let g = gdata[i] + wd * wdata[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                wdata[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn weight_decay(&self) -> f32 {
        self.weight_decay
    }

    fn set_weight_decay(&mut self, wd: f32) {
        self.weight_decay = wd;
    }

    fn state_dict(&self) -> StateDict {
        let mut sd = StateDict::new();
        sd.insert(
            "hyper",
            Tensor::from_slice(&[
                self.lr,
                self.beta1,
                self.beta2,
                self.eps,
                self.weight_decay,
                self.t as f32,
            ]),
        );
        for (i, m) in self.m.iter().enumerate() {
            sd.insert(format!("m.{i}"), m.clone());
        }
        for (i, v) in self.v.iter().enumerate() {
            sd.insert(format!("v.{i}"), v.clone());
        }
        sd
    }

    fn load_state_dict(&mut self, sd: &StateDict) {
        let hyper = sd.get("hyper").expect("Adam state dict missing 'hyper'");
        let h = hyper.data();
        assert_eq!(h.len(), 6, "Adam hyper tensor must have 6 entries");
        self.lr = h[0];
        self.beta1 = h[1];
        self.beta2 = h[2];
        self.eps = h[3];
        self.weight_decay = h[4];
        self.t = h[5] as u64;
        self.m.clear();
        self.v.clear();
        let mut i = 0;
        while let Some(m) = sd.get(&format!("m.{i}")) {
            self.m.push(m.clone());
            i += 1;
        }
        let mut i = 0;
        while let Some(v) = sd.get(&format!("v.{i}")) {
            self.v.push(v.clone());
            i += 1;
        }
    }

    fn state_numel(&self) -> usize {
        6 + self.m.iter().map(Tensor::numel).sum::<usize>()
            + self.v.iter().map(Tensor::numel).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Linear;
    use flor_tensor::{ops, Pcg64};

    fn model(seed: u64) -> Sequential {
        let mut rng = Pcg64::seeded(seed);
        Sequential::new("m").push(Linear::new(3, 2, &mut rng))
    }

    fn one_training_step(m: &mut Sequential, opt: &mut dyn Optimizer) -> f32 {
        // Two separable clusters so the toy problem is actually learnable.
        let x = Tensor::new(
            [4, 3],
            vec![
                1.0, 0.0, 1.0, -1.0, 0.5, -1.0, 0.9, -0.1, 1.1, -0.8, 0.4, -0.9,
            ],
        );
        let targets = [0usize, 1, 0, 1];
        let logits = m.forward(&x);
        let (loss, probs) = ops::cross_entropy(&logits, &targets);
        let grad = ops::cross_entropy_backward(&probs, &targets);
        m.zero_grad();
        m.backward(&grad);
        opt.step(m);
        loss
    }

    #[test]
    fn sgd_descends_loss() {
        let mut m = model(1);
        let mut opt = Sgd::new(0.5, 0.0, 0.0);
        let first = one_training_step(&mut m, &mut opt);
        let mut last = first;
        for _ in 0..20 {
            last = one_training_step(&mut m, &mut opt);
        }
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn adam_descends_loss() {
        let mut m = model(2);
        let mut opt = Adam::new(0.05, 0.0);
        let first = one_training_step(&mut m, &mut opt);
        let mut last = first;
        for _ in 0..20 {
            last = one_training_step(&mut m, &mut opt);
        }
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn sgd_momentum_accelerates_along_constant_gradient() {
        let mut m = model(3);
        let before = m.state_dict();
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        // Constant gradient of 1 on every weight.
        for _ in 0..3 {
            m.visit_params_mut(&mut |p| {
                p.grad = Tensor::ones(p.value.shape().clone());
            });
            opt.step(&mut m);
        }
        // With momentum: steps of 1, 1.9, 2.71 → total 5.61 * lr.
        let after = m.state_dict();
        let delta =
            before.get("1.bias").unwrap().data()[0] - after.get("1.bias").unwrap().data()[0];
        assert!((delta - 0.561).abs() < 1e-4, "delta {delta}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut m = model(4);
        let norm0 = m.weight_norm();
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        for _ in 0..10 {
            m.zero_grad(); // zero gradient: only decay acts
            opt.step(&mut m);
        }
        assert!(m.weight_norm() < norm0 * 0.7, "decay should shrink weights");
    }

    #[test]
    fn frozen_params_not_updated() {
        let mut rng = Pcg64::seeded(5);
        let mut m = Sequential::new("f").push(Linear::new_frozen(3, 2, &mut rng));
        let before = m.state_dict();
        let mut opt = Sgd::new(1.0, 0.0, 0.9);
        m.visit_params_mut(&mut |p| p.grad = Tensor::ones(p.value.shape().clone()));
        opt.step(&mut m);
        assert_eq!(m.state_dict(), before);
    }

    #[test]
    fn sgd_state_dict_roundtrip_resumes_identically() {
        let mut m1 = model(6);
        let mut o1 = Sgd::new(0.2, 0.9, 0.01);
        for _ in 0..5 {
            one_training_step(&mut m1, &mut o1);
        }
        // Clone state into a fresh optimizer; further steps must agree.
        let mut m2 = model(99);
        m2.load_state_dict(&m1.state_dict());
        let mut o2 = Sgd::new(0.0, 0.0, 0.0);
        o2.load_state_dict(&o1.state_dict());
        for _ in 0..5 {
            let a = one_training_step(&mut m1, &mut o1);
            let b = one_training_step(&mut m2, &mut o2);
            assert_eq!(a, b);
        }
        assert_eq!(m1.state_dict(), m2.state_dict());
    }

    #[test]
    fn adam_state_dict_roundtrip_resumes_identically() {
        let mut m1 = model(7);
        let mut o1 = Adam::new(0.05, 0.001);
        for _ in 0..5 {
            one_training_step(&mut m1, &mut o1);
        }
        let mut m2 = model(99);
        m2.load_state_dict(&m1.state_dict());
        let mut o2 = Adam::new(0.0, 0.0);
        o2.load_state_dict(&o1.state_dict());
        for _ in 0..5 {
            let a = one_training_step(&mut m1, &mut o1);
            let b = one_training_step(&mut m2, &mut o2);
            assert_eq!(a, b);
        }
        assert_eq!(m1.state_dict(), m2.state_dict());
    }

    #[test]
    fn set_lr_takes_effect() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.set_lr(0.5);
        assert_eq!(opt.lr(), 0.5);
        opt.set_weight_decay(0.25);
        assert_eq!(opt.weight_decay(), 0.25);
    }
}
