//! Neural-network layers with hand-written backward passes.
//!
//! Every layer caches whatever its backward pass needs during `forward`, so a
//! `forward` → `backward` pair computes exact gradients (checked against
//! finite differences in this module's tests and in crate-level proptests).

use crate::module::Param;
use flor_tensor::{init, ops, Pcg64, Shape, Tensor};

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches activations; `backward` *accumulates*
/// into parameter gradients and returns the gradient with respect to the
/// layer input.
pub trait Layer {
    /// Forward pass. Caches anything backward will need.
    fn forward(&mut self, x: &Tensor) -> Tensor;

    /// Backward pass: accumulates parameter gradients, returns `d loss / d x`.
    ///
    /// Must be called after `forward` with a gradient of the same shape as
    /// the forward output.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits this layer's parameters mutably.
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Visits this layer's parameters immutably.
    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully connected layer: `y = x W + b` over `[batch, in] → [batch, out]`.
pub struct Linear {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// New trainable layer with Kaiming-normal weights and zero bias.
    pub fn new(fan_in: usize, fan_out: usize, rng: &mut Pcg64) -> Self {
        Linear {
            weight: Param::new("weight", init::kaiming_normal(fan_in, fan_out, rng)),
            bias: Param::new("bias", Tensor::zeros([fan_out])),
            cached_input: None,
        }
    }

    /// New layer with *frozen* weights (pretrained-style; skipped by
    /// optimizers but still present in checkpoints).
    pub fn new_frozen(fan_in: usize, fan_out: usize, rng: &mut Pcg64) -> Self {
        let mut l = Self::new(fan_in, fan_out, rng);
        l.weight.frozen = true;
        l.bias.frozen = true;
        l
    }

    /// New trainable layer initialized to zero — the "zero-init residual"
    /// trick: the last layer of a residual branch starts at zero so every
    /// block begins as the identity, keeping deep stacks stable at init.
    pub fn new_zero(fan_in: usize, fan_out: usize) -> Self {
        Linear {
            weight: Param::new("weight", Tensor::zeros([fan_in, fan_out])),
            bias: Param::new("bias", Tensor::zeros([fan_out])),
            cached_input: None,
        }
    }

    /// Read access to the weight parameter (probed by hindsight logs).
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cached_input = Some(x.clone());
        x.matmul(&self.weight.value)
            .add_row_broadcast(&self.bias.value)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Linear::backward called before forward");
        if !self.weight.frozen {
            self.weight.grad.axpy(1.0, &x.transpose().matmul(grad_out));
        }
        if !self.bias.frozen {
            self.bias.grad.axpy(1.0, &grad_out.sum_rows());
        }
        grad_out.matmul(&self.weight.value.transpose())
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }
}

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------

/// The supported pointwise nonlinearities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActKind {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
}

/// A parameter-free pointwise activation layer.
pub struct Activation {
    kind: ActKind,
    cached: Option<Tensor>, // input for Relu/Gelu, output for Tanh/Sigmoid
}

impl Activation {
    /// New activation of the given kind.
    pub fn new(kind: ActKind) -> Self {
        Activation { kind, cached: None }
    }

    /// Shorthand for `Activation::new(ActKind::Relu)`.
    pub fn relu() -> Self {
        Self::new(ActKind::Relu)
    }

    /// Shorthand for `Activation::new(ActKind::Tanh)`.
    pub fn tanh() -> Self {
        Self::new(ActKind::Tanh)
    }

    /// Shorthand for `Activation::new(ActKind::Gelu)`.
    pub fn gelu() -> Self {
        Self::new(ActKind::Gelu)
    }
}

impl Layer for Activation {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        match self.kind {
            ActKind::Relu => {
                self.cached = Some(x.clone());
                ops::relu(x)
            }
            ActKind::Gelu => {
                self.cached = Some(x.clone());
                ops::gelu(x)
            }
            ActKind::Tanh => {
                let y = ops::tanh(x);
                self.cached = Some(y.clone());
                y
            }
            ActKind::Sigmoid => {
                let y = ops::sigmoid(x);
                self.cached = Some(y.clone());
                y
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cached = self
            .cached
            .as_ref()
            .expect("Activation::backward called before forward");
        match self.kind {
            ActKind::Relu => ops::relu_backward(cached, grad_out),
            ActKind::Tanh => ops::tanh_backward(cached, grad_out),
            ActKind::Sigmoid => ops::sigmoid_backward(cached, grad_out),
            ActKind::Gelu => {
                // d/dx of the tanh-approximated GELU, from the cached input.
                const K: f32 = 0.797_884_6; // sqrt(2/pi)
                const A: f32 = 0.044_715;
                cached.zip(grad_out, |x, g| {
                    let u = K * (x + A * x * x * x);
                    let t = u.tanh();
                    let du = K * (1.0 + 3.0 * A * x * x);
                    g * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du)
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Embedding
// ---------------------------------------------------------------------------

/// Token-embedding layer with mean pooling:
/// `[batch, seq]` of token ids (stored as `f32`) → `[batch, dim]`.
///
/// Mean pooling keeps the rest of a text model a plain `[batch, features]`
/// pipeline, which is all the miniature GLUE-style workloads need.
pub struct Embedding {
    weight: Param,
    vocab: usize,
    dim: usize,
    cached_ids: Option<Tensor>,
}

impl Embedding {
    /// New embedding table of `vocab × dim` with small normal init.
    pub fn new(vocab: usize, dim: usize, rng: &mut Pcg64) -> Self {
        Embedding {
            weight: Param::new("weight", init::normal([vocab, dim], 0.0, 0.02, rng)),
            vocab,
            dim,
            cached_ids: None,
        }
    }

    /// Freezes the table (pretrained-embedding fine-tuning style).
    pub fn frozen(mut self) -> Self {
        self.weight.frozen = true;
        self
    }

    fn id_at(&self, ids: &Tensor, flat: usize) -> usize {
        let raw = ids.data()[flat];
        let id = raw as usize;
        assert!(
            raw >= 0.0 && id < self.vocab,
            "token id {raw} out of range for vocab {}",
            self.vocab
        );
        id
    }
}

impl Layer for Embedding {
    fn forward(&mut self, ids: &Tensor) -> Tensor {
        assert_eq!(ids.shape().rank(), 2, "Embedding expects [batch, seq] ids");
        let (batch, seq) = (ids.shape().dim(0), ids.shape().dim(1));
        assert!(seq > 0, "Embedding expects non-empty sequences");
        self.cached_ids = Some(ids.clone());
        let mut out = Tensor::zeros([batch, self.dim]);
        for b in 0..batch {
            for s in 0..seq {
                let id = self.id_at(ids, b * seq + s);
                let row = &self.weight.value.data()[id * self.dim..(id + 1) * self.dim];
                let dst = &mut out.data_mut()[b * self.dim..(b + 1) * self.dim];
                for (d, &w) in dst.iter_mut().zip(row) {
                    *d += w;
                }
            }
        }
        out.scale(1.0 / seq as f32)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let ids = self
            .cached_ids
            .as_ref()
            .expect("Embedding::backward called before forward")
            .clone();
        let (batch, seq) = (ids.shape().dim(0), ids.shape().dim(1));
        if !self.weight.frozen {
            let inv = 1.0 / seq as f32;
            for b in 0..batch {
                for s in 0..seq {
                    let id = self.id_at(&ids, b * seq + s);
                    let src = &grad_out.data()[b * self.dim..(b + 1) * self.dim];
                    let dst = &mut self.weight.grad.data_mut()[id * self.dim..(id + 1) * self.dim];
                    for (d, &g) in dst.iter_mut().zip(src) {
                        *d += g * inv;
                    }
                }
            }
        }
        // Token ids are not differentiable.
        Tensor::zeros(ids.shape().clone())
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
    }
}

// ---------------------------------------------------------------------------
// LayerNorm
// ---------------------------------------------------------------------------

/// Layer normalization over the last dimension of `[batch, dim]`, with
/// learned scale (`gamma`) and shift (`beta`).
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
    cached: Option<(Tensor, Vec<f32>)>, // normalized x-hat and per-row inv std
}

impl LayerNorm {
    /// New layer norm for feature dimension `dim`.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new("gamma", Tensor::ones([dim])),
            beta: Param::new("beta", Tensor::zeros([dim])),
            eps: 1e-5,
            cached: None,
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "LayerNorm expects [batch, dim]");
        let (batch, dim) = (x.shape().dim(0), x.shape().dim(1));
        let mut xhat = x.clone();
        let mut inv_stds = Vec::with_capacity(batch);
        for r in 0..batch {
            let row = &mut xhat.data_mut()[r * dim..(r + 1) * dim];
            let mean = row.iter().sum::<f32>() / dim as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / dim as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            for v in row.iter_mut() {
                *v = (*v - mean) * inv_std;
            }
            inv_stds.push(inv_std);
        }
        let mut out = xhat.clone();
        for r in 0..batch {
            let row = &mut out.data_mut()[r * dim..(r + 1) * dim];
            for (c, v) in row.iter_mut().enumerate() {
                *v = *v * self.gamma.value.data()[c] + self.beta.value.data()[c];
            }
        }
        self.cached = Some((xhat, inv_stds));
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (xhat, inv_stds) = self
            .cached
            .as_ref()
            .expect("LayerNorm::backward called before forward");
        let (batch, dim) = (grad_out.shape().dim(0), grad_out.shape().dim(1));
        let mut dx = Tensor::zeros(grad_out.shape().clone());
        for (r, &inv_std) in inv_stds.iter().enumerate().take(batch) {
            let g = &grad_out.data()[r * dim..(r + 1) * dim];
            let xh = &xhat.data()[r * dim..(r + 1) * dim];
            // dgamma, dbeta accumulate across the batch.
            if !self.gamma.frozen {
                for c in 0..dim {
                    self.gamma.grad.data_mut()[c] += g[c] * xh[c];
                    self.beta.grad.data_mut()[c] += g[c];
                }
            }
            // dxhat = g * gamma; dx = inv_std * (dxhat - mean(dxhat)
            //          - xhat * mean(dxhat * xhat))
            let gamma = self.gamma.value.data();
            let mut mean_dxhat = 0.0f32;
            let mut mean_dxhat_xhat = 0.0f32;
            for c in 0..dim {
                let dxh = g[c] * gamma[c];
                mean_dxhat += dxh;
                mean_dxhat_xhat += dxh * xh[c];
            }
            mean_dxhat /= dim as f32;
            mean_dxhat_xhat /= dim as f32;
            let row = &mut dx.data_mut()[r * dim..(r + 1) * dim];
            for c in 0..dim {
                let dxh = g[c] * gamma[c];
                row[c] = inv_std * (dxh - mean_dxhat - xh[c] * mean_dxhat_xhat);
            }
        }
        dx
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }
}

// ---------------------------------------------------------------------------
// Conv1d
// ---------------------------------------------------------------------------

/// 1-D valid convolution over `[batch, in_ch, len] → [batch, out_ch, len-k+1]`
/// (the Jasper-style speech workloads are stacks of these).
pub struct Conv1d {
    weight: Param, // [out_ch, in_ch, k]
    bias: Param,   // [out_ch]
    in_ch: usize,
    out_ch: usize,
    k: usize,
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// New trainable 1-D convolution with kernel width `k`.
    pub fn new(in_ch: usize, out_ch: usize, k: usize, rng: &mut Pcg64) -> Self {
        let std = (2.0 / (in_ch * k) as f32).sqrt();
        Conv1d {
            weight: Param::new("weight", init::normal([out_ch, in_ch, k], 0.0, std, rng)),
            bias: Param::new("bias", Tensor::zeros([out_ch])),
            in_ch,
            out_ch,
            k,
            cached_input: None,
        }
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().rank(), 3, "Conv1d expects [batch, in_ch, len]");
        assert_eq!(x.shape().dim(1), self.in_ch, "Conv1d in_ch mismatch");
        let (batch, len) = (x.shape().dim(0), x.shape().dim(2));
        assert!(len >= self.k, "Conv1d input shorter than kernel");
        let out_len = len - self.k + 1;
        self.cached_input = Some(x.clone());
        let mut out = Tensor::zeros([batch, self.out_ch, out_len]);
        let w = self.weight.value.data();
        let xd = x.data();
        let od = out.data_mut();
        for b in 0..batch {
            for o in 0..self.out_ch {
                for p in 0..out_len {
                    let mut acc = self.bias.value.data()[o];
                    for i in 0..self.in_ch {
                        let xrow = &xd[(b * self.in_ch + i) * len + p..][..self.k];
                        let wrow = &w[(o * self.in_ch + i) * self.k..][..self.k];
                        for (xv, wv) in xrow.iter().zip(wrow) {
                            acc += xv * wv;
                        }
                    }
                    od[(b * self.out_ch + o) * out_len + p] = acc;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("Conv1d::backward called before forward");
        let (batch, len) = (x.shape().dim(0), x.shape().dim(2));
        let out_len = len - self.k + 1;
        let mut dx = Tensor::zeros(x.shape().clone());
        let g = grad_out.data();
        let xd = x.data();
        let w = self.weight.value.data();
        let frozen = self.weight.frozen;
        for b in 0..batch {
            for o in 0..self.out_ch {
                let grow = &g[(b * self.out_ch + o) * out_len..][..out_len];
                if !self.bias.frozen {
                    self.bias.grad.data_mut()[o] += grow.iter().sum::<f32>();
                }
                for i in 0..self.in_ch {
                    for t in 0..self.k {
                        if !frozen {
                            let mut acc = 0.0f32;
                            for (p, &gv) in grow.iter().enumerate() {
                                acc += xd[(b * self.in_ch + i) * len + p + t] * gv;
                            }
                            self.weight.grad.data_mut()[(o * self.in_ch + i) * self.k + t] += acc;
                        }
                        let wv = w[(o * self.in_ch + i) * self.k + t];
                        let dxrow = &mut dx.data_mut()[(b * self.in_ch + i) * len..][..len];
                        for (p, &gv) in grow.iter().enumerate() {
                            dxrow[p + t] += wv * gv;
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }
}

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

/// Flattens `[batch, …] → [batch, rest]`, remembering the input shape for
/// backward. Bridges Conv1d stacks to Linear heads.
pub struct Flatten {
    cached_shape: Option<Shape>,
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert!(x.shape().rank() >= 2, "Flatten expects rank >= 2");
        self.cached_shape = Some(x.shape().clone());
        let batch = x.shape().dim(0);
        x.reshape([batch, x.numel() / batch])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .as_ref()
            .expect("Flatten::backward called before forward");
        grad_out.reshape(shape.clone())
    }
}

// ---------------------------------------------------------------------------
// ToChannels
// ---------------------------------------------------------------------------

/// Reshapes `[batch, features] → [batch, channels, features/channels]`,
/// adapting flat feature batches to 1-D convolutional stacks (speech-style
/// models treat the feature vector as a waveform with `channels` bands).
pub struct ToChannels {
    channels: usize,
}

impl ToChannels {
    /// New adapter splitting features into `channels` bands.
    ///
    /// # Panics
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channels must be positive");
        ToChannels { channels }
    }
}

impl Layer for ToChannels {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().rank(), 2, "ToChannels expects [batch, features]");
        let (batch, features) = (x.shape().dim(0), x.shape().dim(1));
        assert_eq!(
            features % self.channels,
            0,
            "features {features} not divisible by channels {}",
            self.channels
        );
        x.reshape([batch, self.channels, features / self.channels])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (batch, ch, len) = (
            grad_out.shape().dim(0),
            grad_out.shape().dim(1),
            grad_out.shape().dim(2),
        );
        grad_out.reshape([batch, ch * len])
    }
}

// ---------------------------------------------------------------------------
// Residual
// ---------------------------------------------------------------------------

/// Residual (skip) connection: `y = x + f(x)` where `f` is an inner layer
/// stack. The building block of the ResNet-style miniature workloads.
pub struct Residual {
    inner: Vec<Box<dyn Layer>>,
}

impl Residual {
    /// New residual block around an inner layer stack.
    pub fn new() -> Self {
        Residual { inner: Vec::new() }
    }

    /// Appends a layer to the inner stack (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.inner.push(Box::new(layer));
        self
    }
}

impl Default for Residual {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.inner {
            cur = layer.forward(&cur);
        }
        assert_eq!(
            cur.shape(),
            x.shape(),
            "Residual inner stack must preserve shape"
        );
        cur.add(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad = grad_out.clone();
        for layer in self.inner.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad.add(grad_out)
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.inner {
            layer.visit_params_mut(f);
        }
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        for layer in &self.inner {
            layer.visit_params(f);
        }
    }
}

// ---------------------------------------------------------------------------
// FrozenBackbone
// ---------------------------------------------------------------------------

/// A pretrained-style backbone: a frozen projection used in the forward pass
/// plus a large frozen "ballast" parameter block standing in for the rest of
/// a pretrained model's weight mass (unused heads, full embedding tables).
///
/// This reproduces the state/compute profile of the paper's fine-tuning
/// workloads (RTE, CoLA): "the vast majority of weights are frozen in model
/// fine-tuning, so a loop execution quickly updates a small fraction of
/// values in an enormous model" (§5.3.4) — which is exactly the regime where
/// Flor's adaptive checkpointing switches to periodic (sparse) checkpoints.
pub struct FrozenBackbone {
    proj: Linear,
    ballast: Param,
}

impl FrozenBackbone {
    /// New backbone projecting `fan_in → fan_out` with `ballast_numel`
    /// additional frozen weights.
    pub fn new(fan_in: usize, fan_out: usize, ballast_numel: usize, rng: &mut Pcg64) -> Self {
        FrozenBackbone {
            proj: Linear::new_frozen(fan_in, fan_out, rng),
            ballast: Param::frozen("ballast", init::normal([ballast_numel], 0.0, 0.02, rng)),
        }
    }
}

impl Layer for FrozenBackbone {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.proj.forward(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.proj.backward(grad_out)
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.proj.visit_params_mut(f);
        f(&mut self.ballast);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.proj.visit_params(f);
        f(&self.ballast);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks `d loss / d param` for a layer with a scalar loss
    /// `sum(forward(x) * probe)`.
    fn grad_check(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        let probe = {
            let mut rng = Pcg64::seeded(777);
            let y = layer.forward(x);
            init::uniform(y.shape().clone(), -1.0, 1.0, &mut rng)
        };
        // Analytic gradients.
        layer.visit_params_mut(&mut |p| p.zero_grad());
        let _y = layer.forward(x);
        layer.backward(&probe);
        let mut analytic: Vec<(String, Tensor)> = Vec::new();
        layer.visit_params(&mut |p| analytic.push((p.name.clone(), p.grad.clone())));

        // Finite differences, parameter by parameter.
        let eps = 1e-2f32;
        let mut param_idx = 0;
        loop {
            let mut names = Vec::new();
            layer.visit_params(&mut |p| names.push(p.name.clone()));
            if param_idx >= names.len() {
                break;
            }
            let numel = {
                let mut n = 0;
                let mut i = 0;
                layer.visit_params(&mut |p| {
                    if i == param_idx {
                        n = p.value.numel();
                    }
                    i += 1;
                });
                n
            };
            let is_frozen = {
                let mut fz = false;
                let mut i = 0;
                layer.visit_params(&mut |p| {
                    if i == param_idx {
                        fz = p.frozen;
                    }
                    i += 1;
                });
                fz
            };
            if is_frozen {
                // Frozen params must have zero grad.
                assert_eq!(analytic[param_idx].1.sum(), 0.0);
                param_idx += 1;
                continue;
            }
            // Sample a few coordinates to keep the test fast.
            let coords: Vec<usize> = (0..numel).step_by((numel / 6).max(1)).collect();
            for &c in &coords {
                let perturb = |delta: f32, layer: &mut dyn Layer| -> f32 {
                    let mut i = 0;
                    layer.visit_params_mut(&mut |p| {
                        if i == param_idx {
                            p.value.data_mut()[c] += delta;
                        }
                        i += 1;
                    });
                    let y = layer.forward(x);
                    let loss = y.mul(&probe).sum();
                    let mut i = 0;
                    layer.visit_params_mut(&mut |p| {
                        if i == param_idx {
                            p.value.data_mut()[c] -= delta;
                        }
                        i += 1;
                    });
                    loss
                };
                let lp = perturb(eps, layer);
                let lm = perturb(-eps, layer);
                let fd = (lp - lm) / (2.0 * eps);
                let an = analytic[param_idx].1.data()[c];
                assert!(
                    (fd - an).abs() < tol * (1.0 + fd.abs().max(an.abs())),
                    "param {} coord {}: finite-diff {} vs analytic {}",
                    analytic[param_idx].0,
                    c,
                    fd,
                    an
                );
            }
            param_idx += 1;
        }
    }

    /// Numerically checks `d loss / d x`.
    fn input_grad_check(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        let probe = {
            let mut rng = Pcg64::seeded(778);
            let y = layer.forward(x);
            init::uniform(y.shape().clone(), -1.0, 1.0, &mut rng)
        };
        layer.visit_params_mut(&mut |p| p.zero_grad());
        let _ = layer.forward(x);
        let dx = layer.backward(&probe);
        let eps = 1e-2f32;
        let coords: Vec<usize> = (0..x.numel()).step_by((x.numel() / 6).max(1)).collect();
        for &c in &coords {
            let mut xp = x.clone();
            xp.data_mut()[c] += eps;
            let mut xm = x.clone();
            xm.data_mut()[c] -= eps;
            let lp = layer.forward(&xp).mul(&probe).sum();
            let lm = layer.forward(&xm).mul(&probe).sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = dx.data()[c];
            assert!(
                (fd - an).abs() < tol * (1.0 + fd.abs().max(an.abs())),
                "input coord {c}: finite-diff {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn linear_param_grads_match_finite_difference() {
        let mut rng = Pcg64::seeded(1);
        let mut l = Linear::new(5, 4, &mut rng);
        let x = init::uniform([3, 5], -1.0, 1.0, &mut rng);
        grad_check(&mut l, &x, 1e-2);
    }

    #[test]
    fn linear_input_grads_match_finite_difference() {
        let mut rng = Pcg64::seeded(2);
        let mut l = Linear::new(5, 4, &mut rng);
        let x = init::uniform([3, 5], -1.0, 1.0, &mut rng);
        input_grad_check(&mut l, &x, 1e-2);
    }

    #[test]
    fn frozen_linear_accumulates_no_grads() {
        let mut rng = Pcg64::seeded(3);
        let mut l = Linear::new_frozen(4, 4, &mut rng);
        let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
        let y = l.forward(&x);
        l.backward(&Tensor::ones(y.shape().clone()));
        l.visit_params(&mut |p| assert_eq!(p.grad.sum(), 0.0, "{} has grad", p.name));
    }

    #[test]
    fn activation_grads_match_finite_difference() {
        let mut rng = Pcg64::seeded(4);
        for kind in [
            ActKind::Relu,
            ActKind::Tanh,
            ActKind::Sigmoid,
            ActKind::Gelu,
        ] {
            let mut l = Activation::new(kind);
            // Stay away from relu's kink at 0.
            let x = init::uniform([2, 6], 0.1, 1.5, &mut rng);
            input_grad_check(&mut l, &x, 2e-2);
        }
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut rng = Pcg64::seeded(5);
        let mut l = LayerNorm::new(8);
        let x = init::uniform([3, 8], -5.0, 5.0, &mut rng);
        let y = l.forward(&x);
        for r in 0..3 {
            let row = &y.data()[r * 8..(r + 1) * 8];
            let mean = row.iter().sum::<f32>() / 8.0;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_grads_match_finite_difference() {
        let mut rng = Pcg64::seeded(6);
        let mut l = LayerNorm::new(6);
        let x = init::uniform([3, 6], -2.0, 2.0, &mut rng);
        grad_check(&mut l, &x, 2e-2);
        input_grad_check(&mut l, &x, 2e-2);
    }

    #[test]
    fn conv1d_output_shape() {
        let mut rng = Pcg64::seeded(7);
        let mut c = Conv1d::new(2, 3, 4, &mut rng);
        let x = init::uniform([2, 2, 10], -1.0, 1.0, &mut rng);
        let y = c.forward(&x);
        assert_eq!(y.shape().dims(), &[2, 3, 7]);
    }

    #[test]
    fn conv1d_grads_match_finite_difference() {
        let mut rng = Pcg64::seeded(8);
        let mut c = Conv1d::new(2, 2, 3, &mut rng);
        let x = init::uniform([2, 2, 6], -1.0, 1.0, &mut rng);
        grad_check(&mut c, &x, 2e-2);
        input_grad_check(&mut c, &x, 2e-2);
    }

    #[test]
    fn embedding_mean_pools() {
        let mut rng = Pcg64::seeded(9);
        let mut e = Embedding::new(10, 4, &mut rng);
        let ids = Tensor::new([1, 2], vec![3.0, 7.0]);
        let y = e.forward(&ids);
        let w = &e.weight.value;
        for d in 0..4 {
            let expect = 0.5 * (w.data()[3 * 4 + d] + w.data()[7 * 4 + d]);
            assert!((y.data()[d] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn embedding_weight_grads_scatter() {
        let mut rng = Pcg64::seeded(10);
        let mut e = Embedding::new(10, 2, &mut rng);
        let ids = Tensor::new([1, 2], vec![1.0, 1.0]); // same token twice
        let _y = e.forward(&ids);
        e.backward(&Tensor::new([1, 2], vec![1.0, 2.0]));
        // Both occurrences scatter grad/seq to token 1's row.
        assert!((e.weight.grad.data()[2] - 1.0).abs() < 1e-6);
        assert!((e.weight.grad.data()[3] - 2.0).abs() < 1e-6);
        // Untouched rows stay zero.
        assert_eq!(e.weight.grad.data()[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn embedding_rejects_out_of_vocab() {
        let mut rng = Pcg64::seeded(11);
        let mut e = Embedding::new(4, 2, &mut rng);
        e.forward(&Tensor::new([1, 1], vec![9.0]));
    }

    #[test]
    fn to_channels_reshape_roundtrip() {
        let mut tc = ToChannels::new(2);
        let x = Tensor::new([3, 8], (0..24).map(|i| i as f32).collect());
        let y = tc.forward(&x);
        assert_eq!(y.shape().dims(), &[3, 2, 4]);
        let back = tc.backward(&y);
        assert_eq!(back, x);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn to_channels_rejects_indivisible_features() {
        ToChannels::new(3).forward(&Tensor::zeros([2, 8]));
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::new([2, 3, 4], (0..24).map(|i| i as f32).collect());
        let y = f.forward(&x);
        assert_eq!(y.shape().dims(), &[2, 12]);
        let back = f.backward(&y);
        assert_eq!(back, x);
    }

    #[test]
    fn residual_adds_skip_path() {
        let mut r = Residual::new(); // empty inner stack: y = x + x
        let x = Tensor::from_slice(&[1.0, 2.0]).reshape([1, 2]);
        assert_eq!(r.forward(&x).data(), &[2.0, 4.0]);
        let g = r.backward(&Tensor::new([1, 2], vec![1.0, 1.0]));
        assert_eq!(g.data(), &[2.0, 2.0]);
    }

    #[test]
    fn residual_grads_match_finite_difference() {
        let mut rng = Pcg64::seeded(12);
        let mut r = Residual::new()
            .push(Linear::new(4, 4, &mut rng))
            .push(Activation::tanh());
        let x = init::uniform([2, 4], -1.0, 1.0, &mut rng);
        grad_check(&mut r, &x, 2e-2);
        input_grad_check(&mut r, &x, 2e-2);
    }

    #[test]
    fn frozen_backbone_has_large_frozen_state() {
        let mut rng = Pcg64::seeded(13);
        let mut fb = FrozenBackbone::new(4, 4, 10_000, &mut rng);
        let mut total = 0;
        let mut frozen = 0;
        fb.visit_params(&mut |p| {
            total += p.value.numel();
            if p.frozen {
                frozen += p.value.numel();
            }
        });
        assert_eq!(total, frozen, "backbone must be fully frozen");
        assert!(total > 10_000);
        let x = Tensor::ones([1, 4]);
        let y = fb.forward(&x);
        fb.backward(&Tensor::ones(y.shape().clone()));
        fb.visit_params(&mut |p| assert_eq!(p.grad.sum(), 0.0));
    }
}
