//! Model builders: miniature live counterparts of the paper's Table 3
//! workloads.
//!
//! | Paper workload | Architecture here | Regime reproduced |
//! |---|---|---|
//! | Cifr / ImgN (SqueezeNet) | [`mlp`] | small model, long training |
//! | RsNt (ResNet-152)        | [`resnet_mini`] | deep residual net, big checkpoints |
//! | Wiki (RoBERTa train)     | [`textnet`] | embedding-heavy language model |
//! | RTE / CoLA (RoBERTa fine-tune) | [`finetune_net`] | enormous frozen mass, tiny trainable head |
//! | Jasp (Jasper speech)     | [`convnet1d`] | 1-D conv stack |
//! | RnnT (RNN w/ attention)  | [`textnet`] with deeper head | sequence classification |

use crate::layer::{
    Activation, Conv1d, Embedding, Flatten, FrozenBackbone, LayerNorm, Linear, Residual, ToChannels,
};
use crate::module::Sequential;
use flor_tensor::Pcg64;

/// Plain multi-layer perceptron: `depth` hidden ReLU layers.
pub fn mlp(
    input: usize,
    hidden: usize,
    classes: usize,
    depth: usize,
    rng: &mut Pcg64,
) -> Sequential {
    assert!(depth >= 1, "mlp needs at least one hidden layer");
    let mut m = Sequential::new("mlp")
        .push(Linear::new(input, hidden, rng))
        .push(Activation::relu());
    for _ in 1..depth {
        m = m
            .push(Linear::new(hidden, hidden, rng))
            .push(Activation::relu());
    }
    m.push(Linear::new(hidden, classes, rng))
}

/// Residual MLP: `blocks` residual blocks of (Linear → ReLU → Linear) around
/// a skip connection, ResNet-style.
pub fn resnet_mini(
    input: usize,
    hidden: usize,
    classes: usize,
    blocks: usize,
    rng: &mut Pcg64,
) -> Sequential {
    let mut m = Sequential::new("resnet_mini")
        .push(Linear::new(input, hidden, rng))
        .push(Activation::relu());
    for _ in 0..blocks {
        // Zero-init residual: each block starts as the identity, so deep
        // stacks neither blow up activations at init nor need warmup.
        m = m.push(
            Residual::new()
                .push(Linear::new(hidden, hidden, rng))
                .push(Activation::relu())
                .push(Linear::new_zero(hidden, hidden)),
        );
    }
    m.push(Activation::relu())
        .push(Linear::new(hidden, classes, rng))
}

/// 1-D convolutional classifier (Jasper-style): conv stack → flatten → head.
///
/// Input is `[batch, in_ch, len]`.
pub fn convnet1d(
    in_ch: usize,
    channels: usize,
    kernel: usize,
    len: usize,
    classes: usize,
    rng: &mut Pcg64,
) -> Sequential {
    let l1 = len - kernel + 1;
    let l2 = l1 - kernel + 1;
    assert!(l2 > 0, "input too short for two conv layers");
    Sequential::new("convnet1d")
        .push(Conv1d::new(in_ch, channels, kernel, rng))
        .push(Activation::relu())
        .push(Conv1d::new(channels, channels, kernel, rng))
        .push(Activation::relu())
        .push(Flatten::new())
        .push(Linear::new(channels * l2, classes, rng))
}

/// 1-D convolutional classifier over *flat feature batches* (the speech
/// workload's script-level form): features are split into `channels` bands,
/// convolved twice, flattened, and classified.
///
/// Input is `[batch, features]` with `features % channels == 0`.
pub fn convnet1d_flat(
    features: usize,
    channels: usize,
    conv_channels: usize,
    kernel: usize,
    classes: usize,
    rng: &mut Pcg64,
) -> Sequential {
    assert_eq!(features % channels, 0, "features must split into channels");
    let len = features / channels;
    let l1 = len - kernel + 1;
    let l2 = l1 - kernel + 1;
    assert!(l2 > 0, "feature bands too short for two conv layers");
    Sequential::new("convnet1d_flat")
        .push(ToChannels::new(channels))
        .push(Conv1d::new(channels, conv_channels, kernel, rng))
        .push(Activation::relu())
        .push(Conv1d::new(conv_channels, conv_channels, kernel, rng))
        .push(Activation::relu())
        .push(Flatten::new())
        .push(Linear::new(conv_channels * l2, classes, rng))
}

/// Text classifier (RoBERTa-miniature): embedding (mean-pooled) → layer norm
/// → MLP head. Input is `[batch, seq]` token ids.
pub fn textnet(vocab: usize, dim: usize, classes: usize, rng: &mut Pcg64) -> Sequential {
    Sequential::new("textnet")
        .push(Embedding::new(vocab, dim, rng))
        .push(LayerNorm::new(dim))
        .push(Linear::new(dim, dim, rng))
        .push(Activation::gelu())
        .push(Linear::new(dim, classes, rng))
}

/// Fine-tuning model (RTE/CoLA-miniature): a fully frozen backbone with
/// `ballast_numel` extra frozen weights, plus a small trainable head.
///
/// The frozen mass dominates checkpoint size while contributing nothing to
/// the gradient step — the exact regime where the paper's adaptive
/// checkpointing switches from every-iteration to periodic checkpoints.
pub fn finetune_net(
    input: usize,
    hidden: usize,
    classes: usize,
    ballast_numel: usize,
    rng: &mut Pcg64,
) -> Sequential {
    Sequential::new("finetune_net")
        .push(FrozenBackbone::new(input, hidden, ballast_numel, rng))
        .push(Activation::relu())
        .push(Linear::new(hidden, classes, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticClassification;
    use crate::loss::CrossEntropyLoss;
    use crate::metrics::accuracy;
    use crate::optim::{Optimizer, Sgd};
    use flor_tensor::Tensor;

    /// Trains a model on an easy dataset and asserts that it actually learns.
    fn assert_learns(model: &mut Sequential, lr: f32) {
        let data = SyntheticClassification::generate(120, 8, 3, 0.25, 42);
        let mut opt = Sgd::new(lr, 0.9, 0.0);
        let mut loss_fn = CrossEntropyLoss::new();
        let all: Vec<usize> = (0..data.len()).collect();
        let (x, y) = data.gather(&all);
        let logits0 = model.forward(&x);
        let acc0 = accuracy(&logits0, &y);
        for _ in 0..60 {
            let logits = model.forward(&x);
            let _ = loss_fn.forward(&logits, &y);
            model.zero_grad();
            model.backward(&loss_fn.backward());
            opt.step(model);
        }
        let logits1 = model.forward(&x);
        let acc1 = accuracy(&logits1, &y);
        assert!(
            acc1 > 0.9 && acc1 > acc0,
            "model should learn: acc {acc0} -> {acc1}"
        );
    }

    #[test]
    fn mlp_learns() {
        let mut rng = Pcg64::seeded(1);
        let mut m = mlp(8, 16, 3, 2, &mut rng);
        assert_learns(&mut m, 0.1);
    }

    #[test]
    fn resnet_mini_learns() {
        let mut rng = Pcg64::seeded(2);
        let mut m = resnet_mini(8, 16, 3, 2, &mut rng);
        assert_learns(&mut m, 0.05);
    }

    #[test]
    fn finetune_net_learns_with_frozen_backbone() {
        let mut rng = Pcg64::seeded(3);
        let mut m = finetune_net(8, 32, 3, 5_000, &mut rng);
        let frozen_before = {
            let mut sum = 0.0;
            m.visit_params(&mut |p| {
                if p.frozen {
                    sum += p.value.sum();
                }
            });
            sum
        };
        assert_learns(&mut m, 0.1);
        let frozen_after = {
            let mut sum = 0.0;
            m.visit_params(&mut |p| {
                if p.frozen {
                    sum += p.value.sum();
                }
            });
            sum
        };
        assert_eq!(frozen_before, frozen_after, "frozen mass must not move");
        assert!(
            m.numel_trainable() * 10 < m.numel(),
            "head is a small fraction"
        );
    }

    #[test]
    fn convnet1d_flat_learns() {
        let mut rng = Pcg64::seeded(6);
        let mut m = convnet1d_flat(8, 2, 6, 2, 3, &mut rng);
        assert_learns(&mut m, 0.05);
    }

    #[test]
    fn textnet_forward_shape() {
        let mut rng = Pcg64::seeded(4);
        let mut m = textnet(50, 16, 4, &mut rng);
        let ids = Tensor::new([3, 6], vec![1.0; 18]);
        assert_eq!(m.forward(&ids).shape().dims(), &[3, 4]);
    }

    #[test]
    fn convnet1d_forward_shape() {
        let mut rng = Pcg64::seeded(5);
        let mut m = convnet1d(2, 4, 3, 12, 5, &mut rng);
        let x = Tensor::zeros([2, 2, 12]);
        assert_eq!(m.forward(&x).shape().dims(), &[2, 5]);
    }
}
