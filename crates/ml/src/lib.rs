//! # flor-ml
//!
//! A miniature deep-learning library: the PyTorch stand-in for the flor-rs
//! reproduction of *Hindsight Logging for Model Training* (Garcia et al.,
//! VLDB 2020).
//!
//! The paper's lean checkpointing (§5.2) assumes training-loop bodies are
//! "predominantly written in PyTorch" and encodes exactly two library facts:
//!
//! 1. the **model** may be updated via the **optimizer** (`optimizer.step()`),
//! 2. the **optimizer** may be updated via the **learning-rate scheduler**
//!    (`scheduler.step()`).
//!
//! This crate reproduces that interface shape — [`Sequential`] models built
//! from [`layer`]s, [`optim`] optimizers that mutate model parameters through
//! a shared reference, and [`sched`] schedulers that mutate the optimizer —
//! so Flor's side-effect analysis, changeset augmentation, and checkpoint
//! contents are exercised exactly as in the paper. Training is *real*:
//! layers carry hand-written backward passes (verified against finite
//! differences), so losses genuinely decrease and replay log fingerprints are
//! meaningful.
//!
//! Everything is deterministic given a seed; all state (parameters, optimizer
//! moments, scheduler counters, RNG words) is exposed for checkpointing via
//! `state_dict`-style APIs.

#![warn(missing_docs)]

pub mod data;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod module;
pub mod optim;
pub mod sched;
pub mod swa;

pub use data::{DataLoader, SyntheticClassification, SyntheticTokens};
pub use layer::{
    Activation, Conv1d, Embedding, FrozenBackbone, Layer, LayerNorm, Linear, Residual, ToChannels,
};
pub use loss::CrossEntropyLoss;
pub use module::{Param, Sequential, StateDict};
pub use optim::{Adam, Optimizer, Sgd};
pub use sched::{CosineLr, CyclicLr, Scheduler, StepLr};
