//! Training metrics: the "standard metrics that get logged on model training"
//! which the paper notes "form a fairly unique fingerprint of a model's
//! training characteristics" (§5.2.2) — the basis of Flor's deferred
//! correctness checks.

use flor_tensor::Tensor;

/// Fraction of rows whose argmax matches the target class.
///
/// # Panics
/// Panics if `logits` row count differs from `targets.len()`.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    let preds = logits.argmax_rows();
    assert_eq!(preds.len(), targets.len(), "one target per row");
    if targets.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(targets).filter(|(p, t)| *p == *t).count();
    correct as f32 / targets.len() as f32
}

/// Running average of a stream of scalars (loss meters in training loops).
#[derive(Debug, Clone, Default)]
pub struct Meter {
    sum: f64,
    count: u64,
}

impl Meter {
    /// New empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a meter from checkpointed parts.
    pub fn restore(mean: f32, count: u64) -> Self {
        Meter {
            sum: mean as f64 * count as f64,
            count,
        }
    }

    /// Adds an observation.
    pub fn update(&mut self, value: f32) {
        self.sum += value as f64;
        self.count += 1;
    }

    /// Current mean, or 0.0 before any observation.
    pub fn mean(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum / self.count as f64) as f32
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Clears the meter (start of a new epoch).
    pub fn reset(&mut self) {
        self.sum = 0.0;
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::new([3, 2], vec![2.0, 0.0, 0.0, 2.0, 2.0, 0.0]);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
    }

    #[test]
    fn accuracy_empty_is_zero() {
        assert_eq!(accuracy(&Tensor::zeros([0, 3]), &[]), 0.0);
    }

    #[test]
    fn meter_mean_and_reset() {
        let mut m = Meter::new();
        assert_eq!(m.mean(), 0.0);
        m.update(1.0);
        m.update(3.0);
        assert_eq!(m.mean(), 2.0);
        assert_eq!(m.count(), 2);
        m.reset();
        assert_eq!(m.mean(), 0.0);
    }
}
