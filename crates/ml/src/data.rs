//! Synthetic datasets and the data loader.
//!
//! The paper evaluates on CIFAR, ImageNet, GLUE, LibriSpeech and WMT16 —
//! none of which are available offline, and none of which matter for Flor's
//! mechanisms beyond their *scale*. We substitute deterministic synthetic
//! datasets that are genuinely learnable (Gaussian mixtures for
//! classification, token-distribution tasks for text) so that training
//! metrics move and replay fingerprints are informative.

use flor_tensor::{Pcg64, Tensor};

/// A labelled classification dataset: Gaussian clusters, one per class.
///
/// Learnable but not trivially separable (cluster spread is configurable),
/// so loss curves look like real training.
pub struct SyntheticClassification {
    features: Tensor, // [n, dim]
    labels: Vec<usize>,
    dim: usize,
    classes: usize,
}

impl SyntheticClassification {
    /// Generates `n` examples of dimension `dim` across `classes` Gaussian
    /// clusters with the given intra-cluster standard deviation.
    pub fn generate(n: usize, dim: usize, classes: usize, spread: f32, seed: u64) -> Self {
        assert!(
            classes > 0 && dim > 0,
            "need at least one class and one dim"
        );
        let mut rng = Pcg64::new(seed, 101);
        // Class centers on a scaled hypercube-ish lattice.
        let centers: Vec<Vec<f32>> = (0..classes)
            .map(|_| (0..dim).map(|_| rng.uniform(-2.0, 2.0)).collect())
            .collect();
        let mut data = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes; // balanced classes
            for &center in &centers[c] {
                data.push(center + spread * rng.normal());
            }
            labels.push(c);
        }
        SyntheticClassification {
            features: Tensor::new([n, dim], data),
            labels,
            dim,
            classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Copies the examples at `indices` into a `([batch, dim], labels)` pair.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(indices.len() * self.dim);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.features.data()[i * self.dim..(i + 1) * self.dim]);
            labels.push(self.labels[i]);
        }
        (Tensor::new([indices.len(), self.dim], data), labels)
    }
}

/// A labelled token-sequence dataset (GLUE-style miniature): each example is
/// `seq` token ids whose distribution depends on the class.
pub struct SyntheticTokens {
    tokens: Tensor, // [n, seq] of ids stored as f32
    labels: Vec<usize>,
    seq: usize,
    vocab: usize,
    classes: usize,
}

impl SyntheticTokens {
    /// Generates `n` sequences of length `seq` over `vocab` tokens across
    /// `classes` classes. Each class draws preferentially from its own slice
    /// of the vocabulary, so the task is learnable by an embedding model.
    pub fn generate(n: usize, seq: usize, vocab: usize, classes: usize, seed: u64) -> Self {
        assert!(vocab >= classes * 2, "vocab too small for class structure");
        let mut rng = Pcg64::new(seed, 202);
        let slice = vocab / classes;
        let mut tokens = Vec::with_capacity(n * seq);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % classes;
            for _ in 0..seq {
                // 70% from the class's slice, 30% background noise.
                let id = if rng.next_f32() < 0.7 {
                    c * slice + rng.below(slice as u32) as usize
                } else {
                    rng.below(vocab as u32) as usize
                };
                tokens.push(id as f32);
            }
            labels.push(c);
        }
        SyntheticTokens {
            tokens: Tensor::new([n, seq], tokens),
            labels,
            seq,
            vocab,
            classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Sequence length.
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Copies the examples at `indices` into a `([batch, seq], labels)` pair.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(indices.len() * self.seq);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&self.tokens.data()[i * self.seq..(i + 1) * self.seq]);
            labels.push(self.labels[i]);
        }
        (Tensor::new([indices.len(), self.seq], data), labels)
    }
}

/// Deterministic shuffling batcher.
///
/// The loader owns a [`Pcg64`]; its state is part of Flor checkpoints, so a
/// replay worker resuming at epoch `k` shuffles exactly as record did.
pub struct DataLoader {
    n: usize,
    batch_size: usize,
    rng: Pcg64,
}

impl DataLoader {
    /// New loader over `n` examples with the given batch size and seed.
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        DataLoader {
            n,
            batch_size,
            rng: Pcg64::new(seed, 303),
        }
    }

    /// Number of batches per epoch (final partial batch included).
    pub fn batches_per_epoch(&self) -> usize {
        self.n.div_ceil(self.batch_size)
    }

    /// Produces the shuffled index batches for the next epoch, advancing the
    /// internal RNG.
    pub fn next_epoch(&mut self) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..self.n).collect();
        self.rng.shuffle(&mut order);
        order.chunks(self.batch_size).map(|c| c.to_vec()).collect()
    }

    /// RNG words for checkpointing.
    pub fn rng_state(&self) -> (u64, u64) {
        self.rng.state()
    }

    /// Restores RNG words from a checkpoint.
    pub fn restore_rng(&mut self, state: u64, inc: u64) {
        self.rng = Pcg64::restore(state, inc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_deterministic() {
        let a = SyntheticClassification::generate(50, 4, 3, 0.3, 9);
        let b = SyntheticClassification::generate(50, 4, 3, 0.3, 9);
        assert_eq!(a.features.data(), b.features.data());
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn classification_balanced_classes() {
        let d = SyntheticClassification::generate(30, 4, 3, 0.3, 1);
        for c in 0..3 {
            assert_eq!(d.labels.iter().filter(|&&l| l == c).count(), 10);
        }
    }

    #[test]
    fn gather_shapes() {
        let d = SyntheticClassification::generate(10, 4, 2, 0.3, 1);
        let (x, y) = d.gather(&[0, 3, 7]);
        assert_eq!(x.shape().dims(), &[3, 4]);
        assert_eq!(y.len(), 3);
        assert_eq!(y, vec![d.labels[0], d.labels[3], d.labels[7]]);
    }

    #[test]
    fn tokens_within_vocab() {
        let d = SyntheticTokens::generate(40, 8, 20, 4, 2);
        assert!(d
            .tokens
            .data()
            .iter()
            .all(|&t| t >= 0.0 && (t as usize) < 20));
    }

    #[test]
    fn tokens_class_signal_exists() {
        // Class 0 should use tokens from its slice noticeably more often.
        let d = SyntheticTokens::generate(200, 16, 40, 4, 3);
        let slice = 10;
        let mut in_slice = 0;
        let mut total = 0;
        for (i, &label) in d.labels.iter().enumerate() {
            if label == 0 {
                for s in 0..16 {
                    let t = d.tokens.data()[i * 16 + s] as usize;
                    if t < slice {
                        in_slice += 1;
                    }
                    total += 1;
                }
            }
        }
        let frac = in_slice as f32 / total as f32;
        assert!(frac > 0.5, "class-0 tokens in own slice: {frac}");
    }

    #[test]
    fn loader_covers_all_indices() {
        let mut dl = DataLoader::new(25, 4, 5);
        let batches = dl.next_epoch();
        assert_eq!(batches.len(), 7);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn loader_epochs_differ_but_are_replayable() {
        let mut dl = DataLoader::new(16, 4, 5);
        let e1 = dl.next_epoch();
        let saved = dl.rng_state();
        let e2 = dl.next_epoch();
        assert_ne!(e1, e2, "epochs should shuffle differently");
        // Restore → same epoch again.
        dl.restore_rng(saved.0, saved.1);
        assert_eq!(dl.next_epoch(), e2);
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn loader_rejects_zero_batch() {
        DataLoader::new(10, 0, 1);
    }
}
