//! Learning-rate schedulers: the objects that *mutate the optimizer*.
//!
//! Encoded library fact (b) from the paper's §5.2.1: "the optimizer may be
//! updated via the learning rate schedule". Flor's changeset augmentation
//! follows `scheduler → optimizer → model` at runtime, so a training loop
//! that only calls `scheduler.step()` still checkpoints the whole chain.

use crate::module::StateDict;
use crate::optim::Optimizer;
use flor_tensor::Tensor;

/// A learning-rate schedule, stepped once per epoch.
pub trait Scheduler {
    /// Advances the schedule one epoch and writes the new learning rate into
    /// the optimizer.
    fn step(&mut self, optim: &mut dyn Optimizer);

    /// The learning rate the schedule would assign at its current epoch.
    fn current_lr(&self) -> f32;

    /// Snapshot of schedule state (epoch counter and hyperparameters).
    fn state_dict(&self) -> StateDict;

    /// Restores state captured by [`Scheduler::state_dict`].
    fn load_state_dict(&mut self, sd: &StateDict);
}

/// Multiplies the learning rate by `gamma` every `step_size` epochs.
pub struct StepLr {
    base_lr: f32,
    step_size: u32,
    gamma: f32,
    epoch: u32,
}

impl StepLr {
    /// New step schedule starting from `base_lr`.
    pub fn new(base_lr: f32, step_size: u32, gamma: f32) -> Self {
        assert!(step_size > 0, "step_size must be positive");
        StepLr {
            base_lr,
            step_size,
            gamma,
            epoch: 0,
        }
    }
}

impl Scheduler for StepLr {
    fn step(&mut self, optim: &mut dyn Optimizer) {
        self.epoch += 1;
        optim.set_lr(self.current_lr());
    }

    fn current_lr(&self) -> f32 {
        self.base_lr * self.gamma.powi((self.epoch / self.step_size) as i32)
    }

    fn state_dict(&self) -> StateDict {
        let mut sd = StateDict::new();
        sd.insert(
            "hyper",
            Tensor::from_slice(&[
                self.base_lr,
                self.step_size as f32,
                self.gamma,
                self.epoch as f32,
            ]),
        );
        sd
    }

    fn load_state_dict(&mut self, sd: &StateDict) {
        let h = sd.get("hyper").expect("StepLr state dict missing 'hyper'");
        let d = h.data();
        assert_eq!(d.len(), 4);
        self.base_lr = d[0];
        self.step_size = d[1] as u32;
        self.gamma = d[2];
        self.epoch = d[3] as u32;
    }
}

/// Cosine annealing from `base_lr` down to `eta_min` over `t_max` epochs.
pub struct CosineLr {
    base_lr: f32,
    eta_min: f32,
    t_max: u32,
    epoch: u32,
}

impl CosineLr {
    /// New cosine schedule.
    pub fn new(base_lr: f32, eta_min: f32, t_max: u32) -> Self {
        assert!(t_max > 0, "t_max must be positive");
        CosineLr {
            base_lr,
            eta_min,
            t_max,
            epoch: 0,
        }
    }
}

impl Scheduler for CosineLr {
    fn step(&mut self, optim: &mut dyn Optimizer) {
        self.epoch += 1;
        optim.set_lr(self.current_lr());
    }

    fn current_lr(&self) -> f32 {
        let t = (self.epoch.min(self.t_max)) as f32 / self.t_max as f32;
        self.eta_min
            + 0.5 * (self.base_lr - self.eta_min) * (1.0 + (std::f32::consts::PI * t).cos())
    }

    fn state_dict(&self) -> StateDict {
        let mut sd = StateDict::new();
        sd.insert(
            "hyper",
            Tensor::from_slice(&[
                self.base_lr,
                self.eta_min,
                self.t_max as f32,
                self.epoch as f32,
            ]),
        );
        sd
    }

    fn load_state_dict(&mut self, sd: &StateDict) {
        let h = sd
            .get("hyper")
            .expect("CosineLr state dict missing 'hyper'");
        let d = h.data();
        assert_eq!(d.len(), 4);
        self.base_lr = d[0];
        self.eta_min = d[1];
        self.t_max = d[2] as u32;
        self.epoch = d[3] as u32;
    }
}

/// Cyclical schedule oscillating between `min_lr` and `max_lr` with a
/// triangular wave of the given period.
///
/// Stochastic weight averaging — the technique Alice implements in the
/// paper's §2.1 scenario — uses cyclic schedules with "higher than usual
/// learning rate bounds", which is what inflates her gradient magnitudes and
/// (combined with weight decay) collapses training.
pub struct CyclicLr {
    min_lr: f32,
    max_lr: f32,
    period: u32,
    epoch: u32,
}

impl CyclicLr {
    /// New triangular cyclic schedule.
    pub fn new(min_lr: f32, max_lr: f32, period: u32) -> Self {
        assert!(period >= 2, "period must be at least 2");
        assert!(max_lr >= min_lr, "max_lr must be >= min_lr");
        CyclicLr {
            min_lr,
            max_lr,
            period,
            epoch: 0,
        }
    }
}

impl Scheduler for CyclicLr {
    fn step(&mut self, optim: &mut dyn Optimizer) {
        self.epoch += 1;
        optim.set_lr(self.current_lr());
    }

    fn current_lr(&self) -> f32 {
        let phase = (self.epoch % self.period) as f32 / self.period as f32; // [0, 1)
        let tri = 1.0 - (2.0 * phase - 1.0).abs(); // 0 → 1 → 0
        self.min_lr + (self.max_lr - self.min_lr) * tri
    }

    fn state_dict(&self) -> StateDict {
        let mut sd = StateDict::new();
        sd.insert(
            "hyper",
            Tensor::from_slice(&[
                self.min_lr,
                self.max_lr,
                self.period as f32,
                self.epoch as f32,
            ]),
        );
        sd
    }

    fn load_state_dict(&mut self, sd: &StateDict) {
        let h = sd
            .get("hyper")
            .expect("CyclicLr state dict missing 'hyper'");
        let d = h.data();
        assert_eq!(d.len(), 4);
        self.min_lr = d[0];
        self.max_lr = d[1];
        self.period = d[2] as u32;
        self.epoch = d[3] as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;

    #[test]
    fn step_lr_decays_at_boundaries() {
        let mut opt = Sgd::new(1.0, 0.0, 0.0);
        let mut sched = StepLr::new(1.0, 2, 0.1);
        let mut lrs = Vec::new();
        for _ in 0..6 {
            sched.step(&mut opt);
            lrs.push(opt.lr());
        }
        // epochs 1..=6: floor(e/2) = 0,1,1,2,2,3
        let expect = [1.0, 0.1, 0.1, 0.01, 0.01, 0.001];
        for (a, b) in lrs.iter().zip(expect) {
            assert!((a - b).abs() < 1e-9, "{lrs:?}");
        }
    }

    #[test]
    fn cosine_lr_endpoints() {
        let sched = CosineLr::new(1.0, 0.0, 10);
        assert!((sched.current_lr() - 1.0).abs() < 1e-6);
        let mut opt = Sgd::new(1.0, 0.0, 0.0);
        let mut sched = CosineLr::new(1.0, 0.0, 10);
        for _ in 0..10 {
            sched.step(&mut opt);
        }
        assert!(opt.lr() < 1e-6, "lr at t_max should hit eta_min");
    }

    #[test]
    fn cosine_lr_is_monotone_decreasing() {
        let mut opt = Sgd::new(1.0, 0.0, 0.0);
        let mut sched = CosineLr::new(1.0, 0.01, 20);
        let mut prev = f32::INFINITY;
        for _ in 0..20 {
            sched.step(&mut opt);
            assert!(opt.lr() <= prev);
            prev = opt.lr();
        }
    }

    #[test]
    fn cyclic_lr_oscillates() {
        let mut opt = Sgd::new(0.0, 0.0, 0.0);
        let mut sched = CyclicLr::new(0.1, 1.0, 4);
        let mut lrs = Vec::new();
        for _ in 0..8 {
            sched.step(&mut opt);
            lrs.push(opt.lr());
        }
        // period 4: phases 1/4, 2/4, 3/4, 0 → tri 0.5, 1.0, 0.5, 0.0 (twice)
        let expect = [0.55, 1.0, 0.55, 0.1, 0.55, 1.0, 0.55, 0.1];
        for (a, b) in lrs.iter().zip(expect) {
            assert!((a - b).abs() < 1e-6, "{lrs:?}");
        }
    }

    #[test]
    fn scheduler_state_roundtrip() {
        let mut opt = Sgd::new(1.0, 0.0, 0.0);
        let mut s1 = CosineLr::new(1.0, 0.0, 10);
        for _ in 0..4 {
            s1.step(&mut opt);
        }
        let mut s2 = CosineLr::new(0.0, 0.0, 1);
        s2.load_state_dict(&s1.state_dict());
        assert_eq!(s1.current_lr(), s2.current_lr());
        for _ in 0..3 {
            s1.step(&mut opt);
            let lr1 = opt.lr();
            s2.step(&mut opt);
            assert_eq!(lr1, opt.lr());
        }
    }

    #[test]
    #[should_panic(expected = "step_size must be positive")]
    fn step_lr_rejects_zero_step() {
        StepLr::new(1.0, 0, 0.5);
    }
}
