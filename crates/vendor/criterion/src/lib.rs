//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no cargo registry access, so this crate
//! implements the criterion API surface flor-rs's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `Throughput`, `BatchSize`, `BenchmarkId` — over a simple wall-clock
//! measurement loop. Output is one line per benchmark:
//!
//! ```text
//! codec/encode            time: 812.4 µs/iter (61 iters)  thrpt: 1.23 GiB/s
//! ```
//!
//! Numbers are indicative, not statistically rigorous; the point is that
//! `cargo bench` builds, runs, and reports without external dependencies.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration (reported in binary units).
    Bytes(u64),
    /// Bytes processed per iteration (reported in decimal units).
    BytesDecimal(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing for [`Bencher::iter_batched`]; the stub measures the
/// routine one batch at a time regardless of the hint.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing engine handed to benchmark closures.
pub struct Bencher {
    /// Total measured time across all iterations.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Measurement budget.
    target: Duration,
    /// Upper bound on iterations (keeps heavy benches quick).
    max_iters: u64,
}

impl Bencher {
    fn new(target: Duration, max_iters: u64) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            target,
            max_iters,
        }
    }

    /// Measures `routine` repeatedly until the time budget or iteration
    /// cap is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup iteration.
        black_box(routine());
        let started = Instant::now();
        while self.iters < self.max_iters && started.elapsed() < self.target {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let started = Instant::now();
        while self.iters < self.max_iters && started.elapsed() < self.target {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        black_box(routine(&mut setup()));
        let started = Instant::now();
        while self.iters < self.max_iters && started.elapsed() < self.target {
            let mut input = setup();
            let t0 = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// Top-level harness state.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            target: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) criterion CLI arguments such as `--bench`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            target: self.target,
            sample_cap: 10_000,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let target = self.target;
        self.benchmark_group(name.to_string())
            .run("", target, 10_000, None, f);
        self
    }
}

/// A group of related benchmarks sharing throughput and sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    target: Duration,
    sample_cap: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Caps the number of measured iterations (criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_cap = n as u64;
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.target = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let (target, cap, thrpt) = (self.target, self.sample_cap, self.throughput);
        self.run(&id.id, target, cap, thrpt, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let (target, cap, thrpt) = (self.target, self.sample_cap, self.throughput);
        self.run(&id.id, target, cap, thrpt, |b| f(b, input));
        self
    }

    /// Finishes the group (printing already happened per-benchmark).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(
        &self,
        id: &str,
        target: Duration,
        cap: u64,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut bencher = Bencher::new(target, cap);
        f(&mut bencher);
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        if bencher.iters == 0 {
            println!("{label:<40} (no measured iterations)");
            return;
        }
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
        let mut line = format!(
            "{label:<40} time: {} ({} iters)",
            fmt_time(per_iter),
            bencher.iters
        );
        if let Some(t) = throughput {
            line.push_str(&format!("  thrpt: {}", fmt_throughput(t, per_iter)));
        }
        println!("{line}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns/iter", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.1} µs/iter", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms/iter", secs * 1e3)
    } else {
        format!("{secs:.3} s/iter")
    }
}

fn fmt_throughput(t: Throughput, per_iter_secs: f64) -> String {
    match t {
        Throughput::Bytes(n) => {
            let rate = n as f64 / per_iter_secs;
            const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
            const MIB: f64 = 1024.0 * 1024.0;
            if rate >= GIB {
                format!("{:.2} GiB/s", rate / GIB)
            } else {
                format!("{:.2} MiB/s", rate / MIB)
            }
        }
        Throughput::BytesDecimal(n) => {
            format!("{:.2} MB/s", n as f64 / per_iter_secs / 1e6)
        }
        Throughput::Elements(n) => {
            format!("{:.2} Melem/s", n as f64 / per_iter_secs / 1e6)
        }
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Bytes(1024));
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter("x2"), &2u64, |b, &m| {
            b.iter(|| m * 21)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_all_shapes() {
        benches();
    }

    #[test]
    fn formatting() {
        assert!(fmt_time(5e-9).ends_with("ns/iter"));
        assert!(fmt_time(5e-5).contains("µs"));
        assert!(fmt_time(5e-2).contains("ms"));
        assert!(fmt_throughput(Throughput::Elements(1_000_000), 1.0).contains("Melem/s"));
    }
}
