//! Vendored stand-in for the `bytes` crate.
//!
//! Implements the subset flor-rs uses: [`Bytes`] / [`BytesMut`] containers
//! and the [`Buf`] / [`BufMut`] cursor traits. Like the real crate, `Bytes`
//! is *refcounted*: clones and [`Buf::copy_to_bytes`] slices share one
//! backing allocation instead of copying, which is what makes checkpoint
//! payload handles cheap to pass between the training thread and the
//! background materializer. [`Bytes::from_owner`] admits arbitrary
//! shared-ownership backings (e.g. a tensor slab) without a copy.

#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

/// Read cursor over a byte container.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Returns up to all of the remaining bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    fn get_f64_le(&mut self) -> f64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        f64::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads `len` bytes into an owned [`Bytes`].
    ///
    /// # Panics
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write cursor over a growable byte container.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, x: f64) {
        self.put_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, x: u32) {
        self.put_slice(&x.to_le_bytes());
    }
}

/// An immutable, refcounted byte buffer with a read cursor.
///
/// Cloning, slicing via [`Buf::copy_to_bytes`], and freezing a [`BytesMut`]
/// all share one backing allocation; only [`Bytes::copy_from_slice`] copies.
#[derive(Clone)]
pub struct Bytes {
    owner: Arc<dyn AsRef<[u8]> + Send + Sync>,
    start: usize,
    end: usize,
    file_backed: bool,
}

impl Bytes {
    /// Copies a slice into a new buffer with the cursor at the start.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from_vec(src.to_vec())
    }

    /// Wraps an owned `Vec` without copying.
    pub fn from_vec(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            owner: Arc::new(data),
            start: 0,
            end,
            file_backed: false,
        }
    }

    /// Wraps an arbitrary shared-ownership backing (e.g. a tensor slab)
    /// without copying. The view covers `owner.as_ref()` in full.
    pub fn from_owner<T>(owner: T) -> Self
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let end = owner.as_ref().len();
        Bytes {
            owner: Arc::new(owner),
            start: 0,
            end,
            file_backed: false,
        }
    }

    /// Like [`Bytes::from_owner`], but marks the backing as *file-backed*
    /// (a memory mapping whose pages are reclaimable page cache rather
    /// than pinned heap). Memory accounting that would normally charge
    /// [`Bytes::backing_len`] for a slice (because a heap slice pins the
    /// whole allocation) should charge only the slice length for these —
    /// see [`Bytes::backing_is_file`].
    pub fn from_file_backed_owner<T>(owner: T) -> Self
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let mut b = Bytes::from_owner(owner);
        b.file_backed = true;
        b
    }

    /// Remaining bytes as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }

    /// Remaining length.
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// True when nothing remains.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Length of the whole backing allocation this view shares (≥
    /// `len()`). A zero-copy slice of a large buffer pins the entire
    /// backing; memory accounting must charge this, not the slice length.
    pub fn backing_len(&self) -> usize {
        (*self.owner).as_ref().len()
    }

    /// Identity of the backing allocation: two views share memory iff
    /// their backing ids are equal (the id stays valid exactly as long as
    /// some view of the backing is alive).
    pub fn backing_id(&self) -> usize {
        (*self.owner).as_ref().as_ptr() as usize
    }

    /// True when the backing came from [`Bytes::from_file_backed_owner`]:
    /// its memory is file pages the kernel can reclaim, not pinned heap,
    /// so holding a slice of it does not cost `backing_len()` of RAM.
    pub fn backing_is_file(&self) -> bool {
        self.file_backed
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::from_vec(Vec::new())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.end - self.start
    }

    fn chunk(&self) -> &[u8] {
        &(*self.owner).as_ref()[self.start..self.end]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.start += cnt;
    }

    /// Zero-copy: the returned slice shares this buffer's backing.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes past end of Bytes");
        let out = Bytes {
            owner: self.owner.clone(),
            start: self.start,
            end: self.start + len,
            file_backed: self.file_backed,
        };
        self.start += len;
        out
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.chunk() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.chunk() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

/// A growable byte buffer for encoding. Reusable: [`BytesMut::clear`] keeps
/// the allocation, which is what the checkpoint encode pool relies on.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Written bytes as an owned `Vec` (copies).
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Consumes the buffer into its backing `Vec` (no copy).
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Freezes into an immutable [`Bytes`] (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }

    /// Empties the buffer, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Current allocation size.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(0xAB);
        w.put_f64_le(2.5);
        w.put_slice(b"xyz");
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.remaining(), 12);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.copy_to_bytes(3).to_vec(), b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn overread_panics() {
        let mut r = Bytes::copy_from_slice(b"a");
        r.advance(2);
    }

    #[test]
    fn clone_shares_backing() {
        let a = Bytes::from_vec(vec![1, 2, 3, 4]);
        let mut b = a.clone();
        b.advance(2);
        // Clone has its own cursor but the same contents.
        assert_eq!(a.to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(b.to_vec(), vec![3, 4]);
    }

    #[test]
    fn copy_to_bytes_is_a_shared_slice() {
        let mut a = Bytes::from_vec((0u8..100).collect());
        a.advance(10);
        let s = a.copy_to_bytes(5);
        assert_eq!(s.to_vec(), vec![10, 11, 12, 13, 14]);
        assert_eq!(a.remaining(), 85);
    }

    #[test]
    fn backing_accessors_expose_the_shared_allocation() {
        let mut a = Bytes::from_vec((0u8..100).collect());
        a.advance(10);
        let s = a.copy_to_bytes(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.backing_len(), 100, "slice pins the whole backing");
        assert_eq!(s.backing_id(), a.backing_id(), "same allocation");
        let other = Bytes::from_vec(vec![1, 2, 3]);
        assert_ne!(other.backing_id(), a.backing_id());
        assert_eq!(other.backing_len(), 3);
    }

    #[test]
    fn from_owner_is_zero_copy_view() {
        struct Slab(Vec<u8>);
        impl AsRef<[u8]> for Slab {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        let b = Bytes::from_owner(Slab(vec![9, 8, 7]));
        assert_eq!(b.to_vec(), vec![9, 8, 7]);
    }

    #[test]
    fn freeze_and_clear_reuse() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"hello");
        assert_eq!(w.len(), 5);
        w.clear();
        assert!(w.is_empty());
        assert!(w.capacity() >= 64);
        w.put_slice(b"world");
        assert_eq!(w.freeze().to_vec(), b"world");
    }

    #[test]
    fn file_backed_flag_propagates_to_slices() {
        struct Mapped(Vec<u8>);
        impl AsRef<[u8]> for Mapped {
            fn as_ref(&self) -> &[u8] {
                &self.0
            }
        }
        let mut m = Bytes::from_file_backed_owner(Mapped((0u8..50).collect()));
        assert!(m.backing_is_file());
        m.advance(10);
        let s = m.copy_to_bytes(5);
        assert!(s.backing_is_file(), "zero-copy slice keeps the marker");
        assert_eq!(s.to_vec(), vec![10, 11, 12, 13, 14]);
        assert!(!Bytes::from_vec(vec![1]).backing_is_file());
    }

    #[test]
    fn equality_is_by_content() {
        assert_eq!(Bytes::from_vec(vec![1, 2]), Bytes::copy_from_slice(&[1, 2]));
        assert_eq!(Bytes::from_vec(vec![1, 2]), vec![1, 2]);
        assert_ne!(Bytes::from_vec(vec![1]), Bytes::from_vec(vec![2]));
    }
}
