//! Vendored stand-in for the `bytes` crate.
//!
//! Implements the subset flor-rs's codec uses: [`Bytes`] / [`BytesMut`]
//! containers and the [`Buf`] / [`BufMut`] cursor traits. Unlike the real
//! crate there is no refcounted zero-copy slicing — `Bytes` owns a `Vec`
//! plus a cursor, which is all the codec needs.

#![warn(missing_docs)]

/// Read cursor over a byte container.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Returns up to all of the remaining bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    fn get_f64_le(&mut self) -> f64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        f64::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads `len` bytes into an owned [`Bytes`].
    ///
    /// # Panics
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

/// Write cursor over a growable byte container.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, x: f64) {
        self.put_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, x: u32) {
        self.put_slice(&x.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into a new buffer with the cursor at the start.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// Remaining bytes as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// Remaining length.
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// True when nothing remains.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Written bytes as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(0xAB);
        w.put_f64_le(2.5);
        w.put_slice(b"xyz");
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.remaining(), 12);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.copy_to_bytes(3).to_vec(), b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn overread_panics() {
        let mut r = Bytes::copy_from_slice(b"a");
        r.advance(2);
    }
}
