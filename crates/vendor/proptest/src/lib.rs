//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no cargo registry access, so this crate
//! implements the proptest API surface flor-rs's property tests use:
//! the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive`, `any::<T>()`, ranges and `&str` regex literals as
//! strategies, tuple and [`collection::vec`] composition, `prop_oneof!`,
//! `Just`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros. Cases are sampled from a deterministic per-test RNG; failing
//! inputs are reported but **not shrunk** (the real crate minimizes
//! counterexamples — this stub favors zero dependencies over ergonomics).

#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG: SplitMix64 — tiny, seedable, good enough for test-case sampling.
// ---------------------------------------------------------------------------

/// Deterministic test-case RNG.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (resamples, up to a retry cap).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Builds a recursive strategy: `expand` receives the strategy for the
    /// previous level and returns the next. `depth` bounds nesting;
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<F, S2>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
        S2: Strategy<Value = Self::Value> + 'static,
    {
        let base: BoxedStrategy<Self::Value> = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let expanded = expand(level).boxed();
            // Each level is a 50/50 mix of the base and the expansion, so
            // generated trees have bounded expected size.
            level = Union {
                choices: vec![base.clone(), expanded],
            }
            .boxed();
        }
        level
    }

    /// Type-erases the strategy behind an `Arc` (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Cheaply-cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 samples in a row",
            self.reason
        );
    }
}

/// Uniform choice between strategies of a common value type
/// (the engine behind `prop_oneof!`).
pub struct Union<T> {
    /// The alternatives.
    pub choices: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].sample(rng)
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "arbitrary" strategy.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over all values of `T` (including edge cases like NaN for
/// floats, by sampling raw bit patterns).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix edge values in at ~6%: property tests lean on them.
                match rng.below(16) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(8) {
            0 => f64::from_bits(rng.next_u64()), // any pattern: NaN, inf, subnormals
            1 => 0.0,
            2 => -0.0,
            _ => (rng.unit_f64() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

// ---------------------------------------------------------------------------
// Ranges and regex literals as strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// `&str` literals act as regex-shaped string strategies. Supported subset:
/// literal characters, `.` (printable ASCII), character classes
/// `[a-z0-9_ ]` (ranges and literals, no negation), and `{m,n}` / `{n}`
/// repetition — which covers the patterns used in this repo's tests.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_regex(self, rng)
    }
}

enum RegexAtom {
    Literal(char),
    AnyPrintable,
    Class(Vec<(char, char)>),
}

fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let (atom, next) = parse_atom(&chars, i, pattern);
        i = next;
        // Optional repetition suffix.
        let (lo, hi, next) = parse_reps(&chars, i, pattern);
        i = next;
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(sample_atom(&atom, rng));
        }
    }
    out
}

fn parse_atom(chars: &[char], i: usize, pattern: &str) -> (RegexAtom, usize) {
    match chars[i] {
        '.' => (RegexAtom::AnyPrintable, i + 1),
        '[' => {
            let mut ranges = Vec::new();
            let mut j = i + 1;
            while j < chars.len() && chars[j] != ']' {
                if j + 2 < chars.len() && chars[j + 1] == '-' && chars[j + 2] != ']' {
                    ranges.push((chars[j], chars[j + 2]));
                    j += 3;
                } else {
                    ranges.push((chars[j], chars[j]));
                    j += 1;
                }
            }
            assert!(j < chars.len(), "unterminated class in regex {pattern:?}");
            (RegexAtom::Class(ranges), j + 1)
        }
        '\\' => (RegexAtom::Literal(chars[i + 1]), i + 2),
        c => (RegexAtom::Literal(c), i + 1),
    }
}

fn parse_reps(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    if i >= chars.len() || chars[i] != '{' {
        return (1, 1, i);
    }
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .unwrap_or_else(|| panic!("unterminated repetition in regex {pattern:?}"))
        + i;
    let body: String = chars[i + 1..close].iter().collect();
    let (lo, hi) = match body.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = body.trim().parse().unwrap();
            (n, n)
        }
    };
    (lo, hi, close + 1)
}

fn sample_atom(atom: &RegexAtom, rng: &mut TestRng) -> char {
    match atom {
        RegexAtom::Literal(c) => *c,
        RegexAtom::AnyPrintable => (0x20u8 + rng.below(0x5F) as u8) as char,
        RegexAtom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for (a, b) in ranges {
                let span = (*b as u64) - (*a as u64) + 1;
                if pick < span {
                    return char::from_u32(*a as u32 + pick as u32).unwrap();
                }
                pick -= span;
            }
            unreachable!()
        }
    }
}

// ---------------------------------------------------------------------------
// Tuples and collections
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
);

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing used by the proptest! macro
// ---------------------------------------------------------------------------

/// A failed test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias of [`TestCaseError::fail`] kept for API compatibility.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic seed for a named test (FNV-1a over the name).
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies with a common value type. Weighted
/// variants (`N => strat`) are not supported by this stub.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union { choices: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

/// Asserts inside a proptest case, failing the case (not panicking) on
/// violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}", a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "{}: {:?} != {:?}", format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Inequality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                a, b
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` sampling `cases` inputs from a deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let seed = $crate::seed_for(stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::seeded(seed.wrapping_add(case as u64));
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                    let inputs = [$(format!(
                        concat!(stringify!($arg), " = {:?}"), $arg
                    )),+].join(", ");
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {case}/{total} failed: {e}\n  inputs: {inputs}",
                            total = config.cases,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn regex_subset_sampler() {
        let mut rng = TestRng::seeded(42);
        for _ in 0..200 {
            let s = sample_regex("[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = sample_regex(".{0,32}", &mut rng);
            assert!(t.len() <= 32);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let sample = |seed| {
            let mut rng = TestRng::seeded(seed);
            collection::vec(any::<u64>(), 0..10).sample(&mut rng)
        };
        assert_eq!(sample(7), sample(7));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_shapes_compile(
            x in 1u64..100,
            v in collection::vec(any::<u8>(), 0..8),
            s in "[a-c]{1,3}",
            pick in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() < 8);
            prop_assert!(!s.is_empty() && s.len() <= 3, "bad len {}", s.len());
            prop_assert!(pick == 1 || pick == 2);
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
