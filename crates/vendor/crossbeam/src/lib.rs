//! Vendored stand-in for the `crossbeam` crate.
//!
//! Only the surface flor-rs uses: `crossbeam::channel::{unbounded, Sender,
//! Receiver}` — a multi-producer **multi-consumer** unbounded channel
//! (std's mpsc `Receiver` is not cloneable, so a stub is genuinely needed).
//! Backed by a `Mutex<VecDeque>` + `Condvar`; disconnection semantics match
//! crossbeam: `send` fails once every receiver is gone, `recv` drains the
//! queue and then fails once every sender is gone.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; cloneable (unlike std mpsc).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are dropped;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking receive: `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.0.state.lock().unwrap().queue.pop_front()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.0.state.lock().unwrap();
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                // Wake blocked receivers so they can observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.state.lock().unwrap().receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fan_out_to_cloned_receivers() {
        let (tx, rx) = unbounded::<u32>();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = 0;
                while rx.recv().is_ok() {
                    got += 1;
                }
                got
            }));
        }
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100, "every message consumed exactly once");
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn recv_drains_then_disconnects() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
