//! Vendored stand-in for the `parking_lot` crate.
//!
//! The build environment has no network path to a cargo registry, so this
//! workspace ships the subset of `parking_lot` it actually uses, backed by
//! `std::sync`. Semantics match `parking_lot` where it differs from std:
//! `lock()` returns the guard directly (no `Result`), and a panic while a
//! lock is held does **not** poison it for later users.

#![warn(missing_docs)]

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a previous panic under the lock is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "parking_lot locks do not poison");
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
