//! Criterion bench: tensor substrate kernels (sanity numbers for the
//! miniature workloads' compute costs).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flor_tensor::{init, ops, Pcg64, Tensor};

fn bench_tensor(c: &mut Criterion) {
    let mut rng = Pcg64::seeded(1);
    let a = init::uniform([64, 64], -1.0, 1.0, &mut rng);
    let b = init::uniform([64, 64], -1.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("tensor");
    group.throughput(Throughput::Elements(64 * 64 * 64));
    group.bench_function("matmul_64", |g| {
        g.iter(|| std::hint::black_box(&a).matmul(std::hint::black_box(&b)))
    });
    group.bench_function("softmax_rows", |g| {
        g.iter(|| ops::softmax_rows(std::hint::black_box(&a)))
    });
    let logits = init::uniform([64, 10], -2.0, 2.0, &mut rng);
    let targets: Vec<usize> = (0..64).map(|i| i % 10).collect();
    group.bench_function("cross_entropy", |g| {
        g.iter(|| ops::cross_entropy(std::hint::black_box(&logits), &targets))
    });
    let t = init::uniform([256 * 1024], -1.0, 1.0, &mut rng);
    group.bench_function("tensor_to_bytes_1mb", |g| {
        g.iter(|| std::hint::black_box(&t).to_bytes())
    });
    let bytes = t.to_bytes();
    group.bench_function("tensor_from_bytes_1mb", |g| {
        g.iter(|| Tensor::from_bytes(std::hint::black_box(&bytes)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_tensor);
criterion_main!(benches);
