//! Criterion bench: the registry serving layer's hot paths — catalog
//! lookup over many cataloged runs, query-key content addressing, and the
//! cached-query hit (the O(1) path repeated identical queries take).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flor_core::record::RecordOptions;
use flor_registry::{query_key, Registry, RunCatalog, RunRecord};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("flor-bench-registry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const TRAIN: &str = "\
import flor
data = synth_data(n=40, dim=8, classes=2, seed=5)
loader = dataloader(data, batch_size=20, seed=5)
net = mlp(input=8, hidden=8, classes=2, depth=1, seed=5)
optimizer = sgd(net, lr=0.1)
criterion = cross_entropy()
avg = meter()
for epoch in range(4):
    avg.reset()
    for batch in loader.epoch():
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
";

fn bench_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry");

    // Catalog lookup across a fleet of cataloged runs.
    let catalog = RunCatalog::open(tmpdir("catalog").join("CATALOG")).unwrap();
    for i in 0..1000 {
        catalog
            .register(RunRecord {
                run_id: format!("run-{i:04}"),
                generation: 0,
                source_version: format!("{i:016x}"),
                store_root: PathBuf::from(format!("/stores/run-{i:04}")),
                iterations: 200,
                checkpoints: 200,
                raw_bytes: 1 << 30,
                stored_bytes: 1 << 24,
                record_overhead: 0.05,
                scaling_c: 1.9,
            })
            .unwrap();
    }
    group.bench_function("catalog_lookup_1k_runs", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 997) % 1000;
            catalog.latest(&format!("run-{i:04}")).unwrap()
        })
    });
    group.bench_function("catalog_reload_1k_runs", |b| {
        b.iter(|| RunCatalog::open(catalog.path()).unwrap())
    });

    // Content addressing.
    let probed = TRAIN.replace(
        "    log(\"loss\", avg.mean())\n",
        "    log(\"loss\", avg.mean())\n    log(\"hindsight_wnorm\", net.weight_norm())\n",
    );
    group.throughput(Throughput::Bytes(probed.len() as u64));
    group.bench_function("query_key", |b| {
        b.iter(|| {
            query_key(
                "run-0500",
                3,
                "feedbeeffeedbeef",
                std::hint::black_box(&probed),
            )
        })
    });

    // Cached-query hit: record one real run, warm the cache, measure hits.
    let registry = Registry::open(tmpdir("service")).unwrap();
    registry
        .record_run("alice-cv", TRAIN, |o: &mut RecordOptions| {
            o.adaptive = false
        })
        .unwrap();
    let warm = registry.query("alice-cv", &probed, 2).unwrap();
    assert!(!warm.cached);
    group.throughput(Throughput::Elements(1));
    group.bench_function("cached_query_hit", |b| {
        b.iter(|| {
            let out = registry.query("alice-cv", &probed, 2).unwrap();
            assert!(out.cached);
            out
        })
    });
    group.finish();
}

criterion_group!(benches, bench_registry);
criterion_main!(benches);
