//! Criterion bench: serialization vs I/O cost (the paper's §5.1
//! microbenchmark — "serialization is typically much more expensive than
//! I/O: by an average factor of 4.3×").

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use flor_chkpt::{compress, decode, encode, CVal};

fn checkpoint_payload(tensors: usize, numel: usize) -> CVal {
    CVal::Map(
        (0..tensors)
            .map(|i| {
                let data: Vec<u8> = (0..numel * 4).map(|j| ((i * 31 + j) % 251) as u8).collect();
                (format!("param.{i}"), CVal::bytes(data))
            })
            .collect(),
    )
}

fn bench_codec(c: &mut Criterion) {
    let payload = checkpoint_payload(16, 16 * 1024);
    let encoded = encode(&payload);
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| encode(std::hint::black_box(&payload)))
    });
    group.bench_function("decode", |b| {
        b.iter(|| decode(std::hint::black_box(&encoded)).unwrap())
    });
    group.bench_function("compress", |b| {
        b.iter(|| compress::compress(std::hint::black_box(&encoded)))
    });
    let compressed = compress::compress(&encoded);
    group.bench_function("decompress", |b| {
        b.iter(|| compress::decompress(std::hint::black_box(&compressed)).unwrap())
    });
    // The paper's serialize-vs-write comparison: encode+compress (the
    // serialization side) vs a raw disk write of the encoded bytes.
    let dir = std::env::temp_dir().join(format!("flor-bench-codec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("payload.bin");
    group.bench_function("disk_write", |b| {
        b.iter_batched(
            || encoded.clone(),
            |bytes| std::fs::write(&path, bytes).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
