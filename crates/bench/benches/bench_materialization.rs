//! Criterion bench: Figure 5's strategies — main-thread cost of submitting
//! a checkpoint under each background-materialization strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flor_chkpt::{CheckpointStore, Materializer, Payload, SerializeSnapshot, Strategy};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct HeavySnapshot(Vec<u8>);

impl SerializeSnapshot for HeavySnapshot {
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.0.len());
        let mut acc = 0u8;
        for &b in &self.0 {
            acc = acc.wrapping_mul(31).wrapping_add(b);
            out.push(b ^ acc);
        }
        out
    }
    fn approx_bytes(&self) -> usize {
        self.0.len()
    }
}

fn bench_materialization(c: &mut Criterion) {
    let payload: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut group = c.benchmark_group("materialization_submit");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    for strategy in [
        Strategy::Baseline,
        Strategy::IpcQueue,
        Strategy::Plasma,
        Strategy::ForkBatched,
    ] {
        let dir = std::env::temp_dir().join(format!(
            "flor-bench-mat-{strategy:?}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(CheckpointStore::open(dir).unwrap());
        let mat = Materializer::new(store, strategy, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, _| {
                b.iter(|| {
                    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
                    mat.submit(
                        "bench",
                        seq,
                        Payload::Deferred(Arc::new(HeavySnapshot(payload.clone()))),
                    );
                });
            },
        );
        mat.flush();
    }
    group.finish();
}

criterion_group!(benches, bench_materialization);
criterion_main!(benches);
