//! Criterion bench: live record overhead (Figure 11's live counterpart) —
//! vanilla execution vs recorded execution of the cv_train mini workload.

use criterion::{criterion_group, criterion_main, Criterion};
use flor_bench::scripts;
use flor_core::record::{record, run_vanilla, RecordOptions};
use std::sync::atomic::{AtomicU64, Ordering};

fn bench_record(c: &mut Criterion) {
    static RUN: AtomicU64 = AtomicU64::new(0);
    let mut group = c.benchmark_group("record_vs_vanilla");
    group.sample_size(10);
    group.bench_function("vanilla", |b| {
        b.iter(|| run_vanilla(scripts::CV_TRAIN).unwrap())
    });
    group.bench_function("record", |b| {
        b.iter(|| {
            let run = RUN.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "flor-bench-record-{}-{run}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            record(scripts::CV_TRAIN, &RecordOptions::new(dir)).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_record);
criterion_main!(benches);
