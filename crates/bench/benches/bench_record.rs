//! Criterion bench: live record overhead (Figure 11's live counterpart) —
//! vanilla execution vs recorded execution of the cv_train mini workload —
//! plus the record hot path itself: caller-thread submit latency per
//! strategy, zero-copy vs the pre-refactor eager-copy construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flor_bench::record_submit::{StateFixture, SubmitMode, ALL_STRATEGIES};
use flor_bench::scripts;
use flor_chkpt::{CheckpointStore, Materializer};
use flor_core::record::{record, run_vanilla, RecordOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn bench_record(c: &mut Criterion) {
    static RUN: AtomicU64 = AtomicU64::new(0);
    let mut group = c.benchmark_group("record_vs_vanilla");
    group.sample_size(10);
    group.bench_function("vanilla", |b| {
        b.iter(|| run_vanilla(scripts::CV_TRAIN).unwrap())
    });
    group.bench_function("record", |b| {
        b.iter(|| {
            let run = RUN.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("flor-bench-record-{}-{run}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let out = record(scripts::CV_TRAIN, &RecordOptions::new(dir.clone())).unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            out
        })
    });
    group.finish();
}

/// Caller-thread cost of one checkpoint submission (snapshot build +
/// submit) — the quantity the zero-copy pipeline drives toward O(1).
fn bench_submit(c: &mut Criterion) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let fixture = StateFixture::new(8, 64 * 1024); // 8 × 256 KiB ≈ 2 MiB/ckpt
    let mut group = c.benchmark_group("record_submit");
    group.throughput(Throughput::Bytes(fixture.raw_bytes() as u64));
    for strategy in ALL_STRATEGIES {
        for mode in [SubmitMode::ZeroCopy, SubmitMode::EagerCopy] {
            let dir = std::env::temp_dir().join(format!(
                "flor-bench-submit-crit-{strategy:?}-{}-{}",
                mode.label(),
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = Arc::new(CheckpointStore::open(dir.clone()).unwrap());
            let mat = Materializer::new(store, strategy, 2);
            group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), mode.label()),
                &mode,
                |b, &mode| {
                    b.iter(|| {
                        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
                        mat.submit("bench", seq, fixture.build_payload(mode));
                    });
                },
            );
            mat.flush();
            // Each fixture store grows to multiple GiB; leaking it fills
            // /tmp after a handful of CI runs.
            drop(mat);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    group.finish();
}

criterion_group!(benches, bench_record, bench_submit);
criterion_main!(benches);
