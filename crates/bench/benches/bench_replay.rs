//! Criterion bench: live replay latency by probe position (Figure 12's
//! live counterpart) — outer probes restore, inner probes re-execute, and
//! parallel workers cut inner-probe latency.

use criterion::{criterion_group, criterion_main, Criterion};
use flor_bench::scripts;
use flor_core::record::{record, RecordOptions};
use flor_core::replay::{replay, ReplayOptions};

fn bench_replay(c: &mut Criterion) {
    // One shared recorded store for all replay benches.
    let dir = std::env::temp_dir().join(format!("flor-bench-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut opts = RecordOptions::new(&dir);
    opts.adaptive = false; // deterministic checkpoint placement
    record(scripts::CV_TRAIN, &opts).unwrap();

    let outer = scripts::probe_outer(scripts::CV_TRAIN);
    let inner = scripts::probe_inner(scripts::CV_TRAIN);

    let mut group = c.benchmark_group("replay_latency");
    group.sample_size(10);
    group.bench_function("outer_probe_partial", |b| {
        b.iter(|| replay(&outer, &dir, &ReplayOptions::default()).unwrap())
    });
    group.bench_function("inner_probe_1worker", |b| {
        b.iter(|| replay(&inner, &dir, &ReplayOptions::default()).unwrap())
    });
    group.bench_function("inner_probe_4workers", |b| {
        b.iter(|| replay(&inner, &dir, &ReplayOptions::with_workers(4)).unwrap())
    });
    group.finish();
}

fn bench_read_path(c: &mut Criterion) {
    use flor_bench::replay_read::{keys, ReadFixture};
    use flor_chkpt::StoreFormat;
    let n = 2_000u64;
    let seg = ReadFixture::build("crit-seg", StoreFormat::Segmented, n);
    let v1 = ReadFixture::build("crit-v1", StoreFormat::FilePerCheckpoint, n);
    let seg_store = seg.open();
    let v1_store = v1.open();
    let ks = keys(n);

    let mut group = c.benchmark_group("checkpoint_read");
    let mut i = 0usize;
    group.bench_function("get_bytes_segmented", |b| {
        b.iter(|| {
            let (block, seq) = &ks[i % ks.len()];
            i += 1;
            criterion::black_box(seg_store.get_bytes(block, *seq).unwrap())
        })
    });
    let mut j = 0usize;
    group.bench_function("get_file_per_ckpt_prepr", |b| {
        b.iter(|| {
            let (block, seq) = &ks[j % ks.len()];
            j += 1;
            criterion::black_box(v1_store.get(block, *seq).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_replay, bench_read_path);
criterion_main!(benches);
