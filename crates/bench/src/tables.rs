//! Table regenerators (paper Tables 1–4).

use crate::util::render_table;
use flor_analysis::{match_rule, RuleApplication};
use flor_core::adaptive::AdaptiveController;
use flor_lang::parse;
use flor_sim::{monthly_storage_usd, simulate_record, Workload, WorkloadKind, ALL_WORKLOADS};
use std::collections::BTreeSet;

/// Table 1: the side-effect rules, demonstrated on worked examples through
/// the real rule matcher.
pub fn tab01() -> String {
    let examples = [
        (
            "0",
            "acc = acc + loss",
            &["acc"][..],
            "No Estimate (refuse loop)",
        ),
        (
            "1",
            "loss, preds = net.eval(batch)",
            &[],
            "{net, loss, preds}",
        ),
        ("2", "preds = softmax(logits)", &[], "{preds}"),
        ("3", "lr = 0.1 * decay", &[], "{lr}"),
        ("4", "optimizer.step()", &[], "{optimizer}"),
        ("5", "evaluate(net, data)", &[], "No Estimate (refuse loop)"),
    ];
    let mut rows = Vec::new();
    for (rule, stmt_src, changeset, expect) in examples {
        let stmt = parse(&format!("{stmt_src}\n")).unwrap().body.remove(0);
        let cs: BTreeSet<String> = changeset.iter().map(|s| s.to_string()).collect();
        let got = match match_rule(&stmt, &cs) {
            RuleApplication::Delta { rule, names } => {
                format!("rule {} → {{{}}}", rule.number(), names.join(", "))
            }
            RuleApplication::NoEstimate { rule, .. } => {
                format!("rule {} → No Estimate", rule.number())
            }
            RuleApplication::NoMatch => "no rule".to_string(),
        };
        rows.push(vec![
            rule.to_string(),
            stmt_src.to_string(),
            got,
            expect.to_string(),
        ]);
    }
    render_table(
        &["rule", "statement", "matcher output", "paper ΔChangeset"],
        &rows,
    )
}

/// Table 2: the adaptive-checkpointing symbols, shown live by driving the
/// controller with an RTE-shaped cost stream.
pub fn tab02() -> String {
    let w = Workload::by_name("RTE").unwrap();
    let mut ctrl = AdaptiveController::new(1.0 / 15.0);
    let c_ns = (w.epoch_secs() * 1e9) as u64;
    let m_ns = (w.materialize_secs() * 1e9) as u64;
    let mut k = 0u64;
    for _ in 0..w.epochs {
        if ctrl.should_materialize("rte", c_ns, m_ns) {
            ctrl.observe_materialize("rte", m_ns, (w.compressed_ckpt_gb * 1e9) as u64);
            ctrl.observe_restore("rte", (1.38 * m_ns as f64) as u64);
            k += 1;
        }
    }
    let stats = ctrl.block_stats("rte").unwrap();
    let rows = vec![
        vec![
            "M_i".into(),
            "time to materialize side-effects".into(),
            format!("{:.1} s", stats.mean_materialize_ns() / 1e9),
        ],
        vec![
            "R_i".into(),
            "time to restore side-effects".into(),
            format!(
                "{:.1} s (= c·M_i)",
                1.38 * stats.mean_materialize_ns() / 1e9
            ),
        ],
        vec![
            "C_i".into(),
            "time to compute loop".into(),
            format!("{:.1} s", stats.mean_compute_ns() / 1e9),
        ],
        vec![
            "n_i".into(),
            "executions so far".into(),
            stats.executions.to_string(),
        ],
        vec!["k_i".into(), "checkpoints so far".into(), k.to_string()],
        vec![
            "G".into(),
            "degree of replay parallelism".into(),
            "set at replay".into(),
        ],
        vec![
            "c".into(),
            "R/M scaling factor (refined)".into(),
            format!("{:.2}", ctrl.c()),
        ],
        vec![
            "ε".into(),
            "overhead tolerance".into(),
            "0.0667 (1/15)".into(),
        ],
    ];
    render_table(&["symbol", "description", "live value (RTE stream)"], &rows)
}

/// Table 3: the evaluation workloads.
pub fn tab03() -> String {
    let rows: Vec<Vec<String>> = ALL_WORKLOADS
        .iter()
        .map(|w| {
            vec![
                w.name.to_string(),
                w.benchmark.to_string(),
                w.task.to_string(),
                w.model.to_string(),
                w.dataset.to_string(),
                match w.kind {
                    WorkloadKind::Train => "Train".to_string(),
                    WorkloadKind::FineTune => "Fine-Tune".to_string(),
                },
                w.epochs.to_string(),
            ]
        })
        .collect();
    render_table(
        &[
            "Name",
            "Benchmark",
            "Task",
            "Model",
            "Dataset",
            "Train/Tune",
            "Epochs",
        ],
        &rows,
    )
}

/// Table 4: checkpoint sizes from adaptive-checkpoint placement × per-ckpt
/// size, and the S3 monthly bill.
pub fn tab04() -> String {
    let paper: &[(&str, f64, f64)] = &[
        ("ImgN", 0.051, 0.001),
        ("Cifr", 0.705, 0.01),
        ("Jasp", 2.0, 0.05),
        ("Wiki", 14.0, 0.32),
        ("RTE", 14.0, 0.33),
        ("CoLA", 15.0, 0.35),
        ("RnnT", 29.0, 0.66),
        ("RsNt", 39.0, 0.90),
    ];
    let mut rows = Vec::new();
    for (name, paper_gb, paper_usd) in paper {
        let w = Workload::by_name(name).unwrap();
        let sim = simulate_record(w, 1.0 / 15.0, true);
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", sim.total_ckpt_gb),
            format!("{:.3}", monthly_storage_usd(sim.total_ckpt_gb)),
            format!("{paper_gb:.3}"),
            format!("{paper_usd:.3}"),
            sim.checkpoints().to_string(),
        ]);
    }
    render_table(
        &[
            "Name",
            "sim GB",
            "sim $/mo",
            "paper GB",
            "paper $/mo",
            "ckpts",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_without_panicking() {
        for t in [tab01(), tab02(), tab03(), tab04()] {
            assert!(t.lines().count() >= 4, "{t}");
        }
    }

    #[test]
    fn tab01_matcher_agrees_with_paper() {
        let t = tab01();
        assert!(t.contains("rule 1 → {net, loss, preds}"), "{t}");
        assert!(t.contains("rule 5 → No Estimate"), "{t}");
        assert!(t.contains("rule 0 → No Estimate"), "{t}");
    }

    #[test]
    fn tab04_reproduces_order_of_magnitude() {
        let t = tab04();
        // RsNt is the most expensive row in the paper (~$0.90/mo).
        assert!(t.contains("RsNt"), "{t}");
    }
}
