//! Miniature live workloads (FlorScript) used by examples, benches and
//! integration tests.
//!
//! Each mirrors a regime from the paper's Table 3 at laptop scale:
//!
//! | Script | Paper counterpart | Regime |
//! |---|---|---|
//! | [`CV_TRAIN`]   | Cifr / ImgN | small model, many epochs — checkpoints cheap |
//! | [`RESNET`]     | RsNt        | deep residual net, bigger checkpoints |
//! | [`FINETUNE`]   | RTE / CoLA  | frozen ballast ≫ compute — periodic checkpoints |
//! | [`LANGMODEL`]  | Wiki        | embedding-heavy text model |
//! | [`SEQ`]        | RnnT / Jasp | sequence classification over tokens |

/// Epochs in each mini workload's main loop.
pub const MINI_EPOCHS: u64 = 8;

/// CIFAR-style classification with an MLP.
pub const CV_TRAIN: &str = "\
import flor
data = synth_data(n=96, dim=12, classes=4, spread=0.3, seed=11)
loader = dataloader(data, batch_size=24, seed=11)
net = mlp(input=12, hidden=24, classes=4, depth=2, seed=11)
optimizer = sgd(net, lr=0.1, momentum=0.9)
criterion = cross_entropy()
avg = meter()
for epoch in range(8):
    avg.reset()
    for batch in loader.epoch():
        waste = busy(2)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
acc = evaluate(net, data)
log(\"accuracy\", acc)
";

/// ResNet-style deep residual network with an LR schedule.
pub const RESNET: &str = "\
import flor
data = synth_data(n=96, dim=12, classes=4, spread=0.3, seed=13)
loader = dataloader(data, batch_size=24, seed=13)
net = resnet(input=12, hidden=24, classes=4, blocks=3, seed=13)
optimizer = sgd(net, lr=0.08, momentum=0.9)
sched = step_lr(optimizer, base_lr=0.08, step_size=3, gamma=0.5)
criterion = cross_entropy()
avg = meter()
for epoch in range(8):
    avg.reset()
    for batch in loader.epoch():
        waste = busy(2)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    sched.step()
    log(\"loss\", avg.mean())
    log(\"lr\", optimizer.lr)
acc = evaluate(net, data)
log(\"accuracy\", acc)
";

/// Fine-tuning regime: a large frozen ballast makes checkpoints expensive
/// relative to the (deliberately short) epochs, so adaptive checkpointing
/// switches to periodic checkpoints, as it does for RTE/CoLA.
pub const FINETUNE: &str = "\
import flor
data = synth_data(n=48, dim=8, classes=3, spread=0.3, seed=17)
loader = dataloader(data, batch_size=24, seed=17)
net = finetune(input=8, hidden=16, classes=3, ballast=600000, seed=17)
optimizer = sgd(net, lr=0.1)
criterion = cross_entropy()
avg = meter()
for epoch in range(8):
    avg.reset()
    for batch in loader.epoch():
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
acc = evaluate(net, data)
log(\"accuracy\", acc)
";

/// Language-model-style workload over token sequences.
pub const LANGMODEL: &str = "\
import flor
data = token_data(n=96, seq=12, vocab=48, classes=4, seed=19)
loader = dataloader(data, batch_size=24, seed=19)
net = textnet(vocab=48, dim=16, classes=4, seed=19)
optimizer = adam(net, lr=0.01)
criterion = cross_entropy()
avg = meter()
for epoch in range(8):
    avg.reset()
    for batch in loader.epoch():
        waste = busy(1)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
acc = evaluate(net, data)
log(\"accuracy\", acc)
";

/// Sequence-task workload (token classification, deeper text model).
pub const SEQ: &str = "\
import flor
data = token_data(n=64, seq=16, vocab=64, classes=4, seed=23)
loader = dataloader(data, batch_size=16, seed=23)
net = textnet(vocab=64, dim=24, classes=4, seed=23)
optimizer = sgd(net, lr=0.2, momentum=0.9)
criterion = cross_entropy()
avg = meter()
for epoch in range(8):
    avg.reset()
    for batch in loader.epoch():
        waste = busy(1)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
acc = evaluate(net, data)
log(\"accuracy\", acc)
";

/// Speech-style workload: 1-D convolutions over feature bands (the Jasper
/// counterpart, now with real convolutions in the live pipeline).
pub const SPEECH: &str = "\
import flor
data = synth_data(n=64, dim=24, classes=3, spread=0.3, seed=37)
loader = dataloader(data, batch_size=16, seed=37)
net = convnet(features=24, channels=2, conv_channels=4, kernel=3, classes=3, seed=37)
optimizer = sgd(net, lr=0.05, momentum=0.9)
criterion = cross_entropy()
avg = meter()
for epoch in range(8):
    avg.reset()
    for batch in loader.epoch():
        waste = busy(1)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
acc = evaluate(net, data)
log(\"accuracy\", acc)
";

/// All mini workloads as `(name, source)` pairs.
pub static MINI_WORKLOADS: &[(&str, &str)] = &[
    ("cv_train", CV_TRAIN),
    ("resnet", RESNET),
    ("finetune", FINETUNE),
    ("langmodel", LANGMODEL),
    ("seq", SEQ),
    ("speech", SPEECH),
];

/// Adds an outer-loop probe (after the epoch log) to a mini workload.
pub fn probe_outer(src: &str) -> String {
    let probed = src.replace(
        "    log(\"loss\", avg.mean())\n",
        "    log(\"loss\", avg.mean())\n    log(\"probe_wnorm\", net.weight_norm())\n",
    );
    assert_ne!(probed, src, "outer probe marker must match");
    probed
}

/// Adds an inner-loop probe (after optimizer.step()) to a mini workload.
pub fn probe_inner(src: &str) -> String {
    let probed = src.replace(
        "        optimizer.step()\n",
        "        optimizer.step()\n        log(\"probe_gnorm\", net.grad_norm())\n",
    );
    assert_ne!(probed, src, "inner probe marker must match");
    probed
}

#[cfg(test)]
mod tests {
    use super::*;
    use flor_core::record::run_vanilla;

    #[test]
    fn all_minis_parse_and_train() {
        for (name, src) in MINI_WORKLOADS {
            let (_, log) = run_vanilla(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            // Every mini logs one loss per epoch plus a final accuracy.
            let losses = log.iter().filter(|e| e.key == "loss").count();
            assert_eq!(losses as u64, MINI_EPOCHS, "{name}");
            let acc: f64 = log
                .iter()
                .find(|e| e.key == "accuracy")
                .expect("accuracy entry")
                .value
                .parse()
                .unwrap();
            assert!(acc > 0.5, "{name}: accuracy {acc} did not learn");
        }
    }

    #[test]
    fn probes_apply_cleanly() {
        for (_, src) in MINI_WORKLOADS {
            assert_ne!(probe_outer(src), *src);
            assert_ne!(probe_inner(src), *src);
        }
    }
}
