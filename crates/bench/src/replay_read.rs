//! Read-path measurement for the replay hot path.
//!
//! Builds checkpoint stores in both on-disk layouts over identical
//! payloads and measures what a replay worker pays per restore:
//!
//! - **before** — the v1 layout ([`StoreFormat::FilePerCheckpoint`]) read
//!   through the compatibility `get` path: one `open`/`read`/`close` per
//!   checkpoint plus decompression, and a cold open that stats every data
//!   file.
//! - **after** — the segmented layout ([`StoreFormat::Segmented`]) read
//!   through zero-copy [`CheckpointStore::get_bytes`]: a sharded-index
//!   lookup and a slice of the shared segment buffer, with a cold open
//!   that reads the manifest once and stats only segments.
//!
//! Used by the `bench_replay` criterion bench and the `bench_replay_json`
//! binary that emits `BENCH_replay.json` (the committed before/after
//! table; `flor-sim`'s `cost::read_cost` constants come from it).

use flor_chkpt::{CheckpointStore, StoreFormat, StoreOptions};
use std::path::PathBuf;
use std::time::Instant;

/// Payload bytes per checkpoint in the standard fixture.
pub const PAYLOAD_BYTES: usize = 256;

/// Blocks the fixture spreads its checkpoints across (a multi-block run,
/// so the sharded index sees more than one key).
pub const BLOCKS: u64 = 8;

/// A store fixture of `checkpoints` identical-shape payloads.
pub struct ReadFixture {
    root: PathBuf,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Layout written.
    pub format: StoreFormat,
}

/// Deterministic xorshift bytes — incompressible, like real tensor
/// payloads (the case the zero-copy raw-stored path exists for).
pub fn payload(seed: u32, n: usize) -> Vec<u8> {
    let mut x = seed.wrapping_mul(2654435761).max(1);
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x as u8
        })
        .collect()
}

/// The fixture's key set, in write order.
pub fn keys(checkpoints: u64) -> Vec<(String, u64)> {
    (0..checkpoints)
        .map(|i| (format!("sb_{}", i % BLOCKS), i / BLOCKS))
        .collect()
}

impl ReadFixture {
    /// Builds (or rebuilds) a store of `checkpoints` payloads in `format`
    /// under a temp directory tagged `tag`.
    pub fn build(tag: &str, format: StoreFormat, checkpoints: u64) -> ReadFixture {
        let root = std::env::temp_dir().join(format!(
            "flor-bench-replay-read-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let store = CheckpointStore::open_opts(
            &root,
            StoreOptions {
                format,
                ..StoreOptions::default()
            },
        )
        .expect("open fixture store");
        // Batched writes, like the materializer's group commits.
        for chunk in keys(checkpoints).chunks(64) {
            let mut batch = store.batch();
            for (i, (block, seq)) in chunk.iter().enumerate() {
                batch.stage(block, *seq, &payload(*seq as u32 + i as u32, PAYLOAD_BYTES));
            }
            batch.commit().expect("commit fixture batch");
        }
        ReadFixture {
            root,
            checkpoints,
            format,
        }
    }

    /// Fixture root directory.
    pub fn root(&self) -> &PathBuf {
        &self.root
    }

    /// Opens the fixture store (counts as a cold open only if no other
    /// handle is live; the OS page cache stays warm either way, which is
    /// the right comparison — the v1 open cost is syscalls, not disk).
    pub fn open(&self) -> CheckpointStore {
        CheckpointStore::open_opts(
            &self.root,
            StoreOptions {
                format: self.format,
                ..StoreOptions::default()
            },
        )
        .expect("reopen fixture store")
    }

    /// Times a cold open (manifest load + recovery scan), ns.
    pub fn cold_open_ns(&self) -> u64 {
        let t0 = Instant::now();
        let store = self.open();
        let ns = t0.elapsed().as_nanos() as u64;
        drop(store);
        ns
    }
}

/// Which read API a measurement drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// `get` — the v1 compatibility path (`Vec<u8>` copy-out).
    Get,
    /// `get_bytes` — the zero-copy path.
    GetBytes,
}

/// Latency distribution over one pass of reads.
#[derive(Debug, Clone, Copy)]
pub struct ReadMeasurement {
    /// Reads performed.
    pub reads: u64,
    /// Median per-read latency, ns.
    pub median_ns: u64,
    /// Mean per-read latency, ns.
    pub mean_ns: u64,
    /// p99 per-read latency, ns.
    pub p99_ns: u64,
}

/// Reads up to `sample` keys of the fixture once each, in a deterministic
/// pseudo-shuffled order (defeats trivial locality without `rand`), and
/// reports the latency distribution.
pub fn measure_reads(
    store: &CheckpointStore,
    fixture: &ReadFixture,
    mode: ReadMode,
    sample: u64,
) -> ReadMeasurement {
    let all = keys(fixture.checkpoints);
    let n = all.len() as u64;
    let sample = sample.min(n).max(1);
    // Golden-ratio stride walk visits distinct indices in scattered order
    // — valid only while gcd(stride, n) == 1, so nudge the stride until it
    // is coprime (otherwise the walk cycles over a subset and the medians
    // would be warm re-reads).
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    let mut stride = ((n as f64 * 0.6180339887) as u64) | 1;
    while gcd(stride, n) != 1 {
        stride += 2;
    }
    let mut lat: Vec<u64> = Vec::with_capacity(sample as usize);
    let mut checksum = 0u64;
    for k in 0..sample {
        let (block, seq) = &all[((k * stride) % n) as usize];
        let t0 = Instant::now();
        match mode {
            ReadMode::Get => {
                let v = store.get(block, *seq).expect("fixture read");
                checksum ^= v.len() as u64;
            }
            ReadMode::GetBytes => {
                let b = store.get_bytes(block, *seq).expect("fixture read");
                checksum ^= b.len() as u64;
            }
        }
        lat.push(t0.elapsed().as_nanos() as u64);
    }
    assert!(checksum != u64::MAX, "keep the reads observable");
    lat.sort_unstable();
    ReadMeasurement {
        reads: sample,
        median_ns: lat[lat.len() / 2],
        mean_ns: lat.iter().sum::<u64>() / lat.len() as u64,
        p99_ns: lat[(lat.len() * 99 / 100).min(lat.len() - 1)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_hold_identical_payloads_in_both_formats() {
        let n = 64;
        let seg = ReadFixture::build("eq-seg", StoreFormat::Segmented, n);
        let v1 = ReadFixture::build("eq-v1", StoreFormat::FilePerCheckpoint, n);
        let seg_store = seg.open();
        let v1_store = v1.open();
        for (block, seq) in keys(n) {
            assert_eq!(
                seg_store.get(&block, seq).unwrap(),
                v1_store.get(&block, seq).unwrap()
            );
        }
        assert_eq!(seg_store.stats().legacy_entries, 0);
        assert_eq!(v1_store.stats().segment_entries, 0);
    }

    #[test]
    fn measurement_reads_every_sampled_key_once() {
        let fixture = ReadFixture::build("measure", StoreFormat::Segmented, 128);
        let store = fixture.open();
        let m = measure_reads(&store, &fixture, ReadMode::GetBytes, 128);
        assert_eq!(m.reads, 128);
        assert_eq!(store.stats().reads, 128);
        assert!(m.median_ns > 0 && m.mean_ns > 0 && m.p99_ns >= m.median_ns);
    }
}
