//! Caller-thread submit-latency measurement for the record hot path.
//!
//! Measures what the training thread pays per checkpoint under each
//! Figure 5 strategy, for two snapshot-construction modes:
//!
//! - [`SubmitMode::ZeroCopy`] — the current pipeline: tensor leaves are
//!   lazy slab handles (`CVal::lazy`), so building the snapshot tree is
//!   O(#objects) and serialization runs in the background.
//! - [`SubmitMode::EagerCopy`] — the pre-group-commit pipeline, kept as a
//!   measurable baseline: every tensor is copied into an eager
//!   `CVal::Bytes` leaf on the caller thread (`Tensor::to_bytes`), exactly
//!   what `snapshot()` did before the zero-copy refactor.
//!
//! Both modes submit through the same [`Materializer`], so the measured
//! difference is purely the caller-side construction cost the refactor
//! removed. Used by the `bench_record` criterion bench and the
//! `bench_record_json` binary that emits `BENCH_record.json`.

use flor_chkpt::{ByteSource, BytesMut, CVal, CheckpointStore, Materializer, Payload, Strategy};
use flor_core::skipblock::CValSnapshot;
use flor_tensor::{Pcg64, Tensor};
use std::sync::Arc;
use std::time::Instant;

/// How the snapshot tree is built on the caller thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitMode {
    /// Lazy slab handles — O(#objects) on the caller.
    ZeroCopy,
    /// Eager `to_bytes` copies — O(bytes) on the caller (pre-PR baseline).
    EagerCopy,
}

impl SubmitMode {
    /// Stable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SubmitMode::ZeroCopy => "zero_copy",
            SubmitMode::EagerCopy => "eager_copy_prepr",
        }
    }
}

/// A zero-copy tensor payload leaf (mirrors the one `flor-core` uses to
/// lower `Value::Tensor`).
struct TensorSrc(Tensor);

impl ByteSource for TensorSrc {
    fn len(&self) -> usize {
        self.0.payload_len()
    }
    fn write_to(&self, buf: &mut BytesMut) {
        self.0.write_payload(buf);
    }
}

/// The model-state stand-in: `tensors` weight matrices of
/// `floats_per_tensor` elements each (think layer weights + optimizer
/// moments of the cv_train workload, scaled up).
pub struct StateFixture {
    tensors: Vec<Tensor>,
}

impl StateFixture {
    /// Deterministic pseudo-random state of the given shape.
    pub fn new(tensors: usize, floats_per_tensor: usize) -> Self {
        let mut rng = Pcg64::seeded(7);
        StateFixture {
            tensors: (0..tensors)
                .map(|_| {
                    Tensor::new(
                        [floats_per_tensor],
                        (0..floats_per_tensor)
                            .map(|_| rng.uniform(-1.0, 1.0))
                            .collect(),
                    )
                })
                .collect(),
        }
    }

    /// Total uncompressed payload bytes per checkpoint.
    pub fn raw_bytes(&self) -> usize {
        self.tensors.iter().map(Tensor::payload_len).sum()
    }

    /// Number of tensors.
    pub fn object_count(&self) -> usize {
        self.tensors.len()
    }

    /// Builds one snapshot payload in the given mode — this is the
    /// caller-side work being measured, identical in shape to what
    /// `exec_record` does per SkipBlock.
    pub fn build_payload(&self, mode: SubmitMode) -> Payload {
        let pairs: Vec<(String, CVal)> = self
            .tensors
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let leaf = match mode {
                    SubmitMode::ZeroCopy => CVal::lazy(TensorSrc(t.clone())),
                    SubmitMode::EagerCopy => CVal::bytes(t.to_bytes()),
                };
                (format!("param.{i}"), leaf)
            })
            .collect();
        let objects = pairs.len();
        Payload::Deferred(Arc::new(CValSnapshot::new(CVal::Map(pairs), objects)))
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct SubmitMeasurement {
    /// Strategy measured.
    pub strategy: Strategy,
    /// Snapshot construction mode.
    pub mode: SubmitMode,
    /// Checkpoints submitted.
    pub jobs: u64,
    /// Mean caller-thread ns per checkpoint (snapshot build + submit).
    pub mean_submit_ns: u64,
    /// Median caller-thread ns per checkpoint.
    pub median_submit_ns: u64,
    /// Total caller-thread blocked time reported by the materializer
    /// (submit-internal only, Figure 5's metric).
    pub blocked_ns_total: u64,
    /// Background group commits (batched manifest appends) issued.
    pub group_commits: u64,
}

/// Submits `jobs` checkpoints of `fixture` under `strategy`/`mode`,
/// timing the caller-side cost of each (build + submit). The store lives
/// under a throwaway temp directory.
pub fn measure_submit(
    fixture: &StateFixture,
    strategy: Strategy,
    mode: SubmitMode,
    jobs: u64,
    tag: &str,
) -> SubmitMeasurement {
    let dir = std::env::temp_dir().join(format!(
        "flor-bench-submit-{tag}-{strategy:?}-{}-{}",
        mode.label(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(CheckpointStore::open(&dir).unwrap());
    let mat = Materializer::new(store, strategy, 2);
    // Untimed warmup: first-touch page faults, worker spawn, allocator and
    // page-cache warm-up all land here instead of in the first sample.
    for seq in 0..3u64 {
        mat.submit("warmup", seq, fixture.build_payload(mode));
    }
    mat.flush();
    // Everything counted so far is warmup; subtract it from every reported
    // counter so the committed numbers describe only the timed jobs.
    let warmup = mat.stats();
    let mut per_job_ns: Vec<u64> = Vec::with_capacity(jobs as usize);
    for seq in 0..jobs {
        let t0 = Instant::now();
        let payload = fixture.build_payload(mode);
        mat.submit("sb_0", seq, payload);
        per_job_ns.push(t0.elapsed().as_nanos() as u64);
    }
    mat.flush();
    let stats = mat.stats();
    drop(mat);
    let _ = std::fs::remove_dir_all(&dir);
    per_job_ns.sort_unstable();
    let mean = per_job_ns.iter().sum::<u64>() / per_job_ns.len().max(1) as u64;
    let median = per_job_ns[per_job_ns.len() / 2];
    SubmitMeasurement {
        strategy,
        mode,
        jobs,
        mean_submit_ns: mean,
        median_submit_ns: median,
        blocked_ns_total: stats.main_thread_ns - warmup.main_thread_ns,
        group_commits: stats.group_commits - warmup.group_commits,
    }
}

/// The four Figure 5 strategies, in presentation order.
pub const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::Baseline,
    Strategy::IpcQueue,
    Strategy::Plasma,
    Strategy::ForkBatched,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_persist_identical_checkpoints() {
        let fixture = StateFixture::new(4, 1000);
        for mode in [SubmitMode::ZeroCopy, SubmitMode::EagerCopy] {
            let dir = std::env::temp_dir().join(format!(
                "flor-bench-submit-test-{}-{}",
                mode.label(),
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store = Arc::new(CheckpointStore::open(&dir).unwrap());
            let mat = Materializer::new(store.clone(), Strategy::ForkBatched, 2);
            mat.submit("sb_0", 0, fixture.build_payload(mode));
            mat.flush();
            let payload = store.get("sb_0", 0).unwrap();
            // Encoded payload is mode-independent (zero-copy is lossless).
            let tree = flor_chkpt::decode(&payload).unwrap();
            assert_eq!(
                tree.get("param.0").unwrap().as_bytes().unwrap().to_vec(),
                fixture.tensors[0].to_bytes()
            );
        }
    }

    #[test]
    fn measure_submit_reports_sane_numbers() {
        let fixture = StateFixture::new(2, 500);
        let m = measure_submit(
            &fixture,
            Strategy::ForkBatched,
            SubmitMode::ZeroCopy,
            10,
            "sane",
        );
        assert_eq!(m.jobs, 10);
        assert!(m.mean_submit_ns > 0);
        assert!(m.median_submit_ns <= m.mean_submit_ns * 10);
    }

    /// Regression test for the `BENCH_record.json` `Baseline zero_copy
    /// 0.68×` anomaly: zero-copy submit looked slower than eager copy only
    /// because it was the *first* sustained measurement of the process
    /// (CPU frequency/quota ramp on shared hosts), never because the
    /// zero-copy pipeline costs more — Baseline serializes the same bytes
    /// on the caller either way; zero-copy just skips one copy. After a
    /// steady-state warmup (which `bench_record_json` now performs before
    /// its first real measurement) the two modes must be within noise.
    #[test]
    fn baseline_zero_copy_is_not_slower_than_eager_after_warmup() {
        let fixture = StateFixture::new(4, 32 * 1024);
        // Two discarded measurements absorb the process ramp.
        for tag in ["ss-warm-a", "ss-warm-b"] {
            let _ = measure_submit(&fixture, Strategy::Baseline, SubmitMode::EagerCopy, 8, tag);
        }
        let zero = measure_submit(
            &fixture,
            Strategy::Baseline,
            SubmitMode::ZeroCopy,
            8,
            "ss-z",
        );
        let eager = measure_submit(
            &fixture,
            Strategy::Baseline,
            SubmitMode::EagerCopy,
            8,
            "ss-e",
        );
        let ratio = zero.median_submit_ns as f64 / eager.median_submit_ns.max(1) as f64;
        assert!(
            ratio < 1.5,
            "Baseline zero-copy must at worst match eager copy: {ratio:.2}× \
             (zero {}ns vs eager {}ns)",
            zero.median_submit_ns,
            eager.median_submit_ns
        );
    }
}
