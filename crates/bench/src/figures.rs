//! Figure regenerators (paper Figures 5, 7, 10–14).

use crate::util::{fmt_secs, fresh_dir, render_table};
use flor_chkpt::{CheckpointStore, Materializer, Payload, SerializeSnapshot, Strategy};
use flor_core::parallel::{max_speedup, InitMode};
use flor_core::record::{record, run_vanilla, RecordOptions};
use flor_sim::cost::{machine, parallel_bill, serial_bill};
use flor_sim::{simulate_record, simulate_replay, ProbePosition, Workload, ALL_WORKLOADS};
use std::sync::Arc;

const EPSILON: f64 = 1.0 / 15.0;

/// A deliberately serialization-heavy snapshot: materialization cost is
/// dominated by encoding work, as in Python (the paper's 4.3× ratio).
struct HeavySnapshot {
    payload: Vec<u8>,
}

impl SerializeSnapshot for HeavySnapshot {
    fn serialize(&self) -> Vec<u8> {
        // Transform pass stands in for object-graph traversal + pickling.
        let mut out = Vec::with_capacity(self.payload.len());
        let mut acc = 0u8;
        for &b in &self.payload {
            acc = acc.wrapping_mul(31).wrapping_add(b);
            out.push(b ^ acc);
        }
        out
    }
    fn approx_bytes(&self) -> usize {
        self.payload.len()
    }
}

/// Figure 5: main-thread blocked time per materialization strategy for an
/// RTE-style checkpoint. `payload_bytes` scales the experiment (the paper
/// used 1.1 GB; the harness default is 16 MiB so the experiment runs in
/// seconds — ratios, not magnitudes, are the result).
pub fn fig05(payload_bytes: usize) -> String {
    let mut payload = vec![0u8; payload_bytes];
    // Mixed compressible/incompressible content.
    let mut x = 0x2545F491u32;
    for (i, b) in payload.iter_mut().enumerate() {
        if i % 3 == 0 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            *b = x as u8;
        }
    }
    let jobs = 6u64;
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (name, strategy) in [
        ("Baseline (cloudpickle)", Strategy::Baseline),
        ("IPC-Queue (multiprocessing)", Strategy::IpcQueue),
        ("IPC-Plasma", Strategy::Plasma),
        ("Fork (Flor)", Strategy::ForkBatched),
    ] {
        let store =
            Arc::new(CheckpointStore::open(fresh_dir(&format!("fig05-{strategy:?}"))).unwrap());
        let mat = Materializer::new(store, strategy, 2);
        let t0 = std::time::Instant::now();
        for seq in 0..jobs {
            mat.submit(
                "ckpt",
                seq,
                Payload::Deferred(Arc::new(HeavySnapshot {
                    payload: payload.clone(),
                })),
            );
        }
        let main_elapsed = t0.elapsed().as_secs_f64();
        mat.flush();
        let stats = mat.stats();
        results.push((name, stats.main_thread_ns as f64 / 1e9));
        rows.push(vec![
            name.to_string(),
            fmt_secs(stats.main_thread_ns as f64 / 1e9),
            fmt_secs(main_elapsed),
            stats.dispatches.to_string(),
        ]);
    }
    let mut out = format!(
        "payload: {} MiB × {jobs} checkpoints (paper: 1.1 GB × 10)\n",
        payload_bytes >> 20
    );
    out.push_str(&render_table(
        &["strategy", "main-thread time", "submit wall", "dispatches"],
        &rows,
    ));
    let base = results[0].1;
    let fork = results[3].1;
    out.push_str(&format!(
        "fork main-thread time is {:.1}% of baseline (paper shape: fork ≪ queue < baseline)\n",
        100.0 * fork / base
    ));
    out
}

/// Figure 7: record overhead with adaptivity disabled vs enabled, per
/// workload, against the ε = 6.67% tolerance line.
pub fn fig07() -> String {
    let mut rows = Vec::new();
    for w in ALL_WORKLOADS {
        let off = simulate_record(w, EPSILON, false);
        let on = simulate_record(w, EPSILON, true);
        rows.push(vec![
            w.name.to_string(),
            format!("{:.1}%", off.overhead * 100.0),
            format!("{:.2}%", on.overhead * 100.0),
            on.checkpoints().to_string(),
            w.epochs.to_string(),
        ]);
    }
    let mut out = render_table(
        &[
            "workload",
            "adaptivity OFF",
            "adaptivity ON",
            "ckpts",
            "epochs",
        ],
        &rows,
    );
    out.push_str("tolerance line ε = 6.67%; paper extremes: RTE 91%, CoLA 28% (OFF)\n");
    out
}

/// Figure 10: parallel replay time as a fraction of vanilla on 4 GPUs,
/// inner probe (full re-execution), weak vs strong initialization.
pub fn fig10() -> String {
    let mut rows = Vec::new();
    for w in ALL_WORKLOADS {
        let rec = simulate_record(w, EPSILON, true);
        let weak = simulate_replay(w, &rec, ProbePosition::Inner, 4, InitMode::Weak);
        let strong = simulate_replay(w, &rec, ProbePosition::Inner, 4, InitMode::Strong);
        rows.push(vec![
            w.name.to_string(),
            format!("{:.1}%", weak.fraction_of_vanilla() * 100.0),
            format!("{:.1}%", strong.fraction_of_vanilla() * 100.0),
            format!("{:.1}%", 100.0 / max_speedup(w.epochs, 4)),
        ]);
    }
    let mut out = render_table(&["workload", "weak init", "strong init", "ideal"], &rows);
    out.push_str(
        "paper: near-ideal (25%) for epoch-rich workloads; RTE & CoLA floor at 2/6 = 33%\n",
    );
    out
}

/// Figure 11: record vs vanilla runtime per workload (paper scale), plus a
/// live miniature measurement through the real engine.
pub fn fig11() -> String {
    let mut rows = Vec::new();
    let mut sum = 0.0;
    for w in ALL_WORKLOADS {
        let sim = simulate_record(w, EPSILON, true);
        sum += sim.overhead;
        rows.push(vec![
            w.name.to_string(),
            format!("{:.2} h", sim.vanilla_secs / 3600.0),
            format!("{:.2} h", sim.record_secs / 3600.0),
            format!("{:.2}%", sim.overhead * 100.0),
        ]);
    }
    let mut out = render_table(&["workload", "vanilla", "record", "overhead"], &rows);
    out.push_str(&format!(
        "average simulated overhead: {:.2}% (paper: 1.47%)\n",
        100.0 * sum / ALL_WORKLOADS.len() as f64
    ));

    // Live miniature: record vs vanilla through the real engine (several
    // repetitions, best-of to damp scheduler noise). This script carries
    // real per-epoch compute (`busy(60)`), so per-run fixed costs (store
    // setup, materializer threads, final durability barrier) don't swamp
    // the measurement the way they would on a millisecond-scale job.
    let src = FIG11_LIVE;
    let mut vanilla_best = f64::INFINITY;
    let mut record_best = f64::INFINITY;
    for i in 0..3 {
        let (v_ns, _) = run_vanilla(src).unwrap();
        vanilla_best = vanilla_best.min(v_ns as f64 / 1e9);
        let rep = record(src, &RecordOptions::new(fresh_dir(&format!("fig11-{i}")))).unwrap();
        record_best = record_best.min(rep.wall_ns as f64 / 1e9);
    }
    let live_overhead = (record_best - vanilla_best) / vanilla_best;
    out.push_str(&format!(
        "live (compute-dominated mini): vanilla {}, record {}, overhead {:.2}%\n",
        fmt_secs(vanilla_best),
        fmt_secs(record_best),
        100.0 * live_overhead
    ));
    out
}

/// The live Figure-11 workload: like `scripts::CV_TRAIN` but with enough
/// per-batch compute that training dominates the session's fixed costs.
const FIG11_LIVE: &str = "\
import flor
data = synth_data(n=96, dim=12, classes=4, spread=0.3, seed=11)
loader = dataloader(data, batch_size=24, seed=11)
net = mlp(input=12, hidden=24, classes=4, depth=2, seed=11)
optimizer = sgd(net, lr=0.1, momentum=0.9)
criterion = cross_entropy()
avg = meter()
for epoch in range(8):
    avg.reset()
    for batch in loader.epoch():
        waste = busy(60)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
";

/// Figure 12: replay latency by probe position. Top: outer probes
/// (partial + parallel). Bottom: inner probes (parallel only). Each
/// workload uses the best configuration of up to 4 machines × 4 GPUs.
pub fn fig12() -> String {
    let gpu_options = [4usize, 8, 12, 16];
    let mut rows = Vec::new();
    for w in ALL_WORKLOADS {
        let rec = simulate_record(w, EPSILON, true);
        let best = |probe: ProbePosition| -> (f64, f64, usize) {
            gpu_options
                .iter()
                .map(|&g| {
                    let sim = simulate_replay(w, &rec, probe, g, InitMode::Weak);
                    (sim.speedup, sim.wall_secs, g)
                })
                .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
                .unwrap()
        };
        let (outer_speedup, outer_wall, outer_g) = best(ProbePosition::Outer);
        let (inner_speedup, inner_wall, inner_g) = best(ProbePosition::Inner);
        rows.push(vec![
            w.name.to_string(),
            format!(
                "{outer_speedup:.0}x ({}, {outer_g} GPUs)",
                fmt_secs(outer_wall)
            ),
            format!(
                "{inner_speedup:.1}x ({}, {inner_g} GPUs)",
                fmt_secs(inner_wall)
            ),
        ]);
    }
    let mut out = render_table(
        &[
            "workload",
            "outer probe (partial+parallel)",
            "inner probe (parallel only)",
        ],
        &rows,
    );
    out.push_str("paper: outer-probe speedups 7x-1123x, favoring longer experiments\n");
    out
}

/// Figure 13: RsNt scale-out across 4-GPU machines, weak initialization.
pub fn fig13() -> String {
    let w = Workload::by_name("RsNt").unwrap();
    let rec = simulate_record(w, EPSILON, true);
    let mut rows = Vec::new();
    for machines in 1..=4usize {
        let gpus = machines * 4;
        let sim = simulate_replay(w, &rec, ProbePosition::Inner, gpus, InitMode::Weak);
        rows.push(vec![
            format!("{machines} × P3.8xLarge ({gpus} GPUs)"),
            format!("{:.2} h", sim.wall_secs / 3600.0),
            format!("{:.2}x", sim.speedup),
            format!("{:.2}x", max_speedup(w.epochs, gpus)),
        ]);
    }
    let mut out = render_table(
        &["machines", "replay time", "speedup", "load-balance bound"],
        &rows,
    );
    out.push_str("paper: max achievable at 16 GPUs is 200/13 = 15.38x\n");
    out
}

/// Figure 14: the same work done serially (P3.2xLarge) vs in parallel
/// (m × P3.8xLarge).
///
/// Machine counts per workload follow the paper's rule — "each workload
/// uses as many machines […] as will result in parallelism gains": a
/// configuration only appears if its GPUs stay ≥ 80% load-balanced
/// (`epochs / (⌈epochs/G⌉·G)`); billing idle GPUs is what would inflate
/// marginal cost.
pub fn fig14() -> String {
    let mut rows = Vec::new();
    for name in ["Cifr", "RsNt", "Wiki", "RnnT"] {
        let w = Workload::by_name(name).unwrap();
        let rec = simulate_record(w, EPSILON, true);
        let serial = serial_bill(w.vanilla_hours);
        for machines in 1usize..=4 {
            let gpus = machines * machine::P3_8X_GPUS;
            let slots = w.epochs.div_ceil(gpus as u64) * gpus as u64;
            let efficiency = w.epochs as f64 / slots as f64;
            if efficiency < 0.8 {
                continue; // the paper would not bill idle GPUs
            }
            let sim = simulate_replay(w, &rec, ProbePosition::Inner, gpus, InitMode::Weak);
            let par = parallel_bill(&sim, machines);
            rows.push(vec![
                format!("{name} ({machines}m, {gpus} GPUs)"),
                format!("${:.2} / {:.1} h", serial.total_usd, serial.hours),
                format!("${:.2} / {:.2} h", par.total_usd, par.hours),
                format!("${:+.2}", par.total_usd - serial.total_usd),
            ]);
        }
    }
    let mut out = render_table(
        &["workload", "serial (P3.2x)", "parallel (P3.8x)", "marginal"],
        &rows,
    );
    out.push_str("paper: parallel costs about the same as serial; marginal cost under $3\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig05_shape_holds() {
        // Small payload to keep the test fast; shape must still hold.
        let out = fig05(2 << 20);
        assert!(out.contains("Fork (Flor)"));
        // The headline: fork spends a small fraction of baseline main-thread
        // time.
        let pct: f64 = out
            .lines()
            .find(|l| l.contains("% of baseline"))
            .and_then(|l| l.split('%').next())
            .and_then(|l| l.split_whitespace().last())
            .and_then(|s| s.parse().ok())
            .expect("summary line");
        assert!(pct < 60.0, "fork at {pct}% of baseline main-thread time");
    }

    #[test]
    fn fig07_reports_both_modes() {
        let out = fig07();
        assert!(out.contains("RTE"));
        assert!(out.contains("91.0%"), "{out}");
    }

    #[test]
    fn fig10_fig12_fig13_fig14_render() {
        for out in [fig10(), fig12(), fig13(), fig14()] {
            assert!(out.lines().count() > 4, "{out}");
        }
    }
}
