//! Checkpoint-compression measurement for the record hot path.
//!
//! Builds the same drifting-tensor workload — a large f32 slab of which a
//! few percent of elements move per training iteration, the regime where
//! "successive training checkpoints differ only slightly" — through two
//! store configurations:
//!
//! - **pre_pr** — delta encoding off, single-threaded naive-scan LZ
//!   ([`Compressor::Reference`]): the pre-delta pipeline, compressing (or
//!   raw-storing) every full slab.
//! - **delta** — the production pipeline: XOR delta chains with keyframes
//!   every K versions, hash-chain LZ, and parallel chunked compression
//!   for large keyframes.
//!
//! Measured per side: bytes on disk, per-checkpoint submit latency
//! (median) and end-to-end submit throughput, and the sequential restore
//! median through `get_bytes` on a fresh handle. The `bench_compress_json`
//! binary emits the committed `BENCH_compress.json`; `flor-sim`'s
//! `cost::delta_cost` constants come from it.

use flor_chkpt::{CheckpointStore, Compressor, StoreOptions, StoreStats};
use std::path::PathBuf;
use std::time::Instant;

/// f32 elements that drift per version, as a fraction denominator
/// (20 → 5% of the slab per step).
pub const DRIFT_DENOM: usize = 20;

/// Deterministic base slab: pseudo-random floats in ±1 (incompressible,
/// like trained weights).
pub fn base_slab(floats: usize) -> Vec<f32> {
    let mut x = 0x5DEECE66Du64 | 1;
    (0..floats)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
        })
        .collect()
}

/// Applies version `v`'s drift in place: a sliding ~5% subset of elements
/// gets a small additive update (one optimizer step over a mostly-frozen
/// model — embedding rows, adapter weights, head layers).
pub fn drift(slab: &mut [f32], v: u64) {
    for (i, val) in slab.iter_mut().enumerate() {
        if (i as u64)
            .wrapping_mul(2654435761)
            .wrapping_add(v)
            .is_multiple_of(DRIFT_DENOM as u64)
        {
            *val += 1e-3 * ((v % 7) as f32 + 1.0);
        }
    }
}

/// The byte payload of one version.
pub fn payload_bytes(slab: &[f32]) -> Vec<u8> {
    slab.iter().flat_map(|f| f.to_le_bytes()).collect()
}

/// One side's measurements.
#[derive(Debug, Clone, Copy)]
pub struct SideResult {
    /// Bytes on disk across all versions (stored payload bytes).
    pub stored_bytes: u64,
    /// Uncompressed bytes submitted.
    pub raw_bytes: u64,
    /// Median per-checkpoint submit (stage + commit) latency, ns.
    pub submit_median_ns: u64,
    /// End-to-end submit throughput, raw MB/s.
    pub submit_mb_per_s: f64,
    /// Median sequential restore (`get_bytes`) latency on a fresh handle, ns.
    pub restore_median_ns: u64,
    /// Store stats snapshot after the restore pass.
    pub stats: StoreStats,
}

fn tmp(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("flor-bench-compress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one side: writes `versions` drifting checkpoints of
/// `floats` f32 elements through `opts`, then restores them all.
pub fn run_side(tag: &str, opts: StoreOptions, versions: u64, floats: usize) -> SideResult {
    let root = tmp(tag);
    // Materialize every version's payload up front: the measured quantity
    // is the store submit path, not the workload generator.
    let mut slab = base_slab(floats);
    let payloads: Vec<Vec<u8>> = (0..versions)
        .map(|v| {
            if v > 0 {
                drift(&mut slab, v);
            }
            payload_bytes(&slab)
        })
        .collect();
    let raw_bytes: u64 = payloads.iter().map(|p| p.len() as u64).sum();
    let mut submit_ns: Vec<u64> = Vec::with_capacity(versions as usize);
    {
        let store = CheckpointStore::open_opts(&root, opts).expect("open bench store");
        for (v, payload) in payloads.iter().enumerate() {
            let t0 = Instant::now();
            store.put("sb_0", v as u64, payload).expect("bench put");
            submit_ns.push(t0.elapsed().as_nanos() as u64);
        }
    }
    let submit_wall = submit_ns.iter().sum::<u64>() as f64 / 1e9;

    // Restore pass on a fresh handle (cold index, cold caches).
    let store = CheckpointStore::open_opts(&root, opts).expect("reopen bench store");
    let mut restore_ns: Vec<u64> = Vec::with_capacity(versions as usize);
    let mut checksum = 0u64;
    for v in 0..versions {
        let t0 = Instant::now();
        let b = store.get_bytes("sb_0", v).expect("bench restore");
        restore_ns.push(t0.elapsed().as_nanos() as u64);
        checksum ^= b.len() as u64;
    }
    assert!(checksum != u64::MAX, "keep the restores observable");
    let stats = store.stats();
    let stored_bytes = store.total_stored_bytes();
    drop(store);
    let _ = std::fs::remove_dir_all(&root);

    submit_ns.sort_unstable();
    restore_ns.sort_unstable();
    SideResult {
        stored_bytes,
        raw_bytes,
        submit_median_ns: submit_ns[submit_ns.len() / 2],
        submit_mb_per_s: raw_bytes as f64 / 1e6 / submit_wall.max(1e-9),
        restore_median_ns: restore_ns[restore_ns.len() / 2],
        stats,
    }
}

/// The pre-delta pipeline's options.
pub fn pre_pr_options() -> StoreOptions {
    StoreOptions {
        delta_keyframe_interval: 0,
        compressor: Compressor::Reference,
        ..StoreOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drifting_workload_delta_beats_pre_pr_on_bytes() {
        // Small instance of the committed benchmark: the delta pipeline
        // must store several times fewer bytes on the drifting workload.
        let versions = 12u64;
        let floats = 64 * 1024; // 256 KiB payloads
        let pre = run_side("t-pre", pre_pr_options(), versions, floats);
        let delta = run_side("t-delta", StoreOptions::default(), versions, floats);
        assert_eq!(pre.raw_bytes, delta.raw_bytes);
        assert!(
            delta.stored_bytes * 3 <= pre.stored_bytes,
            "expected ≥3× byte reduction: {} vs {}",
            delta.stored_bytes,
            pre.stored_bytes
        );
        assert!(
            delta.stats.delta_entries >= versions - 2,
            "{:?}",
            delta.stats
        );
        // Both sides restored every version bit-identically (checked by
        // the store's CRCs on every read inside run_side).
        assert!(delta.restore_median_ns > 0 && pre.restore_median_ns > 0);
    }

    #[test]
    fn drift_moves_a_small_sliding_fraction() {
        let base = base_slab(10_000);
        let mut v1 = base.clone();
        drift(&mut v1, 1);
        let changed = base.iter().zip(&v1).filter(|(a, b)| a != b).count();
        let frac = changed as f64 / base.len() as f64;
        assert!(
            (0.02..0.10).contains(&frac),
            "drift should move ~5% of elements, moved {frac:.3}"
        );
    }
}
