//! Ablations for the design choices DESIGN.md calls out — each knocks out
//! one of Flor's mechanisms and measures what it was buying.

use crate::scripts;
use crate::util::{fresh_dir, render_table};
use flor_core::record::{record, RecordOptions};
use flor_core::replay::{replay, ReplayOptions};

/// Ablation 1 — **lean checkpointing** (§5.2). With the changeset analysis
/// disabled, SkipBlocks capture the whole environment: loop-scoped
/// tensors (batches, activations, gradients) inflate every checkpoint.
pub fn lean() -> String {
    let mut rows = Vec::new();
    for (name, src) in scripts::MINI_WORKLOADS {
        let mut lean_opts = RecordOptions::new(fresh_dir(&format!("abl-lean-{name}")));
        lean_opts.adaptive = false;
        let lean_rep = record(src, &lean_opts).expect("lean record");

        let full_root = fresh_dir(&format!("abl-full-{name}"));
        let mut full_opts = RecordOptions::new(&full_root);
        full_opts.adaptive = false;
        full_opts.lean = false;
        let full_rep = record(src, &full_opts).expect("full record");

        // Full-env checkpoints must still replay correctly (they are a
        // superset of the lean ones).
        let check = replay(src, &full_root, &ReplayOptions::default()).expect("replay");
        assert!(check.anomalies.is_empty(), "{name}: {:?}", check.anomalies);

        rows.push(vec![
            name.to_string(),
            format!("{} KiB", lean_rep.raw_bytes / 1024),
            format!("{} KiB", full_rep.raw_bytes / 1024),
            format!(
                "{:.2}x",
                full_rep.raw_bytes as f64 / lean_rep.raw_bytes.max(1) as f64
            ),
        ]);
    }
    let mut out = render_table(
        &["workload", "lean (changeset)", "full env", "inflation"],
        &rows,
    );
    out.push_str("lean checkpointing drops loop-scoped state (batches, activations, gradients)\n");
    out
}

/// Ablation 2 — **adaptive checkpointing** (§5.3), live. The fine-tuning
/// mini carries a frozen ballast; with Eq. 4 active it checkpoints
/// sparsely, without it every epoch pays the full materialization cost.
pub fn adaptive_live() -> String {
    let mut rows = Vec::new();
    for (name, src) in [
        ("cv_train", scripts::CV_TRAIN),
        ("finetune", scripts::FINETUNE),
    ] {
        let adaptive = record(
            src,
            &RecordOptions::new(fresh_dir(&format!("abl-ad-{name}"))),
        )
        .expect("adaptive record");
        let mut off_opts = RecordOptions::new(fresh_dir(&format!("abl-off-{name}")));
        off_opts.adaptive = false;
        let off = record(src, &off_opts).expect("non-adaptive record");
        rows.push(vec![
            name.to_string(),
            format!(
                "{} ckpts / {} KiB",
                adaptive.checkpoints,
                adaptive.raw_bytes / 1024
            ),
            format!("{} ckpts / {} KiB", off.checkpoints, off.raw_bytes / 1024),
        ]);
    }
    let mut out = render_table(
        &["workload", "adaptive (Eq. 4)", "always checkpoint"],
        &rows,
    );
    out.push_str("the fine-tune regime is where adaptivity pays (paper Figure 7)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lean_ablation_shows_inflation() {
        let out = lean();
        // At least one workload's full-env checkpoints are meaningfully
        // larger than its lean ones.
        let inflations: Vec<f64> = out
            .lines()
            .filter_map(|l| l.split_whitespace().last())
            .filter_map(|w| w.strip_suffix('x'))
            .filter_map(|w| w.parse().ok())
            .collect();
        assert!(!inflations.is_empty(), "{out}");
        assert!(
            inflations.iter().any(|&x| x > 1.2),
            "full-env checkpoints should be larger: {inflations:?}\n{out}"
        );
        assert!(
            inflations.iter().all(|&x| x >= 0.95),
            "full env can never be smaller than lean: {inflations:?}"
        );
    }

    #[test]
    fn adaptive_live_ablation_renders() {
        let out = adaptive_live();
        assert!(out.contains("finetune"), "{out}");
    }
}
