//! Regenerates Figure 12: replay latency by probe position.
fn main() {
    println!("=== Figure 12 — replay latency by probe position ===");
    print!("{}", flor_bench::figures::fig12());
}
