//! Emits `BENCH_serve.json`: the async multi-tenant query service under
//! realistic socket load. The fixture is one recorded training run with
//! an inner-loop probe; every phase drives the real epoll server through
//! real sockets with the line protocol. Columns:
//!
//! - `serial`: one closed-loop client streaming the same (warm-cache)
//!   hindsight query, waiting for each `+done` before the next `stream`.
//!   Reports qps and per-round TTFE (send → first `+entry`) p50/p99.
//!   The throughput phases emulate a 2ms client RTT (loopback has none;
//!   the column is labeled): a serialized issuer stalls one RTT per
//!   round, which is the idle time an async server reclaims.
//! - `concurrent`: 16 closed-loop clients over 16 connections against
//!   the same server, same emulated RTT. `qps_speedup` is its aggregate
//!   qps over `serial` — the event loop overlaps the clients' RTTs and
//!   amortizes wakeups, submissions, and flushes across connections, so
//!   aggregate throughput must be ≥4× the serialized single-client
//!   baseline (asserted in-binary).
//! - `admission`: the 16-client phase re-run with per-tenant token
//!   buckets, concurrent-job limits, and backlog shedding switched on
//!   (generously, so nothing is actually shed): `admission_overhead` is
//!   its qps over the uncontrolled run, and must stay ≥0.7× (the
//!   admission door is O(1) per submission). A separate shed demo with
//!   `max_tenant_jobs = 1` pipelines fresh queries and asserts that at
//!   least one is refused with a one-line reason.
//! - `fresh`: TTFE p50/p99 of genuinely replaying queries (each probe
//!   carries a distinct constant, defeating both the query cache and the
//!   cross-query slice memo), 4 clients — the baseline for:
//! - `slow_reader`: the same 4-client fresh workload while a fifth
//!   connection has streamed hundreds of queries and never reads a byte
//!   (Unix socket + minimum SO_SNDBUF, so its output genuinely jams).
//!   Per-connection backpressure must confine the damage:
//!   `p99_ratio = with_slow / baseline` is asserted ≤1.5× in-binary
//!   (plus a 25ms absolute allowance for scheduler noise at p99).
//!
//! ```text
//! cargo run --release -p flor-bench --bin bench_serve [-- OUT.json]
//! ```
//!
//! Quick mode (`FLOR_BENCH_QUICK=1`, used by `tools/bench.sh` in CI)
//! trims round counts; the reported ratios are scale-invariant.

use flor_net::{ClientConn, Endpoint};
use flor_registry::{AdmissionPolicy, Registry, Server, ServerConfig, ServerHandle};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Training-shaped fixture: 6 epochs × 8 batches, small enough that a
/// fresh sliced replay is milliseconds but real work, with enough log
/// entries (48 per query) that streaming them is a real payload.
const TRAIN_SRC: &str = "\
import flor
data = synth_data(n=160, dim=8, classes=2, seed=11)
loader = dataloader(data, batch_size=20, seed=11)
net = mlp(input=8, hidden=8, classes=2, depth=1, seed=11)
optimizer = sgd(net, lr=0.1)
criterion = cross_entropy()
avg = meter()
for epoch in range(6):
    avg.reset()
    for batch in loader.epoch():
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
";

/// An inner-loop probe reading per-batch state (`loss` is live and
/// changes every step, so slicing cannot skip the loop body). The
/// constant makes each variant a distinct computation: a new query-cache
/// key AND a new slice class, so replay is genuinely paid.
fn fresh_probe(k: u64) -> String {
    let out = TRAIN_SRC.replace(
        "        avg.update(loss)\n",
        &format!("        avg.update(loss)\n        log(\"probe{k}\", loss + {k})\n"),
    );
    assert_ne!(out, TRAIN_SRC);
    out
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flor-bench-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

/// Minimal blocking protocol client over the real socket.
struct Client {
    conn: Arc<ClientConn>,
    reader: BufReader<ArcConn>,
}

struct ArcConn(Arc<ClientConn>);
impl std::io::Read for ArcConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        (&*self.0).read(buf)
    }
}

impl Client {
    fn connect(ep: &Endpoint) -> Client {
        let conn = Arc::new(ClientConn::connect(ep).expect("connect"));
        let mut c = Client {
            reader: BufReader::new(ArcConn(conn.clone())),
            conn,
        };
        let banner = c.read_line();
        assert!(banner.starts_with("# serving registry"), "{banner}");
        c
    }

    fn send(&mut self, line: &str) {
        (&*self.conn)
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
    }

    fn read_line(&mut self) -> String {
        let mut s = String::new();
        let n = self.reader.read_line(&mut s).expect("read");
        assert!(n > 0, "unexpected EOF from server");
        s.trim_end_matches('\n').to_string()
    }

    /// One closed-loop round: `stream` the query, record TTFE (first
    /// `+entry` of this job), return once this job's `+done` arrives.
    /// `rtt` emulates the client's network round-trip (loopback has
    /// none): the issuer cannot see a response sooner than one RTT
    /// after asking, which is precisely the per-round stall a
    /// serialized client pays and concurrent clients overlap.
    fn stream_round(&mut self, query_path: &str, rtt: Duration) -> u64 {
        let t0 = Instant::now();
        self.send(&format!("stream bench {query_path}"));
        if !rtt.is_zero() {
            std::thread::sleep(rtt);
        }
        let queued = self.read_line();
        assert!(queued.starts_with("queued job "), "{queued}");
        let id: u64 = queued["queued job ".len()..]
            .split(':')
            .next()
            .unwrap()
            .parse()
            .expect("job id");
        let entry_tag = format!("+entry {id} ");
        let done_tag = format!("+done {id} ");
        let mut ttfe_ns = 0u64;
        loop {
            let line = self.read_line();
            if ttfe_ns == 0 && line.starts_with(&entry_tag) {
                ttfe_ns = t0.elapsed().as_nanos() as u64;
            }
            if line.starts_with(&done_tag) {
                assert!(!line.contains("FAILED"), "{line}");
                return ttfe_ns;
            }
        }
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// `clients` closed-loop connections, `rounds` streams each; returns
/// (aggregate qps, all TTFE samples in ns).
fn closed_loop(
    ep: &Endpoint,
    clients: usize,
    rounds: usize,
    paths: &[String],
    rtt: Duration,
) -> (f64, Vec<u64>) {
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    let ttfes = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut c = Client::connect(ep);
                    let mut local = Vec::with_capacity(rounds);
                    for _ in 0..rounds {
                        let path = &paths[next.fetch_add(1, Ordering::Relaxed) % paths.len()];
                        local.push(c.stream_round(path, rtt));
                    }
                    local
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
        all
    });
    let wall = t0.elapsed().as_secs_f64();
    ((clients * rounds) as f64 / wall, ttfes)
}

fn start(registry: &Arc<Registry>, config: ServerConfig) -> (ServerHandle, Endpoint) {
    let handle = Server::start(registry.clone(), config).expect("start server");
    let ep = handle.local_endpoints()[0].clone();
    (handle, ep)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let quick = std::env::var("FLOR_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false);
    if !flor_net::supported() {
        eprintln!("bench_serve: raw-syscall networking unsupported on this host; skipping");
        return;
    }
    // (serial rounds, rounds per concurrent client, fresh queries per
    // client, pipelined streams the slow reader jams with).
    let (serial_rounds, conc_rounds, fresh_per_client, slow_pipeline) = if quick {
        (60usize, 12usize, 5usize, 150usize)
    } else {
        (200, 40, 12, 300)
    };
    let clients = 16usize;
    let fresh_clients = 4usize;
    // The throughput phases emulate a 2ms client RTT (a same-region
    // datacenter link; loopback has none). A serialized issuer pays it
    // once per round; 16 concurrent connections overlap it — the very
    // idle time the single-threaded event loop exists to reclaim. The
    // TTFE phases measure the server itself and stay RTT-free.
    let rtt = Duration::from_millis(2);

    let dir = tmp_dir("fixture");
    let registry = Arc::new(Registry::open(dir.join("registry")).expect("open registry"));
    eprintln!("recording 6x8 training fixture…");
    registry
        .record_run("bench", TRAIN_SRC, |o| o.adaptive = false)
        .expect("record fixture");
    // The warm query all throughput phases share, and distinct fresh
    // probes (one constant each, numbered across phases so nothing is
    // ever served from a cache it didn't earn).
    let warm_path = dir.join("warm.flr");
    std::fs::write(&warm_path, fresh_probe(0)).expect("write warm probe");
    let warm = vec![warm_path.display().to_string()];
    let mut fresh_counter = 1u64;
    let mut fresh_batch = |n: usize| -> Vec<String> {
        (0..n)
            .map(|_| {
                let k = fresh_counter;
                fresh_counter += 1;
                let p = dir.join(format!("fresh{k}.flr"));
                std::fs::write(&p, fresh_probe(k)).expect("write fresh probe");
                p.display().to_string()
            })
            .collect()
    };

    // ── serial: one closed-loop client on the warm query ──────────────
    eprintln!("serial: 1 client × {serial_rounds} warm streams…");
    let (handle, ep) = start(&registry, ServerConfig::default());
    {
        // Cache warm-up round, excluded from timing.
        let mut c = Client::connect(&ep);
        c.stream_round(&warm[0], Duration::ZERO);
    }
    let (qps_serial, mut serial_ttfe) = closed_loop(&ep, 1, serial_rounds, &warm, rtt);
    drop(handle);
    serial_ttfe.sort_unstable();
    let serial_p50 = percentile(&serial_ttfe, 0.50);
    let serial_p99 = percentile(&serial_ttfe, 0.99);

    // ── concurrent: 16 clients, same warm query, no admission ─────────
    eprintln!("concurrent: {clients} clients × {conc_rounds} warm streams…");
    let (handle, ep) = start(&registry, ServerConfig::default());
    {
        let mut c = Client::connect(&ep);
        c.stream_round(&warm[0], Duration::ZERO);
    }
    let (qps_conc, _) = closed_loop(&ep, clients, conc_rounds, &warm, rtt);
    drop(handle);
    let qps_speedup = qps_conc / qps_serial;

    // ── admission: same load with every limit switched on ─────────────
    eprintln!("admission: {clients} clients × {conc_rounds} with generous quotas…");
    let (handle, ep) = start(
        &registry,
        ServerConfig {
            admission: AdmissionPolicy {
                max_queue_depth: 4096,
                max_tenant_jobs: 64,
                tenant_burst: 1_000_000,
                tenant_refill_per_sec: 1_000_000.0,
                max_backlog_ms: 60_000,
            },
            ..ServerConfig::default()
        },
    );
    {
        let mut c = Client::connect(&ep);
        c.stream_round(&warm[0], Duration::ZERO);
    }
    let (qps_admitted, _) = closed_loop(&ep, clients, conc_rounds, &warm, rtt);
    drop(handle);
    let admission_overhead = qps_admitted / qps_conc;

    // Shed demo: one tenant capped at a single concurrent job pipelines
    // fresh queries; the door must refuse at least one with a reason.
    eprintln!("admission: shed demo (max_tenant_jobs = 1)…");
    let (handle, ep) = start(
        &registry,
        ServerConfig {
            admission: AdmissionPolicy {
                max_tenant_jobs: 1,
                ..AdmissionPolicy::unlimited()
            },
            ..ServerConfig::default()
        },
    );
    let sheds = {
        let mut c = Client::connect(&ep);
        c.send("tenant bench-shed");
        assert_eq!(c.read_line(), "tenant set: \"bench-shed\"");
        let burst = fresh_batch(6);
        for p in &burst {
            c.send(&format!("query bench {p}"));
        }
        let mut queued = 0usize;
        let mut denied = 0usize;
        while queued + denied < burst.len() {
            let line = c.read_line();
            if line.starts_with("queued job ") {
                queued += 1;
            } else if line.starts_with("admission denied") {
                denied += 1;
            }
        }
        denied as u64
    };
    drop(handle);
    assert!(sheds >= 1, "capped tenant must shed at least one query");

    // ── fresh-replay TTFE, then the same with a jammed slow reader ────
    // Unix socket + minimum SO_SNDBUF: a non-reading peer's output jams
    // in its own buffers instead of vanishing into the peer's TCP
    // receive window. Stall-dropping is disabled so the jam persists
    // for the whole phase.
    let sock_config = || ServerConfig {
        endpoints: vec![Endpoint::Unix(dir.join("bench.sock"))],
        sndbuf: 1,
        wrbuf_high_water: 8 * 1024,
        write_stall_timeout_ms: 0,
        ..ServerConfig::default()
    };
    eprintln!("fresh: {fresh_clients} clients × {fresh_per_client} distinct replays…");
    let (handle, ep) = start(&registry, sock_config());
    let paths = fresh_batch(fresh_clients * fresh_per_client);
    let (_, mut base_ttfe) =
        closed_loop(&ep, fresh_clients, fresh_per_client, &paths, Duration::ZERO);
    drop(handle);
    base_ttfe.sort_unstable();
    let fresh_p50 = percentile(&base_ttfe, 0.50);
    let fresh_p99 = percentile(&base_ttfe, 0.99);

    eprintln!("slow reader: same fresh load beside a never-reading stream…");
    let _ = std::fs::remove_file(dir.join("bench.sock"));
    let (handle, ep) = start(&registry, sock_config());
    let slow = ClientConn::connect(&ep).expect("slow connect");
    let mut jam = String::new();
    for _ in 0..slow_pipeline {
        let _ = writeln!(jam, "stream bench {}", warm[0]);
    }
    (&slow).write_all(jam.as_bytes()).expect("jam writes");
    let paths = fresh_batch(fresh_clients * fresh_per_client);
    let (_, mut slow_ttfe) =
        closed_loop(&ep, fresh_clients, fresh_per_client, &paths, Duration::ZERO);
    drop(handle);
    drop(slow);
    slow_ttfe.sort_unstable();
    let slow_p99 = percentile(&slow_ttfe, 0.99);
    let p99_ratio = slow_p99 as f64 / fresh_p99.max(1) as f64;

    eprintln!(
        "serve: serial {qps_serial:.0} qps (TTFE p50 {:.2}ms p99 {:.2}ms), {clients} clients \
         {qps_conc:.0} qps — {qps_speedup:.2}x; admission {qps_admitted:.0} qps \
         ({admission_overhead:.2}x, {sheds} shed in demo); fresh TTFE p50 {:.2}ms p99 {:.2}ms, \
         beside slow reader p99 {:.2}ms — {p99_ratio:.2}x",
        serial_p50 as f64 / 1e6,
        serial_p99 as f64 / 1e6,
        fresh_p50 as f64 / 1e6,
        fresh_p99 as f64 / 1e6,
        slow_p99 as f64 / 1e6,
    );
    assert!(
        qps_speedup >= 4.0,
        "16 concurrent clients must pipeline to ≥4× the serialized qps: got {qps_speedup:.2}x"
    );
    assert!(
        admission_overhead >= 0.7,
        "the admission door is O(1) and must not cost the service its throughput: \
         got {admission_overhead:.2}x"
    );
    assert!(
        slow_p99 as f64 <= fresh_p99 as f64 * 1.5 + 25e6,
        "a slow reader must not degrade other connections' p99 TTFE past 1.5×: \
         {:.2}ms → {:.2}ms ({p99_ratio:.2}x)",
        fresh_p99 as f64 / 1e6,
        slow_p99 as f64 / 1e6,
    );

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"bench\": \"serve\",");
    let _ = writeln!(
        body,
        "  \"description\": \"async multi-tenant query service over real sockets: closed-loop \
         warm-cache streaming qps for 1 vs 16 clients under an emulated 2ms client RTT (the \
         event loop overlaps the clients' round-trips and amortizes wakeups and flushes, so \
         concurrent aggregate qps is held ≥4x the serialized baseline), the same \
         load under full admission control, a shed demo with a capped tenant, and fresh-replay \
         TTFE p50/p99 with and without a never-reading peer jamming its own Unix-socket \
         buffers (per-connection backpressure holds the others' p99 within 1.5x)\","
    );
    let _ = writeln!(body, "  \"quick\": {quick},");
    let _ = writeln!(
        body,
        "  \"fixture\": {{\"epochs\": 6, \"batches\": 8, \"emulated_rtt_ms\": 2, \
         \"serial_rounds\": {serial_rounds}, \
         \"concurrent_clients\": {clients}, \"rounds_per_client\": {conc_rounds}, \
         \"fresh_clients\": {fresh_clients}, \"fresh_per_client\": {fresh_per_client}, \
         \"slow_pipeline\": {slow_pipeline}}},"
    );
    let _ = writeln!(
        body,
        "  \"serial\": {{\"qps\": {qps_serial:.1}, \"ttfe_p50_ns\": {serial_p50}, \
         \"ttfe_p99_ns\": {serial_p99}}},"
    );
    let _ = writeln!(body, "  \"concurrent\": {{\"qps\": {qps_conc:.1}}},");
    let _ = writeln!(
        body,
        "  \"admission\": {{\"qps\": {qps_admitted:.1}, \"shed_demo_refusals\": {sheds}}},"
    );
    let _ = writeln!(
        body,
        "  \"fresh\": {{\"ttfe_p50_ns\": {fresh_p50}, \"ttfe_p99_ns\": {fresh_p99}}},"
    );
    let _ = writeln!(
        body,
        "  \"slow_reader\": {{\"with_slow_p99_ns\": {slow_p99}, \"p99_ratio\": {p99_ratio:.3}}},"
    );
    let _ = writeln!(body, "  \"qps_speedup\": {qps_speedup:.2},");
    let _ = writeln!(body, "  \"admission_overhead\": {admission_overhead:.2}");
    let _ = writeln!(body, "}}");

    std::fs::write(&out_path, &body).expect("write BENCH_serve.json");
    eprintln!("wrote {out_path}");
}
