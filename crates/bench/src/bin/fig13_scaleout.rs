//! Regenerates Figure 13: RsNt replay scale-out across machines.
fn main() {
    println!("=== Figure 13 — RsNt scale-out ===");
    print!("{}", flor_bench::figures::fig13());
}
