//! Regenerates Figure 10: parallel replay time as fraction of vanilla.
fn main() {
    println!("=== Figure 10 — parallel replay fraction (4 GPUs) ===");
    print!("{}", flor_bench::figures::fig10());
}
