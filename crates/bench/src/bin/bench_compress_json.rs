//! Emits `BENCH_compress.json`: the checkpoint-compression before/after
//! table for the delta-chain + parallel-compression pipeline — bytes on
//! disk and record submit throughput on a drifting-tensor workload
//! (pre-delta naive-LZ full-slab pipeline vs delta chains), plus the
//! restore medians both ways. This is the committed benchmark trajectory
//! for checkpoint bytes; `tools/ci.sh`'s bench-regression step holds
//! future PRs to it, and `flor-sim`'s `cost::delta_cost` constants come
//! from it.
//!
//! ```text
//! cargo run --release -p flor-bench --bin bench_compress_json [-- OUT.json]
//! ```
//!
//! Quick mode (`FLOR_BENCH_QUICK=1`, used by `tools/bench.sh` in CI)
//! shrinks the fixture so the smoke run finishes in seconds.

use flor_bench::compress_delta::{pre_pr_options, run_side, SideResult, DRIFT_DENOM};
use flor_chkpt::StoreOptions;
use std::fmt::Write as _;

fn json_side(out: &mut String, s: &SideResult) {
    let _ = write!(
        out,
        "{{\"stored_bytes\": {}, \"raw_bytes\": {}, \"submit_median_ns\": {}, \
         \"submit_mb_per_s\": {:.1}, \"restore_median_ns\": {}}}",
        s.stored_bytes, s.raw_bytes, s.submit_median_ns, s.submit_mb_per_s, s.restore_median_ns
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_compress.json".to_string());
    let quick = std::env::var("FLOR_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false);
    // Both fixtures keep the same keyframe fraction (1 in 8), so the
    // bytes-reduction ratio stays comparable between the CI quick run and
    // the committed full-scale baseline.
    let (versions, floats) = if quick {
        (16u64, 256 * 1024) // 1 MiB payloads
    } else {
        (32u64, 1024 * 1024) // 4 MiB payloads
    };
    let payload_mb = (floats * 4) as f64 / 1e6;

    eprintln!(
        "drifting-tensor workload: {versions} versions × {payload_mb:.1} MB, \
         ~{:.0}% of elements move per version",
        100.0 / DRIFT_DENOM as f64
    );
    // Warmup (allocator, CPU ramp) on a small instance of each side.
    run_side("warm-pre", pre_pr_options(), 4, 64 * 1024);
    run_side("warm-delta", StoreOptions::default(), 4, 64 * 1024);

    let pre = run_side("pre", pre_pr_options(), versions, floats);
    let delta = run_side("delta", StoreOptions::default(), versions, floats);

    let bytes_reduction = pre.stored_bytes as f64 / delta.stored_bytes.max(1) as f64;
    let submit_speedup = delta.submit_mb_per_s / pre.submit_mb_per_s.max(1e-9);
    let restore_ratio = delta.restore_median_ns as f64 / pre.restore_median_ns.max(1) as f64;
    let delta_frame_ratio = {
        // Mean stored/raw over delta entries alone: keyframes store ~raw.
        let kf_bytes = delta.stats.keyframe_entries * (floats as u64 * 4);
        let delta_bytes = delta.stored_bytes.saturating_sub(kf_bytes);
        let delta_raw = delta.stats.delta_entries * (floats as u64 * 4);
        delta_bytes as f64 / delta_raw.max(1) as f64
    };

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"bench\": \"compress_delta\",");
    let _ = writeln!(
        body,
        "  \"description\": \"checkpoint bytes + record submit throughput on a drifting-tensor \
         workload; pre_pr = delta off + single-threaded naive-scan LZ over every full slab, \
         delta = XOR delta chains (keyframe every 8) + hash-chain LZ + parallel chunked \
         keyframe compression (this PR)\","
    );
    let _ = writeln!(body, "  \"quick\": {quick},");
    let _ = writeln!(
        body,
        "  \"fixture\": {{\"versions\": {versions}, \"payload_bytes\": {}, \
         \"drift_fraction\": {:.3}}},",
        floats * 4,
        1.0 / DRIFT_DENOM as f64
    );
    let _ = write!(body, "  \"pre_pr\": ");
    json_side(&mut body, &pre);
    let _ = writeln!(body, ",");
    let _ = write!(body, "  \"delta\": ");
    json_side(&mut body, &delta);
    let _ = writeln!(body, ",");
    let _ = writeln!(
        body,
        "  \"delta_entries\": {}, \"keyframes\": {}, \"delta_frame_ratio\": {:.4},",
        delta.stats.delta_entries, delta.stats.keyframe_entries, delta_frame_ratio
    );
    let _ = writeln!(body, "  \"bytes_reduction\": {bytes_reduction:.2},");
    let _ = writeln!(body, "  \"submit_speedup\": {submit_speedup:.2},");
    let _ = writeln!(body, "  \"restore_ratio\": {restore_ratio:.2}");
    let _ = writeln!(body, "}}");

    std::fs::write(&out_path, &body).expect("write BENCH_compress.json");
    eprintln!(
        "bytes {} → {} ({bytes_reduction:.2}x); submit {:.0} → {:.0} MB/s \
         ({submit_speedup:.2}x); restore median {} → {} ns ({restore_ratio:.2}x)",
        pre.stored_bytes,
        delta.stored_bytes,
        pre.submit_mb_per_s,
        delta.submit_mb_per_s,
        pre.restore_median_ns,
        delta.restore_median_ns
    );
    eprintln!("wrote {out_path}");
    assert!(
        bytes_reduction >= 3.0,
        "acceptance: stored-byte reduction must stay ≥3× (got {bytes_reduction:.2})"
    );
    assert!(
        submit_speedup >= 1.5,
        "acceptance: submit throughput must stay ≥1.5× the pre-PR compressor \
         (got {submit_speedup:.2})"
    );
}
