//! Emits `BENCH_replay_sched.json`: the replay scheduler before/after
//! table — static contiguous partitioning (the pre-refactor barrier
//! runtime) vs the cost-aware work-stealing executor with streaming merge.
//!
//! Three number groups:
//!
//! - `*_live`: real threaded replays of the fixtures (wall-clock, steals,
//!   time-to-first-streamed-entry). Wall-clock separates the schedulers
//!   only on hosts with ≥ `workers` cores; `host_cores` is recorded so the
//!   number can be read in context.
//! - `schedule`: the host-independent makespans each scheduler's
//!   assignment implies, priced with the fixture's **live-recorded** cost
//!   profile and computed by the same splitter/seeding/queue code the
//!   executor runs. `skewed_steal_speedup` (held to ≥1.5×) and
//!   `uniform_schedule_delta` (held to ≤5%) come from here.
//! - `sim_paper_scale`: the same comparison at Figure 13 magnitudes
//!   (200 epochs, 16 workers) via `flor_sim::sched_sim`.
//!
//! ```text
//! cargo run --release -p flor-bench --bin bench_replay_sched [-- OUT.json]
//! ```
//!
//! Quick mode (`FLOR_BENCH_QUICK=1`, used by `tools/bench.sh` in CI)
//! shrinks the spin units so the smoke run finishes in a couple seconds.

use flor_bench::replay_sched::{skewed_script, SchedFixture, SchedMeasurement};
use flor_sim::sched_sim;
use std::fmt::Write as _;

fn json_measurement(out: &mut String, m: &SchedMeasurement) {
    let _ = write!(
        out,
        "{{\"median_wall_ns\": {}, \"steals\": {}, \"ranges_executed\": {}, \
         \"stream_first_entry_ns\": {}}}",
        m.median_wall_ns, m.steals, m.ranges_executed, m.stream_first_entry_ns
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_replay_sched.json".to_string());
    let quick = std::env::var("FLOR_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false);
    // light/heavy spin units (busy(u) ≈ 0.155ms·u per batch × 3 batches)
    // and measurement repetitions.
    let (light, heavy, reps) = if quick { (8u64, 80, 1) } else { (40, 400, 3) };
    let (epochs, tail, workers) = (12u64, 2u64, 4usize);
    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    eprintln!("recording skewed fixture ({epochs} epochs, {tail}-epoch tail at {heavy} units)…");
    let skewed = SchedFixture::build("skew", &skewed_script(epochs, light, heavy, tail));
    eprintln!("recording uniform fixture…");
    let uniform = SchedFixture::build("uniform", &skewed_script(epochs, light, light, 0));

    eprintln!("replaying skewed fixture live: static vs stealing ({reps} rep(s))…");
    let skew_static = skewed.measure(workers, false, reps);
    let skew_steal = skewed.measure(workers, true, reps);
    eprintln!("replaying uniform fixture live: static vs stealing…");
    let uni_static = uniform.measure(workers, false, reps);
    let uni_steal = uniform.measure(workers, true, reps);

    // Host-independent schedule makespans from the live-recorded profiles.
    let skew_sched = skewed.schedule_compare(workers);
    let uni_sched = uniform.schedule_compare(workers);
    let live_delta =
        uni_steal.median_wall_ns as f64 / uni_static.median_wall_ns.max(1) as f64 - 1.0;
    let uni_sched_delta =
        uni_sched.steal_makespan_ns as f64 / uni_sched.static_makespan_ns.max(1) as f64 - 1.0;

    // Paper-scale simulation (Figure 13 shape with a tail skew), driving
    // the same splitter/queue the live engine uses.
    let sim_costs = sched_sim::tail_skew(200, 30.0, 20, 8.0);
    let sim = sched_sim::compare(&sim_costs, 16);

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"bench\": \"replay_sched\",");
    let _ = writeln!(
        body,
        "  \"description\": \"replay scheduling, static contiguous partitioning (pre-refactor \
         barrier runtime) vs cost-aware work-stealing executor with streaming merge; inner-probed \
         replay of a tail-skewed training run, {workers} workers. 'schedule' prices each \
         scheduler's assignment with the live-recorded cost profile (host-independent); live \
         wall-clock additionally reflects host parallelism (host_cores)\","
    );
    let _ = writeln!(body, "  \"quick\": {quick},");
    let _ = writeln!(body, "  \"host_cores\": {host_cores},");
    let _ = writeln!(
        body,
        "  \"fixture\": {{\"epochs\": {epochs}, \"heavy_tail_epochs\": {tail}, \
         \"light_units\": {light}, \"heavy_units\": {heavy}, \"workers\": {workers}, \
         \"reps\": {reps}}},"
    );
    let _ = write!(body, "  \"skewed_static_live\": ");
    json_measurement(&mut body, &skew_static);
    let _ = writeln!(body, ",");
    let _ = write!(body, "  \"skewed_stealing_live\": ");
    json_measurement(&mut body, &skew_steal);
    let _ = writeln!(body, ",");
    let _ = write!(body, "  \"uniform_static_live\": ");
    json_measurement(&mut body, &uni_static);
    let _ = writeln!(body, ",");
    let _ = write!(body, "  \"uniform_stealing_live\": ");
    json_measurement(&mut body, &uni_steal);
    let _ = writeln!(body, ",");
    let _ = writeln!(
        body,
        "  \"schedule\": {{\"skewed_static_makespan_ns\": {}, \"skewed_steal_makespan_ns\": {}, \
         \"skewed_steal_speedup\": {:.2}, \"skewed_profile_bound\": {:.2}, \
         \"uniform_static_makespan_ns\": {}, \"uniform_steal_makespan_ns\": {}, \
         \"uniform_schedule_delta\": {:.4}}},",
        skew_sched.static_makespan_ns,
        skew_sched.steal_makespan_ns,
        skew_sched.speedup,
        skew_sched.bound,
        uni_sched.static_makespan_ns,
        uni_sched.steal_makespan_ns,
        uni_sched_delta,
    );
    let _ = writeln!(
        body,
        "  \"skewed_steal_speedup\": {:.2},",
        skew_sched.speedup
    );
    let _ = writeln!(body, "  \"uniform_live_delta\": {live_delta:.4},");
    let _ = writeln!(
        body,
        "  \"sim_paper_scale\": {{\"epochs\": 200, \"workers\": 16, \"tail\": \"20 epochs × 8\", \
         \"static_secs\": {:.1}, \"steal_secs\": {:.1}, \"improvement\": {:.2}, \
         \"profile_bound\": {:.2}, \"steals\": {}}}",
        sim.static_secs, sim.steal_secs, sim.improvement, sim.bound, sim.steals
    );
    let _ = writeln!(body, "}}");

    std::fs::write(&out_path, &body).expect("write BENCH_replay_sched.json");
    eprintln!(
        "schedule (profile-priced): static {:.1}ms vs stealing {:.1}ms — {:.2}x (bound {:.2}); \
         uniform schedule delta {:+.2}%",
        skew_sched.static_makespan_ns as f64 / 1e6,
        skew_sched.steal_makespan_ns as f64 / 1e6,
        skew_sched.speedup,
        skew_sched.bound,
        uni_sched_delta * 100.0,
    );
    eprintln!(
        "live ({host_cores} core(s)): skewed static {:.1}ms vs stealing {:.1}ms ({} steal(s)); \
         uniform delta {:+.1}%; first streamed entry after {:.1}ms",
        skew_static.median_wall_ns as f64 / 1e6,
        skew_steal.median_wall_ns as f64 / 1e6,
        skew_steal.steals,
        live_delta * 100.0,
        skew_steal.stream_first_entry_ns as f64 / 1e6,
    );
    eprintln!("wrote {out_path}");
}
