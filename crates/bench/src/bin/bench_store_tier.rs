//! Emits `BENCH_store_tier.json`: the tiered-storage before/after table —
//! mmap segment reads vs the pre-tier whole-file engine, and the
//! registry-wide keyframe dedup's bytes-on-disk win.
//!
//! Two fixtures:
//!
//! - `restore`: a store whose segments each hold several incompressible
//!   checkpoints; a cold restore touches one checkpoint per segment (the
//!   hindsight-query access pattern — sparse versions, never the whole
//!   run). `SegmentRead::WholeFile` pays a full `fs::read` of every
//!   segment it grazes; `SegmentRead::Mmap` faults in only the pages the
//!   slice covers. `mmap_restore_speedup` (held ≥2× by an in-binary
//!   assert and the CI gate) is the best-of-reps wall ratio; both modes
//!   are verified byte-identical against the source payloads first.
//! - `dedup`: the same training run recorded `runs` times — the epochs-of-
//!   identical-hyperparameter sweep the registry dedups across — once into
//!   plain stores and once into stores sharing one content-addressed
//!   arena. `dedup_bytes_ratio` (held ≥3×) compares total bytes on disk;
//!   the arena-backed stores' restores are verified byte-identical too.
//!
//! ```text
//! cargo run --release -p flor-bench --bin bench_store_tier [-- OUT.json]
//! ```
//!
//! Quick mode (`FLOR_BENCH_QUICK=1`, used by `tools/bench.sh` in CI)
//! shrinks both fixtures; the gated metrics are ratios of same-fixture
//! walls and byte totals, so they stay comparable across scales.

use flor_chkpt::{CheckpointStore, SegmentRead, StoreOptions};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Incompressible payload, distinct per seed — compression arbitration
/// stores these raw, so segment bytes ≈ payload bytes and the mmap path
/// serves them zero-copy.
fn payload(bytes: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..bytes)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "flor-bench-store-tier-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Total file bytes under a directory tree (bytes-on-disk as the dedup
/// table reports them; sparse files don't occur in this layout).
fn disk_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let meta = entry.metadata().expect("stat");
        if meta.is_dir() {
            total += disk_bytes(&entry.path());
        } else {
            total += meta.len();
        }
    }
    total
}

/// Best-of-reps: the minimum is the least-interfered run on a shared host.
fn best(xs: &[u64]) -> u64 {
    xs.iter().copied().min().expect("at least one rep")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_store_tier.json".to_string());
    let quick = std::env::var("FLOR_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false);
    // Same per-segment shape in both modes (stride checkpoints per
    // segment) — quick only trims counts, keeping the gated ratios
    // comparable.
    let (ckpt_bytes, versions, stride, reps, runs, dedup_versions) = if quick {
        (64 << 10, 32u64, 8u64, 5usize, 4usize, 8u64)
    } else {
        (256 << 10, 64, 8, 5, 4, 24)
    };

    // ---- restore: sparse cold reads, whole-file vs mmap ----------------
    let restore_dir = tmp_dir("restore");
    let opts = |read: SegmentRead| StoreOptions {
        delta_keyframe_interval: 0,
        segment_target_bytes: stride * ckpt_bytes as u64,
        segment_read: read,
        ..StoreOptions::default()
    };
    eprintln!("recording {versions} x {ckpt_bytes}B checkpoints ({stride}/segment)…");
    let expect: Vec<Vec<u8>> = (0..versions)
        .map(|v| payload(ckpt_bytes, v * 2 + 11))
        .collect();
    {
        let store = CheckpointStore::open_opts(&restore_dir, opts(SegmentRead::WholeFile))
            .expect("open restore fixture");
        for (v, p) in expect.iter().enumerate() {
            store.put("sb_0", v as u64, p).expect("put");
        }
    }
    // One checkpoint per segment, newest-first: every read grazes a
    // different segment, so the whole-file engine re-reads `stride`×
    // the bytes the query needs.
    let sparse: Vec<u64> = (0..versions).rev().step_by(stride as usize).collect();
    let restore_wall = |read: SegmentRead| -> u64 {
        let mut walls = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            let store = CheckpointStore::open_opts(&restore_dir, opts(read)).expect("cold reopen");
            for &v in &sparse {
                let got = store.get("sb_0", v).expect("sparse get");
                assert_eq!(
                    got, expect[v as usize],
                    "version {v} diverged under {read:?}"
                );
            }
            walls.push(t0.elapsed().as_nanos() as u64);
        }
        best(&walls)
    };
    eprintln!(
        "cold-restoring {} sparse versions × {reps} rep(s)…",
        sparse.len()
    );
    let whole_file_wall = restore_wall(SegmentRead::WholeFile);
    let mmap_wall = restore_wall(SegmentRead::Mmap);
    let mmap_faults = {
        let store = CheckpointStore::open_opts(&restore_dir, opts(SegmentRead::Mmap))
            .expect("reopen for counters");
        for &v in &sparse {
            store.get("sb_0", v).expect("counter get");
        }
        store.stats().mmap_faults
    };
    let mmap_restore_speedup = whole_file_wall as f64 / mmap_wall.max(1) as f64;
    eprintln!(
        "restore: whole-file {:.2}ms vs mmap {:.2}ms — {mmap_restore_speedup:.2}x \
         ({mmap_faults} segment map(s))",
        whole_file_wall as f64 / 1e6,
        mmap_wall as f64 / 1e6,
    );
    assert!(
        mmap_faults > 0,
        "the mmap backend must actually map (fallback engaged?)"
    );
    assert!(
        mmap_restore_speedup >= 2.0,
        "mmap cold restore must be ≥2× over whole-file reads: got {mmap_restore_speedup:.2}x"
    );

    // ---- dedup: identical-record sweep, plain vs arena-backed ----------
    eprintln!("recording the same {dedup_versions}-version run {runs}× per engine…");
    let dedup_payloads: Vec<Vec<u8>> = (0..dedup_versions)
        .map(|v| payload(ckpt_bytes, v * 2 + 1001))
        .collect();
    let plain_root = tmp_dir("plain");
    let dedup_root = tmp_dir("dedup");
    let arena = dedup_root.join("arena");
    let sweep_opts = StoreOptions {
        delta_keyframe_interval: 0,
        ..StoreOptions::default()
    };
    let mut dedup_hits = 0u64;
    for run in 0..runs {
        let plain = CheckpointStore::open_opts(plain_root.join(format!("run-{run}")), sweep_opts)
            .expect("open plain run");
        let deduped = CheckpointStore::open_opts(dedup_root.join(format!("run-{run}")), sweep_opts)
            .expect("open deduped run");
        deduped.attach_dedup(&arena).expect("attach arena");
        for (v, p) in dedup_payloads.iter().enumerate() {
            plain.put("sb_0", v as u64, p).expect("plain put");
            deduped.put("sb_0", v as u64, p).expect("deduped put");
        }
        for (v, p) in dedup_payloads.iter().enumerate() {
            assert_eq!(
                &deduped.get("sb_0", v as u64).expect("deduped get"),
                p,
                "run {run}: deduped restore diverged at version {v}"
            );
        }
        dedup_hits = deduped.stats().dedup_hits;
    }
    let plain_bytes = disk_bytes(&plain_root);
    let deduped_bytes = disk_bytes(&dedup_root);
    let dedup_bytes_ratio = plain_bytes as f64 / deduped_bytes.max(1) as f64;
    eprintln!(
        "dedup: plain {:.1}MiB vs arena-backed {:.1}MiB across {runs} runs — \
         {dedup_bytes_ratio:.2}x ({dedup_hits} hits in the last run)",
        plain_bytes as f64 / (1 << 20) as f64,
        deduped_bytes as f64 / (1 << 20) as f64,
    );
    assert_eq!(
        dedup_hits, dedup_versions,
        "every checkpoint of a re-record must hit the arena"
    );
    assert!(
        dedup_bytes_ratio >= 3.0,
        "a {runs}-run identical sweep must dedup ≥3× on disk: got {dedup_bytes_ratio:.2}x"
    );

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"bench\": \"store_tier\",");
    let _ = writeln!(
        body,
        "  \"description\": \"tiered storage engine: cold sparse restore (one checkpoint per \
         segment, newest-first) under mmap segment reads vs the pre-tier whole-file fs::read \
         engine, and bytes-on-disk for an identical-record sweep into plain stores vs stores \
         sharing one content-addressed keyframe arena — both verified byte-identical before \
         timing/measuring\","
    );
    let _ = writeln!(body, "  \"quick\": {quick},");
    let _ = writeln!(
        body,
        "  \"fixture\": {{\"ckpt_bytes\": {ckpt_bytes}, \"versions\": {versions}, \
         \"ckpts_per_segment\": {stride}, \"reps\": {reps}, \"sweep_runs\": {runs}, \
         \"sweep_versions\": {dedup_versions}}},"
    );
    let _ = writeln!(
        body,
        "  \"whole_file\": {{\"best_wall_ns\": {whole_file_wall}}},"
    );
    let _ = writeln!(
        body,
        "  \"mmap\": {{\"best_wall_ns\": {mmap_wall}, \"segment_maps\": {mmap_faults}}},"
    );
    let _ = writeln!(
        body,
        "  \"dedup\": {{\"plain_bytes\": {plain_bytes}, \"deduped_bytes\": {deduped_bytes}, \
         \"arena_hits_per_rerecord\": {dedup_hits}}},"
    );
    let _ = writeln!(
        body,
        "  \"mmap_restore_speedup\": {mmap_restore_speedup:.2},"
    );
    let _ = writeln!(body, "  \"dedup_bytes_ratio\": {dedup_bytes_ratio:.2}");
    let _ = writeln!(body, "}}");

    std::fs::write(&out_path, &body).expect("write BENCH_store_tier.json");
    eprintln!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&restore_dir);
    let _ = std::fs::remove_dir_all(&plain_root);
    let _ = std::fs::remove_dir_all(&dedup_root);
}
