//! Regenerates Figure 7: adaptive checkpointing's impact on record overhead.
fn main() {
    println!("=== Figure 7 — adaptive checkpointing impact ===");
    print!("{}", flor_bench::figures::fig07());
}
