//! Regenerates Figure 5: background materialization strategies.
//!
//! Pass a payload size in MiB as the first argument (default 16).
fn main() {
    let mib: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    println!("=== Figure 5 — background materialization ===");
    print!("{}", flor_bench::figures::fig05(mib << 20));
}
