//! Chrome-trace smoke gate for `tools/ci.sh`: validates that a trace file
//! emitted by `flor query --trace` is well-formed `trace_event` JSON and
//! carries the structure the viewer relies on.
//!
//! ```text
//! trace_check <trace.json> [--min-events N] [--min-lanes N] [--min-categories N]
//! ```
//!
//! Checks, in order: the document parses with the workspace JSON parser,
//! `traceEvents` is an array, every event has `name`/`ph`/`pid`/`tid`/`ts`,
//! every duration event (`ph == "X"`) has a non-negative `dur`, and the
//! lane/category counts (metadata events excluded) meet the requested
//! minimums. Exit code 0 on success, 1 on a structural or threshold
//! failure, 2 on usage/IO errors — same convention as `bench_check`.

use flor_obs::json::{self, Json};
use std::collections::BTreeSet;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!(
            "usage: trace_check <trace.json> [--min-events N] [--min-lanes N] \
             [--min-categories N]"
        );
        return ExitCode::from(2);
    };
    let mut min_events = 1usize;
    let mut min_lanes = 1usize;
    let mut min_categories = 1usize;
    let mut i = 1;
    while i < args.len() {
        let value = |i: usize| -> Option<usize> { args.get(i + 1)?.parse().ok() };
        match args[i].as_str() {
            "--min-events" => min_events = value(i).unwrap_or(min_events),
            "--min-lanes" => min_lanes = value(i).unwrap_or(min_lanes),
            "--min-categories" => min_categories = value(i).unwrap_or(min_categories),
            other => {
                eprintln!("trace_check: unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
        i += 2;
    }

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("trace_check: FAIL {path}: not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(events) = doc.get("traceEvents").and_then(Json::as_arr) else {
        eprintln!("trace_check: FAIL {path}: missing traceEvents array");
        return ExitCode::FAILURE;
    };

    let mut lanes = BTreeSet::new();
    let mut categories = BTreeSet::new();
    let mut named_lanes = 0usize;
    let mut spans = 0usize;
    for (idx, ev) in events.iter().enumerate() {
        let ph = match ev.get("ph").and_then(Json::as_str) {
            Some(p) => p,
            None => {
                eprintln!("trace_check: FAIL event #{idx}: missing ph");
                return ExitCode::FAILURE;
            }
        };
        for key in ["name", "pid", "tid"] {
            if ev.get(key).is_none() {
                eprintln!("trace_check: FAIL event #{idx} (ph {ph:?}): missing {key}");
                return ExitCode::FAILURE;
            }
        }
        // Timestamps are mandatory on span/instant events; metadata
        // (ph "M") carries none in the trace_event format.
        if ph != "M" && ev.get("ts").and_then(Json::as_f64).is_none() {
            eprintln!("trace_check: FAIL event #{idx} (ph {ph:?}): missing ts");
            return ExitCode::FAILURE;
        }
        match ph {
            "M" => {
                // thread_name metadata labels a lane for the viewer.
                if ev.get("name").and_then(Json::as_str) == Some("thread_name") {
                    named_lanes += 1;
                }
            }
            "X" => {
                if ev.get("dur").and_then(Json::as_f64).is_none_or(|d| d < 0.0) {
                    eprintln!("trace_check: FAIL event #{idx}: ph X without valid dur");
                    return ExitCode::FAILURE;
                }
                spans += 1;
                lanes.extend(ev.get("tid").and_then(Json::as_u64));
                categories.extend(ev.get("cat").and_then(Json::as_str).map(String::from));
            }
            "i" => {
                lanes.extend(ev.get("tid").and_then(Json::as_u64));
                categories.extend(ev.get("cat").and_then(Json::as_str).map(String::from));
            }
            other => {
                eprintln!("trace_check: FAIL event #{idx}: unexpected ph {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let cats: Vec<&str> = categories.iter().map(String::as_str).collect();
    eprintln!(
        "trace_check: {path}: {} event(s) ({spans} span(s)), {} lane(s) \
         ({named_lanes} named), categories [{}]",
        events.len(),
        lanes.len(),
        cats.join(", ")
    );
    let mut failures = 0u32;
    if events.len() < min_events {
        eprintln!(
            "trace_check: FAIL: {} event(s) < required {min_events}",
            events.len()
        );
        failures += 1;
    }
    if lanes.len() < min_lanes {
        eprintln!(
            "trace_check: FAIL: {} lane(s) < required {min_lanes}",
            lanes.len()
        );
        failures += 1;
    }
    if categories.len() < min_categories {
        eprintln!(
            "trace_check: FAIL: {} categories < required {min_categories}",
            categories.len()
        );
        failures += 1;
    }
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        eprintln!("trace_check: trace is well-formed");
        ExitCode::SUCCESS
    }
}
