//! Regenerates Figure 14: serial vs parallel replay cost.
fn main() {
    println!("=== Figure 14 — serial vs parallel cost ===");
    print!("{}", flor_bench::figures::fig14());
}
