//! Regenerates Table 3: the evaluation workloads.
fn main() {
    println!("=== Table 3 — evaluation workloads ===");
    print!("{}", flor_bench::tables::tab03());
}
