//! Emits `BENCH_interp.json`: the replay interpreter before/after table —
//! the tree-walking AST interpreter vs the bytecode VM, plus the
//! compiled-module caching columns (cold compile vs cached fetch).
//!
//! The fixture is deliberately interpreter-bound: a training-shaped
//! nested loop of arithmetic, subscripts, branches, and per-epoch `log`
//! statements with **no** `busy()` spin, so per-iteration cost is pure
//! dispatch + name traffic — the overhead hindsight replay pays on every
//! re-executed iteration. Columns:
//!
//! - `tree_walk` / `vm`: best (minimum) wall over `reps` whole-program
//!   runs — the least-interfered run on a shared core — and the
//!   per-iteration cost it implies. `vm_speedup` (held to ≥3× by the
//!   CI gate) is their scale-invariant ratio.
//! - `compile`: best cold `compile_program` wall vs a cached
//!   `ModuleCache::get_or_compile` hit, with the `vm.compile` /
//!   `vm.module_cache_hits` counter deltas asserting which path ran.
//!   `cold_compile_iters` prices one compile in VM iterations — the
//!   break-even replay length for compiling at all.
//!
//! ```text
//! cargo run --release -p flor-bench --bin bench_interp [-- OUT.json]
//! ```
//!
//! Quick mode (`FLOR_BENCH_QUICK=1`, used by `tools/bench.sh` in CI)
//! shrinks the iteration counts so the smoke run finishes in under a
//! second.

use flor_core::interp::{Interp, Mode};
use flor_core::vm::{compile_program, ModuleCache};
use flor_lang::parse;
use std::fmt::Write as _;
use std::time::Instant;

/// Interpreter-bound main loop: a scalar two-weight SGD update — every
/// inner line is dispatch, name traffic, and float arithmetic with no
/// native compute to hide behind. Name-heavy on purpose: per iteration
/// the tree-walker pays a hash lookup per read and a `String` clone +
/// hash insert per assignment, which is exactly the cost slot
/// resolution compiles away.
fn interp_script(epochs: u64, steps: u64) -> String {
    format!(
        "\
import flor
w1 = 0.5
w2 = 0.25
b1 = 0.1
b2 = 0.2
m1 = 0.0
m2 = 0.0
lr = 0.01
beta = 0.9
decay = 0.999
ema = 0.0
hits = 0
for epoch in range({epochs}):
    total = 0.0
    for step in range({steps}):
        x = step % 16 * 0.125
        target = x * 3.0 - 1.0
        h = w1 * x + b1
        pred = w2 * h + b2 + w1 * x * 0.5
        err = pred - target
        loss = err * err
        g2 = err * h + err * x * 0.5
        g1 = err * w2 * x + err * x
        m1 = beta * m1 + g1 - beta * g1
        m2 = beta * m2 + g2 - beta * g2
        w1 = w1 * decay - lr * m1
        w2 = w2 * decay - lr * m2
        b1 = b1 - lr * err
        b2 = b2 - lr * err * 0.5
        total = total + loss
        ema = ema * 0.99 + loss * 0.01
        if loss < ema:
            hits = hits + 1
    log(\"loss\", total)
log(\"w1\", w1)
log(\"hits\", hits)
log(\"ema\", ema)
"
    )
}

/// Best-of-reps: on a shared single-core host the minimum is the
/// least-interfered run, and is far stabler than the median.
fn best(xs: &[u64]) -> u64 {
    xs.iter().copied().min().expect("at least one rep")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_interp.json".to_string());
    let quick = std::env::var("FLOR_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false);
    // Quick mode still needs enough reps and iterations for the
    // best-of-reps minimum to converge — min-of-2 over 600 iterations
    // swings ±40% on a shared core, tripping the CI band on noise.
    let (epochs, steps, reps, compile_reps) = if quick {
        (12u64, 200u64, 6usize, 3usize)
    } else {
        (50, 1000, 5, 20)
    };
    let iterations = epochs * steps;
    let src = interp_script(epochs, steps);
    let prog = parse(&src).expect("parse fixture");

    eprintln!("tree-walking {iterations} iterations × {reps} rep(s)…");
    let mut tree_walls = Vec::with_capacity(reps);
    let mut tree_log = Vec::new();
    Interp::new(Mode::Vanilla).run(&prog).expect("warmup");
    for _ in 0..reps {
        let mut interp = Interp::new(Mode::Vanilla);
        let t0 = Instant::now();
        interp.run(&prog).expect("tree-walk run");
        tree_walls.push(t0.elapsed().as_nanos() as u64);
        tree_log = interp.log.entries().to_vec();
    }

    eprintln!("vm: same fixture on the bytecode VM…");
    let module = compile_program(&prog).expect("compile fixture");
    Interp::new(Mode::Vanilla).run_vm(&module).expect("warmup");
    let d0 = flor_obs::metrics::counter("vm.dispatch").get();
    let mut vm_walls = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut interp = Interp::new(Mode::Vanilla);
        let t0 = Instant::now();
        interp.run_vm(&module).expect("vm run");
        vm_walls.push(t0.elapsed().as_nanos() as u64);
        assert_eq!(
            interp.log.entries(),
            &tree_log[..],
            "executors diverged on the bench fixture"
        );
    }
    let dispatched = (flor_obs::metrics::counter("vm.dispatch").get() - d0) / reps as u64;

    eprintln!("compile: cold lowering × {compile_reps}, then cached-module fetches…");
    let c0 = flor_obs::metrics::counter("vm.compile").get();
    let mut compile_walls = Vec::with_capacity(compile_reps);
    for _ in 0..compile_reps {
        let t0 = Instant::now();
        std::hint::black_box(compile_program(&prog).expect("cold compile"));
        compile_walls.push(t0.elapsed().as_nanos() as u64);
    }
    let cold_compiles = flor_obs::metrics::counter("vm.compile").get() - c0;
    assert_eq!(cold_compiles, compile_reps as u64);

    let cache = ModuleCache::new();
    let key = "bench-interp-fixture";
    cache.get_or_compile(key, &prog).expect("warm the cache");
    let fetches = 10_000u64;
    let h0 = flor_obs::metrics::counter("vm.module_cache_hits").get();
    let t0 = Instant::now();
    for _ in 0..fetches {
        std::hint::black_box(cache.get_or_compile(key, &prog).expect("cached fetch"));
    }
    let fetch_ns = t0.elapsed().as_nanos() as u64 / fetches;
    let cache_hits = flor_obs::metrics::counter("vm.module_cache_hits").get() - h0;
    assert_eq!(cache_hits, fetches, "every warm fetch must be a cache hit");

    let tree_wall = best(&tree_walls);
    let vm_wall = best(&vm_walls);
    let compile_ns = best(&compile_walls);
    let tree_iter_ns = tree_wall as f64 / iterations as f64;
    let vm_iter_ns = vm_wall as f64 / iterations as f64;
    let vm_speedup = tree_wall as f64 / vm_wall.max(1) as f64;
    let cold_compile_iters = compile_ns as f64 / vm_iter_ns.max(1e-9);

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"bench\": \"interp\",");
    let _ = writeln!(
        body,
        "  \"description\": \"replay interpreter, tree-walking AST interpreter (pre-VM executor) \
         vs the bytecode VM on an interpreter-bound training-shaped loop (arithmetic + log, no \
         native spin); 'compile' prices cold lowering vs a cached-module fetch keyed by \
         source_version, with metric-counter deltas asserting which path ran\","
    );
    let _ = writeln!(body, "  \"quick\": {quick},");
    let _ = writeln!(
        body,
        "  \"fixture\": {{\"epochs\": {epochs}, \"steps\": {steps}, \
         \"iterations\": {iterations}, \"reps\": {reps}}},"
    );
    let _ = writeln!(
        body,
        "  \"tree_walk\": {{\"best_wall_ns\": {tree_wall}, \"iter_ns\": {tree_iter_ns:.1}}},"
    );
    let _ = writeln!(
        body,
        "  \"vm\": {{\"best_wall_ns\": {vm_wall}, \"iter_ns\": {vm_iter_ns:.1}, \
         \"dispatched_ops\": {dispatched}, \"ns_per_op\": {:.2}}},",
        vm_wall as f64 / dispatched.max(1) as f64
    );
    let _ = writeln!(
        body,
        "  \"compile\": {{\"cold_best_ns\": {compile_ns}, \"cached_fetch_ns\": {fetch_ns}, \
         \"cold_compiles_counted\": {cold_compiles}, \"cache_hits_counted\": {cache_hits}, \
         \"cold_compile_iters\": {cold_compile_iters:.1}}},"
    );
    let _ = writeln!(body, "  \"vm_speedup\": {vm_speedup:.2}");
    let _ = writeln!(body, "}}");

    std::fs::write(&out_path, &body).expect("write BENCH_interp.json");
    eprintln!(
        "interp: tree-walk {:.0}ns/iter vs vm {:.0}ns/iter — {vm_speedup:.2}x; \
         compile {:.1}µs cold vs {fetch_ns}ns cached (≈{cold_compile_iters:.0} iterations to amortize)",
        tree_iter_ns,
        vm_iter_ns,
        compile_ns as f64 / 1e3,
    );
    eprintln!("wrote {out_path}");
}
