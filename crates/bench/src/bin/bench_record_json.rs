//! Emits `BENCH_record.json`: caller-thread submit latency and blocked
//! time per materialization strategy, for the zero-copy pipeline and the
//! pre-refactor eager-copy baseline. This is the committed benchmark
//! trajectory for the record hot path — future PRs are held to it.
//!
//! ```text
//! cargo run --release -p flor-bench --bin bench_record_json [-- OUT.json]
//! ```
//!
//! Quick mode (`FLOR_BENCH_QUICK=1`, used by `tools/bench.sh` in CI)
//! shrinks the workload so the smoke run finishes in seconds.

use flor_bench::record_submit::{
    measure_submit, StateFixture, SubmitMeasurement, SubmitMode, ALL_STRATEGIES,
};
use std::fmt::Write as _;

fn json_measurement(out: &mut String, m: &SubmitMeasurement) {
    let _ = write!(
        out,
        "{{\"jobs\": {}, \"mean_submit_ns\": {}, \"median_submit_ns\": {}, \
         \"blocked_ns_total\": {}, \"group_commits\": {}}}",
        m.jobs, m.mean_submit_ns, m.median_submit_ns, m.blocked_ns_total, m.group_commits
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_record.json".to_string());
    let quick = std::env::var("FLOR_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false);
    let (tensors, floats, jobs) = if quick {
        (8, 16 * 1024, 24)
    } else {
        (8, 64 * 1024, 64)
    };
    let fixture = StateFixture::new(tensors, floats);

    // Steady-state warmup: the process's first sustained measurement runs
    // up to ~1.5× slow (CPU frequency/quota ramp on shared hosts), which
    // used to land entirely on whichever configuration was measured first
    // — the committed `Baseline zero_copy 0.68×` "regression" was exactly
    // this artifact, not a pipeline cost. One discarded full-length
    // measurement absorbs it for every configuration equally (regression-
    // tested in `record_submit::tests`).
    eprintln!("steady-state warmup…");
    let _ = measure_submit(
        &fixture,
        flor_chkpt::Strategy::Baseline,
        SubmitMode::EagerCopy,
        jobs,
        "steady-state-warmup",
    );

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"bench\": \"record_submit\",");
    let _ = writeln!(
        body,
        "  \"description\": \"caller-thread cost per checkpoint (snapshot build + submit); \
         zero_copy = lazy slab handles, eager_copy_prepr = pre-refactor to_bytes copies\","
    );
    let _ = writeln!(body, "  \"quick\": {quick},");
    let _ = writeln!(
        body,
        "  \"payload\": {{\"tensors\": {}, \"floats_per_tensor\": {}, \"raw_bytes\": {}}},",
        tensors,
        floats,
        fixture.raw_bytes()
    );
    let _ = writeln!(body, "  \"strategies\": {{");
    // Alternate zero/eager reps and keep each mode's best: transient CPU
    // steal on shared hosts then cannot land on one mode only.
    let reps = if quick { 1 } else { 3 };
    for (si, strategy) in ALL_STRATEGIES.iter().enumerate() {
        let mut zero: Option<SubmitMeasurement> = None;
        let mut eager: Option<SubmitMeasurement> = None;
        for rep in 0..reps {
            let z = measure_submit(&fixture, *strategy, SubmitMode::ZeroCopy, jobs, "json");
            let e = measure_submit(&fixture, *strategy, SubmitMode::EagerCopy, jobs, "json");
            let _ = rep;
            if zero
                .as_ref()
                .is_none_or(|b| z.mean_submit_ns < b.mean_submit_ns)
            {
                zero = Some(z);
            }
            if eager
                .as_ref()
                .is_none_or(|b| e.mean_submit_ns < b.mean_submit_ns)
            {
                eager = Some(e);
            }
        }
        let (zero, eager) = (zero.expect("reps >= 1"), eager.expect("reps >= 1"));
        let speedup = eager.mean_submit_ns as f64 / zero.mean_submit_ns.max(1) as f64;
        let _ = write!(body, "    \"{strategy:?}\": {{\"zero_copy\": ");
        json_measurement(&mut body, &zero);
        let _ = write!(body, ", \"eager_copy_prepr\": ");
        json_measurement(&mut body, &eager);
        let _ = write!(body, ", \"mean_submit_speedup\": {speedup:.2}}}");
        let _ = writeln!(
            body,
            "{}",
            if si + 1 < ALL_STRATEGIES.len() {
                ","
            } else {
                ""
            }
        );
        eprintln!(
            "{strategy:?}: zero-copy mean {} ns/ckpt, eager (pre-PR) mean {} ns/ckpt — {:.2}x",
            zero.mean_submit_ns, eager.mean_submit_ns, speedup
        );
    }
    let _ = writeln!(body, "  }}");
    let _ = writeln!(body, "}}");

    std::fs::write(&out_path, &body).expect("write BENCH_record.json");
    eprintln!("wrote {out_path}");
}
