//! Regenerates Table 2: adaptive-checkpointing symbols, live.
fn main() {
    println!("=== Table 2 — adaptive checkpointing symbols ===");
    print!("{}", flor_bench::tables::tab02());
}
