//! Runs the design-choice ablations (lean checkpointing, adaptive
//! checkpointing) on the live miniature workloads.
fn main() {
    println!("=== Ablation — lean checkpointing (changeset vs full environment) ===");
    print!("{}", flor_bench::ablations::lean());
    println!("\n=== Ablation — adaptive checkpointing (live) ===");
    print!("{}", flor_bench::ablations::adaptive_live());
}
