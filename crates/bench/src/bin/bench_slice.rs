//! Emits `BENCH_slice.json`: dependency-aware incremental replay — the
//! backward-slicing before/after table plus the cross-query slice memo.
//!
//! The fixture is sparse-dependency by construction: a cheap live
//! accumulator chain feeds the log statements while three `busy()`
//! strands per inner iteration feed names nothing reads. A hindsight
//! probe on the inner skipblock forces every iteration to re-execute,
//! so the dead strands dominate unsliced replay cost and the slicer
//! can provably drop them. Columns:
//!
//! - `full` / `sliced`: best (minimum) replay wall over `reps` runs of
//!   the same probed query on the bytecode VM with slicing off vs on,
//!   and the per-iteration cost each implies. `slice_speedup` (held to
//!   ≥3× by the CI gate and an in-binary assert) is their ratio; the
//!   two logs are asserted byte-identical first.
//! - `memo`: a cold registry query (full replay + cache fill) vs a
//!   *textually different* probe that slices to the same live cone —
//!   served from the slice cache for the price of a parse+slice. The
//!   `cache.slice_hits` counter delta asserts the memo path ran;
//!   `memo_speedup` is asserted ≥10× in-binary (it is fixture-scale
//!   dependent, so the CI tolerance band gates `slice_speedup` only).
//!
//! ```text
//! cargo run --release -p flor-bench --bin bench_slice [-- OUT.json]
//! ```
//!
//! Quick mode (`FLOR_BENCH_QUICK=1`, used by `tools/bench.sh` in CI)
//! shrinks the fixture so the smoke run finishes in well under a second.

use flor_core::record::{record, RecordOptions};
use flor_core::replay::{replay, ReplayOptions};
use flor_core::InitMode;
use flor_registry::Registry;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Sparse-dependency training-shaped loop. The probe keeps `acc` and the
/// one-unit `w` strand live; the three `units`-unit `dead_*` strands are
/// provably unread. Sliced replay cost is then dominated by `busy(1)` per
/// inner iteration, so `slice_speedup` ≈ the dead/live busy ratio
/// (1 + 3·units) — invariant across the quick and full fixture scales,
/// which is what lets the CI tolerance band gate it.
fn slice_script(epochs: u64, batches: u64, units: u64) -> String {
    format!(
        "\
import flor
base = 2
acc = 0
for epoch in flor.partition(range({epochs})):
    acc = acc + base
    for i in range({batches}):
        w = busy(1)
        acc = acc + i
        dead_a = busy({units})
        dead_b = busy({units})
        dead_c = busy({units})
        dead_d = epoch * 7 + i
    log(\"loss\", acc)
"
    )
}

/// Best-of-reps: on a shared single-core host the minimum is the
/// least-interfered run, and is far stabler than the median.
fn best(xs: &[u64]) -> u64 {
    xs.iter().copied().min().expect("at least one rep")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flor-bench-slice-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_slice.json".to_string());
    let quick = std::env::var("FLOR_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false);
    // Same per-iteration shape (batches, units) in both modes — quick only
    // trims epochs and reps, so the ratio metrics stay comparable.
    let (epochs, batches, units, reps) = if quick {
        (4u64, 12u64, 4u64, 2usize)
    } else {
        (8, 24, 4, 4)
    };
    let src = slice_script(epochs, batches, units);
    let probed = src.replace(
        "        acc = acc + i\n",
        "        acc = acc + i\n        log(\"probe_acc\", acc)\n        log(\"probe_w\", w)\n",
    );
    assert_ne!(probed, src, "probe must land");

    eprintln!("recording {epochs}x{batches} sparse-dependency fixture…");
    let store = tmp_dir("store");
    let mut ropts = RecordOptions::new(&store);
    ropts.adaptive = false;
    record(&src, &ropts).expect("record fixture");

    let replay_opts = |slice: bool| ReplayOptions {
        workers: 1,
        init_mode: InitMode::Strong,
        steal: false,
        vm: true,
        slice,
        module_cache: None,
        cancel: None,
    };

    eprintln!("replaying probed query unsliced × {reps} rep(s)…");
    let full_log = replay(&probed, &store, &replay_opts(false))
        .expect("warmup full replay")
        .log;
    let mut full_walls = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = replay(&probed, &store, &replay_opts(false)).expect("full replay");
        full_walls.push(t0.elapsed().as_nanos() as u64);
        assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
        assert_eq!(report.stats.statements_elided, 0);
    }

    eprintln!("replaying the same query sliced × {reps} rep(s)…");
    let mut sliced_walls = Vec::with_capacity(reps);
    let mut elided = 0u64;
    let mut live_permille = 0u32;
    replay(&probed, &store, &replay_opts(true)).expect("warmup sliced replay");
    for _ in 0..reps {
        let t0 = Instant::now();
        let report = replay(&probed, &store, &replay_opts(true)).expect("sliced replay");
        sliced_walls.push(t0.elapsed().as_nanos() as u64);
        assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
        assert_eq!(
            report.log, full_log,
            "sliced replay diverged from the full replay"
        );
        elided = report.stats.statements_elided;
        live_permille = report.stats.slice_permille;
    }
    assert!(elided > 0, "the dead strands must be elided");

    eprintln!("cross-query memo: cold registry query, then a textual variant…");
    // The memo query's probe additionally reads `dead_a`, pulling one of
    // the heavy strands into the live cone: the cold query pays real
    // (sliced) replay work, the memoized one pays only a parse+slice.
    let memo_probed = probed.replace(
        "        dead_d = epoch * 7 + i\n",
        "        dead_d = epoch * 7 + i\n        log(\"probe_busy\", dead_a)\n",
    );
    assert_ne!(memo_probed, probed);
    let registry = Registry::open(tmp_dir("registry")).expect("open registry");
    registry
        .record_run("bench-slice", &src, |o| o.adaptive = false)
        .expect("record into registry");
    let t0 = Instant::now();
    let cold = registry
        .query("bench-slice", &memo_probed, 1)
        .expect("cold query");
    let cold_ns = t0.elapsed().as_nanos() as u64;
    assert!(!cold.cached);
    // A blank line: new raw query text, same parse → same slice class.
    let variant = memo_probed.replace("import flor\n", "import flor\n\n");
    assert_ne!(variant, memo_probed);
    let h0 = flor_obs::metrics::counter("cache.slice_hits").get();
    let t0 = Instant::now();
    let warm = registry
        .query("bench-slice", &variant, 1)
        .expect("warm query");
    let warm_ns = t0.elapsed().as_nanos() as u64;
    let slice_hits = flor_obs::metrics::counter("cache.slice_hits").get() - h0;
    assert!(warm.cached, "variant must be served from the slice cache");
    assert_eq!(warm.slice_cache_hits, 1);
    assert_eq!(slice_hits, 1, "exactly one slice-cache hit counted");
    assert_eq!(warm.log, cold.log, "memoized answer diverged");

    let full_wall = best(&full_walls);
    let sliced_wall = best(&sliced_walls);
    let full_iter_ns = full_wall as f64 / epochs as f64;
    let sliced_iter_ns = sliced_wall as f64 / epochs as f64;
    let slice_speedup = full_wall as f64 / sliced_wall.max(1) as f64;
    let memo_speedup = cold_ns as f64 / warm_ns.max(1) as f64;
    eprintln!(
        "slice: full {:.2}ms/iter vs sliced {:.2}ms/iter — {slice_speedup:.2}x \
         ({elided} stmts elided, {live_permille}‰ live); memo {:.2}ms cold vs {:.3}ms warm — \
         {memo_speedup:.1}x",
        full_iter_ns / 1e6,
        sliced_iter_ns / 1e6,
        cold_ns as f64 / 1e6,
        warm_ns as f64 / 1e6,
    );
    assert!(
        slice_speedup >= 3.0,
        "sliced replay must be ≥3× over unsliced: got {slice_speedup:.2}x"
    );
    assert!(
        memo_speedup >= 10.0,
        "memoized second query must be ≥10× over cold: got {memo_speedup:.2}x"
    );

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"bench\": \"slice\",");
    let _ = writeln!(
        body,
        "  \"description\": \"dependency-aware incremental replay on a sparse-dependency \
         fixture (live accumulator + three unread busy strands per inner iteration, inner \
         skipblock probed): bytecode-VM replay with backward slicing off vs on, plus the \
         cross-query slice memo — a textually different probe with the same live cone served \
         from the slice cache, with the cache.slice_hits counter delta asserting the path\","
    );
    let _ = writeln!(body, "  \"quick\": {quick},");
    let _ = writeln!(
        body,
        "  \"fixture\": {{\"epochs\": {epochs}, \"batches\": {batches}, \
         \"busy_units\": {units}, \"reps\": {reps}}},"
    );
    let _ = writeln!(
        body,
        "  \"full\": {{\"best_wall_ns\": {full_wall}, \"iter_ns\": {full_iter_ns:.0}}},"
    );
    let _ = writeln!(
        body,
        "  \"sliced\": {{\"best_wall_ns\": {sliced_wall}, \"iter_ns\": {sliced_iter_ns:.0}, \
         \"statements_elided\": {elided}, \"live_permille\": {live_permille}}},"
    );
    let _ = writeln!(
        body,
        "  \"memo\": {{\"cold_ns\": {cold_ns}, \"warm_ns\": {warm_ns}, \
         \"slice_cache_hits_counted\": {slice_hits}}},"
    );
    let _ = writeln!(body, "  \"slice_speedup\": {slice_speedup:.2},");
    let _ = writeln!(body, "  \"memo_speedup\": {memo_speedup:.2}");
    let _ = writeln!(body, "}}");

    std::fs::write(&out_path, &body).expect("write BENCH_slice.json");
    eprintln!("wrote {out_path}");
}
