//! Regenerates Table 4: checkpoint sizes and S3 storage costs.
fn main() {
    println!("=== Table 4 — checkpoint sizes and S3 cost ===");
    print!("{}", flor_bench::tables::tab04());
}
