//! Regenerates Figure 11: record overhead per workload (simulated paper
//! scale plus a live miniature measurement).
fn main() {
    println!("=== Figure 11 — record overhead ===");
    print!("{}", flor_bench::figures::fig11());
}
