//! Bench-regression gate for `tools/ci.sh`: compares freshly generated
//! `BENCH_*.json` metrics against the committed baselines with a tolerance
//! band, failing on regressions past it.
//!
//! ```text
//! bench_check <committed.json> <fresh.json> <metric>=<direction> ...
//! ```
//!
//! A metric is a dotted path (`segmented.median_ns` finds the number for
//! key `median_ns` inside the object introduced by key `segmented`);
//! `direction` is `lower` (latency-style: fail when fresh exceeds the
//! baseline by more than the band) or `higher` (ratio-style: fail when
//! fresh falls more than the band below it). The band defaults to 20%
//! and can be widened with `FLOR_BENCH_TOLERANCE` (e.g. `0.35`).
//!
//! Only *scale-invariant* metrics belong here (per-unit medians, speedup
//! ratios): CI runs the quick fixtures, so absolute totals would not be
//! comparable against the committed full-scale baselines.

use std::process::ExitCode;

/// Finds the number attached to a dotted key path in a JSON text, by
/// nesting-free scanning: each path segment narrows the search window to
/// the text after its first occurrence. Good enough for the flat,
/// generated `BENCH_*.json` shape — not a general JSON parser.
fn lookup(text: &str, path: &str) -> Option<f64> {
    let mut window = text;
    for seg in path.split('.') {
        let needle = format!("\"{seg}\"");
        let at = window.find(&needle)?;
        window = &window[at + needle.len()..];
    }
    let colon = window.find(':')?;
    let rest = window[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("usage: bench_check <committed.json> <fresh.json> <metric>=<lower|higher> ...");
        return ExitCode::from(2);
    }
    let tolerance: f64 = std::env::var("FLOR_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);
    let committed_path = &args[0];
    let fresh_path = &args[1];
    let committed = match std::fs::read_to_string(committed_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_check: cannot read {committed_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let fresh = match std::fs::read_to_string(fresh_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_check: cannot read {fresh_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0u32;
    for spec in &args[2..] {
        let Some((path, direction)) = spec.split_once('=') else {
            eprintln!("bench_check: bad spec {spec:?} (want metric=lower|higher)");
            return ExitCode::from(2);
        };
        let (Some(base), Some(new)) = (lookup(&committed, path), lookup(&fresh, path)) else {
            eprintln!("bench_check: FAIL {path}: metric missing from one side");
            failures += 1;
            continue;
        };
        let (ok, verdict) = match direction {
            "lower" => (new <= base * (1.0 + tolerance), "≤"),
            "higher" => (new >= base / (1.0 + tolerance), "≥"),
            other => {
                eprintln!("bench_check: bad direction {other:?} in {spec:?}");
                return ExitCode::from(2);
            }
        };
        let band_pct = tolerance * 100.0;
        if ok {
            eprintln!(
                "bench_check: ok   {path}: {new} vs committed {base} \
                 ({direction}, band {band_pct:.0}%)"
            );
        } else {
            eprintln!(
                "bench_check: FAIL {path}: fresh {new} regressed past committed {base} \
                 (must stay {verdict} within {band_pct:.0}%)"
            );
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("bench_check: {failures} regression(s) vs committed baselines");
        ExitCode::FAILURE
    } else {
        eprintln!("bench_check: all metrics within the band");
        ExitCode::SUCCESS
    }
}
