//! Runs every table and figure regenerator and prints the combined report.
fn main() {
    print!("{}", flor_bench::all_experiments());
}
