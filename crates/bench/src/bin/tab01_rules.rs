//! Regenerates Table 1: the static side-effect analysis rules.
fn main() {
    println!("=== Table 1 — side-effect analysis rules ===");
    print!("{}", flor_bench::tables::tab01());
}
