//! Emits `BENCH_replay.json`: the replay read-path before/after table for
//! the segmented storage engine — median restore-read latency (`get_bytes`
//! on a segmented store vs the v1 per-file `get`) and cold store-open time
//! at scale (100k checkpoints; the v1 open stats every data file, the
//! segmented open stats only segments). This is the committed benchmark
//! trajectory for the replay hot path — future PRs are held to it, and
//! `flor-sim`'s `cost::read_cost` constants are taken from it.
//!
//! ```text
//! cargo run --release -p flor-bench --bin bench_replay_json [-- OUT.json]
//! ```
//!
//! Quick mode (`FLOR_BENCH_QUICK=1`, used by `tools/bench.sh` in CI)
//! shrinks the store so the smoke run finishes in seconds.

use flor_bench::replay_read::{
    measure_reads, ReadFixture, ReadMeasurement, ReadMode, BLOCKS, PAYLOAD_BYTES,
};
use flor_chkpt::StoreFormat;
use std::fmt::Write as _;

fn json_measurement(out: &mut String, m: &ReadMeasurement, cold_open_ns: u64) {
    let _ = write!(
        out,
        "{{\"reads\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"p99_ns\": {}, \
         \"cold_open_ns\": {}}}",
        m.reads, m.median_ns, m.mean_ns, m.p99_ns, cold_open_ns
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_replay.json".to_string());
    let quick = std::env::var("FLOR_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false);
    let (checkpoints, sample) = if quick {
        (5_000u64, 2_000u64)
    } else {
        (100_000, 20_000)
    };

    eprintln!("building {checkpoints}-checkpoint fixtures (segmented + file-per-checkpoint)…");
    let seg = ReadFixture::build("json-seg", StoreFormat::Segmented, checkpoints);
    let v1 = ReadFixture::build("json-v1", StoreFormat::FilePerCheckpoint, checkpoints);

    // Cold opens first (no read caches primed by the latency pass).
    let seg_open_ns = seg.cold_open_ns();
    let v1_open_ns = v1.cold_open_ns();

    let seg_store = seg.open();
    let v1_store = v1.open();
    // Warm-up pass over a small slice so first-touch costs (segment buffer
    // loads, allocator) don't skew the median of either side.
    measure_reads(&seg_store, &seg, ReadMode::GetBytes, 256);
    measure_reads(&v1_store, &v1, ReadMode::Get, 256);

    let after = measure_reads(&seg_store, &seg, ReadMode::GetBytes, sample);
    let before = measure_reads(&v1_store, &v1, ReadMode::Get, sample);
    let seg_stats = seg_store.stats();

    let median_speedup = before.median_ns as f64 / after.median_ns.max(1) as f64;
    let open_speedup = v1_open_ns as f64 / seg_open_ns.max(1) as f64;

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"bench\": \"replay_read\",");
    let _ = writeln!(
        body,
        "  \"description\": \"per-restore checkpoint read latency and cold store-open time; \
         segmented = zero-copy get_bytes over packed segments (this PR), \
         file_per_checkpoint_prepr = pre-refactor v1 layout via get (one file + stat per checkpoint)\","
    );
    let _ = writeln!(body, "  \"quick\": {quick},");
    let _ = writeln!(
        body,
        "  \"fixture\": {{\"checkpoints\": {checkpoints}, \"payload_bytes\": {PAYLOAD_BYTES}, \
         \"blocks\": {BLOCKS}, \"sampled_reads\": {sample}}},"
    );
    let _ = write!(body, "  \"segmented\": ");
    json_measurement(&mut body, &after, seg_open_ns);
    let _ = writeln!(body, ",");
    let _ = write!(body, "  \"file_per_checkpoint_prepr\": ");
    json_measurement(&mut body, &before, v1_open_ns);
    let _ = writeln!(body, ",");
    let _ = writeln!(
        body,
        "  \"zero_copy_reads\": {}, \"segment_cache_hits\": {}, \"segments\": {},",
        seg_stats.zero_copy_reads, seg_stats.segment_cache_hits, seg_stats.segments
    );
    let _ = writeln!(body, "  \"median_get_speedup\": {median_speedup:.2},");
    let _ = writeln!(body, "  \"cold_open_speedup\": {open_speedup:.2}");
    let _ = writeln!(body, "}}");

    // The fixtures are large (the v1 layout is 100k files at full scale);
    // don't leave them on the temp filesystem.
    drop(seg_store);
    drop(v1_store);
    let _ = std::fs::remove_dir_all(seg.root());
    let _ = std::fs::remove_dir_all(v1.root());

    std::fs::write(&out_path, &body).expect("write BENCH_replay.json");
    eprintln!(
        "get_bytes median {} ns vs v1 get {} ns — {:.2}x; cold open {:.1} ms vs {:.1} ms — {:.2}x",
        after.median_ns,
        before.median_ns,
        median_speedup,
        seg_open_ns as f64 / 1e6,
        v1_open_ns as f64 / 1e6,
        open_speedup
    );
    eprintln!("wrote {out_path}");
}
