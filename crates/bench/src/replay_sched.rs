//! Replay-scheduler benchmark: static contiguous partitioning vs the
//! cost-aware work-stealing executor, measured through the live engine.
//!
//! The fixture is a training script whose per-epoch compute is skewed by a
//! data-dependent `busy(units)` spin (cheap warmup epochs, a heavy tail —
//! the shape of eval epochs and LR-phase changes). Replaying it with an
//! inner probe forces re-execution, so replay cost mirrors the recorded
//! skew; the static plan hands one worker the whole heavy tail while the
//! work-stealing runtime splits it into profile-sized micro-ranges.
//!
//! Two kinds of numbers come out:
//!
//! - **live** wall-clock and streaming metrics from real threaded replays
//!   (wall-clock only separates the schedulers when the host has ≥
//!   `workers` cores — CPU-bound workers serialize on smaller hosts, so
//!   the JSON records `host_cores` next to them);
//! - **schedule makespans**: the worker-completion times implied by each
//!   scheduler's assignment, priced with the fixture's *live-recorded*
//!   per-epoch cost profile and computed by the same
//!   splitter/seeding/queue code the executor runs. This is the
//!   host-independent before/after number `BENCH_replay_sched.json` is
//!   held to (≥1.5× on the skewed fixture, parity on uniform).

use flor_chkpt::CheckpointStore;
use flor_core::profile::{CostProfile, COST_PROFILE_ARTIFACT};
use flor_core::record::{record, RecordOptions};
use flor_core::replay::{replay_with_store, ReplayOptions};
use flor_sim::sched_sim;
use std::path::PathBuf;
use std::sync::Arc;

/// Builds the fixture training script: `epochs` main-loop epochs over 3
/// batches each; epochs `>= epochs - heavy_tail` spin `heavy_units` per
/// batch instead of `light_units`.
pub fn skewed_script(epochs: u64, light_units: u64, heavy_units: u64, heavy_tail: u64) -> String {
    format!(
        "\
import flor
data = synth_data(n=30, dim=6, classes=2, seed=5)
loader = dataloader(data, batch_size=10, seed=5)
net = mlp(input=6, hidden=8, classes=2, depth=1, seed=5)
optimizer = sgd(net, lr=0.1)
criterion = cross_entropy()
avg = meter()
for epoch in flor.partition(range({epochs})):
    units = {light_units}
    if epoch > {cutoff}:
        units = {heavy_units}
    avg.reset()
    for batch in loader.epoch():
        w = busy(units)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
acc = evaluate(net, data)
log(\"accuracy\", acc)
",
        cutoff = epochs - heavy_tail.min(epochs) - 1,
    )
}

/// A recorded fixture ready to replay.
pub struct SchedFixture {
    root: PathBuf,
    probed: String,
    store: Arc<CheckpointStore>,
}

/// One measured replay configuration (median over the reps).
#[derive(Debug, Clone, Copy)]
pub struct SchedMeasurement {
    /// Median wall-clock of the replay, ns.
    pub median_wall_ns: u64,
    /// Micro-ranges stolen (from the median rep).
    pub steals: u64,
    /// Micro-ranges executed (from the median rep).
    pub ranges_executed: u64,
    /// Time-to-first streamed record-order entry, ns (median rep).
    pub stream_first_entry_ns: u64,
}

impl SchedFixture {
    /// Records the script (adaptivity off — deterministic checkpoint
    /// placement) into a throwaway store.
    pub fn build(tag: &str, src: &str) -> SchedFixture {
        let root =
            std::env::temp_dir().join(format!("flor-bench-sched-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut opts = RecordOptions::new(&root);
        opts.adaptive = false;
        record(src, &opts).expect("record fixture");
        let probed = src.replace(
            "        optimizer.step()\n",
            "        optimizer.step()\n        log(\"probe_gnorm\", net.grad_norm())\n",
        );
        assert_ne!(probed, src, "probe splice must match");
        let store = Arc::new(CheckpointStore::open(&root).expect("open fixture store"));
        SchedFixture {
            root,
            probed,
            store,
        }
    }

    /// Store root (for cleanup).
    pub fn root(&self) -> &PathBuf {
        &self.root
    }

    /// Replays the inner-probed fixture `reps` times with `workers`
    /// workers, stealing on or off, and reports the median-wall rep.
    pub fn measure(&self, workers: usize, steal: bool, reps: usize) -> SchedMeasurement {
        let opts = ReplayOptions {
            workers,
            init_mode: flor_core::InitMode::Strong,
            steal,
            ..Default::default()
        };
        let mut runs: Vec<SchedMeasurement> = (0..reps.max(1))
            .map(|_| {
                let report =
                    replay_with_store(&self.probed, self.store.clone(), &opts).expect("replay");
                assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
                SchedMeasurement {
                    median_wall_ns: report.wall_ns,
                    steals: report.stats.steals,
                    ranges_executed: report.stats.ranges_executed,
                    stream_first_entry_ns: report.stats.stream_first_entry_ns,
                }
            })
            .collect();
        runs.sort_by_key(|m| m.median_wall_ns);
        runs[runs.len() / 2]
    }
}

/// Schedule-makespan comparison priced with a live-recorded profile.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleComparison {
    /// Static contiguous partitioning makespan (slowest worker), ns.
    pub static_makespan_ns: u64,
    /// Work-stealing executor makespan, ns.
    pub steal_makespan_ns: u64,
    /// static / steal.
    pub speedup: f64,
    /// Profile-aware upper bound on any schedule's speedup over one
    /// worker.
    pub bound: f64,
}

impl SchedFixture {
    /// Prices both schedulers' assignments with the fixture's recorded
    /// per-epoch costs (re-execution column — the inner probe forces
    /// execution), using the same planner/splitter/queue the live executor
    /// runs. Host-independent: this is what the live wall-clock converges
    /// to on a host with ≥ `workers` cores.
    pub fn schedule_compare(&self, workers: usize) -> ScheduleComparison {
        let text = String::from_utf8(
            self.store
                .get_artifact(COST_PROFILE_ARTIFACT)
                .expect("fixture profile"),
        )
        .expect("profile utf-8");
        let profile = CostProfile::parse_text(&text).expect("parse profile");
        let n = profile.len() as u64;
        let costs_secs: Vec<f64> = profile
            .replay_costs(n, true)
            .iter()
            .map(|&ns| ns as f64 / 1e9)
            .collect();
        let static_secs = sched_sim::static_makespan(&costs_secs, workers);
        let (steal_secs, _) = sched_sim::stealing_makespan(&costs_secs, workers, true);
        ScheduleComparison {
            static_makespan_ns: (static_secs * 1e9) as u64,
            steal_makespan_ns: (steal_secs * 1e9) as u64,
            speedup: static_secs / steal_secs.max(1e-12),
            bound: flor_core::parallel::max_speedup_profiled(
                &profile.replay_costs(n, true),
                workers,
            ),
        }
    }
}

impl Drop for SchedFixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_and_measures() {
        let fixture = SchedFixture::build("test", &skewed_script(6, 1, 4, 2));
        let m = fixture.measure(2, true, 1);
        assert!(m.median_wall_ns > 0);
        assert!(m.ranges_executed >= 2);
    }

    #[test]
    fn skewed_script_marks_the_tail() {
        let src = skewed_script(12, 1, 30, 2);
        assert!(src.contains("if epoch > 9:"));
        assert!(src.contains("units = 30"));
    }
}
