//! Table rendering and temp-dir helpers shared by the harness binaries.

use std::path::PathBuf;

/// Renders rows as a fixed-width text table with a header rule.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A fresh temp directory for a harness run.
pub fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "flor-bench-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Formats seconds as `1.23 s` / `45.6 ms` / `789 µs`.
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.1} ms", secs * 1e3)
    } else {
        format!("{:.0} µs", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0456), "45.6 ms");
        assert_eq!(fmt_secs(0.000789), "789 µs");
    }
}
