//! # flor-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§6). One binary per artifact
//! (`cargo run -p flor-bench --release --bin fig11_record_overhead`, …),
//! plus `all_experiments`, which runs the lot and prints a combined report
//! (this is what EXPERIMENTS.md records).
//!
//! Two kinds of numbers appear side by side:
//!
//! - **live** measurements from the miniature workloads (seconds-scale
//!   training through the real record/replay engine), and
//! - **paper-scale** simulations from `flor-sim`, which drive the same
//!   controller/planner code with Table 3/4 magnitudes.

#![warn(missing_docs)]

pub mod ablations;
pub mod compress_delta;
pub mod figures;
pub mod record_submit;
pub mod replay_read;
pub mod replay_sched;
pub mod scripts;
pub mod tables;
pub mod util;

/// Runs every experiment and returns the combined report text.
pub fn all_experiments() -> String {
    let mut out = String::new();
    for (title, body) in [
        ("Table 1 — side-effect analysis rules", tables::tab01()),
        (
            "Table 2 — adaptive checkpointing symbols (live)",
            tables::tab02(),
        ),
        ("Table 3 — evaluation workloads", tables::tab03()),
        ("Table 4 — checkpoint sizes and S3 cost", tables::tab04()),
        (
            "Figure 5 — background materialization",
            figures::fig05(16 << 20),
        ),
        ("Figure 7 — adaptive checkpointing impact", figures::fig07()),
        (
            "Figure 10 — parallel replay fraction (4 GPUs)",
            figures::fig10(),
        ),
        ("Figure 11 — record overhead", figures::fig11()),
        (
            "Figure 12 — replay latency by probe position",
            figures::fig12(),
        ),
        ("Figure 13 — RsNt scale-out", figures::fig13()),
        ("Figure 14 — serial vs parallel cost", figures::fig14()),
        ("Ablation — lean checkpointing", ablations::lean()),
        (
            "Ablation — adaptive checkpointing (live)",
            ablations::adaptive_live(),
        ),
    ] {
        out.push_str(&format!("\n=== {title} ===\n"));
        out.push_str(&body);
    }
    out
}
