//! Integration tests for the registry-facing CLI surface: `record
//! --registry`, `runs list`, `runs show`, `query`, and `serve` — both
//! through the library entry point (`run_cli` / `serve_io`) and through
//! the real `flor` binary with piped stdin.

use flor_cli::{run_cli, serve_io, CliError};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const SCRIPT: &str = "\
import flor
data = synth_data(n=40, dim=8, classes=2, seed=5)
loader = dataloader(data, batch_size=20, seed=5)
net = mlp(input=8, hidden=8, classes=2, depth=1, seed=5)
optimizer = sgd(net, lr=0.1)
criterion = cross_entropy()
avg = meter()
for epoch in range(4):
    avg.reset()
    for batch in loader.epoch():
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
";

fn setup(tag: &str) -> (PathBuf, PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "flor-regcli-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let script = dir.join("train.flr");
    std::fs::write(&script, SCRIPT).unwrap();
    let probed = SCRIPT.replace(
        "    log(\"loss\", avg.mean())\n",
        "    log(\"loss\", avg.mean())\n    log(\"hindsight_wnorm\", net.weight_norm())\n",
    );
    assert_ne!(probed, SCRIPT);
    let probed_path = dir.join("probed.flr");
    std::fs::write(&probed_path, probed).unwrap();
    (dir.join("registry"), script, probed_path)
}

fn cli(parts: &[&str]) -> Result<String, CliError> {
    let raw: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    run_cli(&raw)
}

fn record_into(registry: &Path, script: &Path, run_id: &str) {
    let out = cli(&[
        "record",
        script.to_str().unwrap(),
        "--registry",
        registry.to_str().unwrap(),
        "--run-id",
        run_id,
        "--no-adaptive",
    ])
    .unwrap();
    assert!(out.contains("# recorded"), "{out}");
    assert!(
        out.contains(&format!("# registered run {run_id:?}")),
        "{out}"
    );
}

#[test]
fn record_registers_and_runs_list_shows_it() {
    let (registry, script, _) = setup("list");
    record_into(&registry, &script, "alice-cv");
    record_into(&registry, &script, "bob-nlp");

    let out = cli(&["runs", "list", "--registry", registry.to_str().unwrap()]).unwrap();
    assert!(out.contains("alice-cv"), "{out}");
    assert!(out.contains("bob-nlp"), "{out}");
    assert!(out.contains("# 2 run(s) cataloged"), "{out}");
}

#[test]
fn runs_show_prints_catalog_detail_and_source() {
    let (registry, script, _) = setup("show");
    record_into(&registry, &script, "alice-cv");
    let out = cli(&[
        "runs",
        "show",
        "alice-cv",
        "--registry",
        registry.to_str().unwrap(),
    ])
    .unwrap();
    assert!(out.contains("run:             alice-cv"), "{out}");
    assert!(out.contains("iterations:      4"), "{out}");
    // The de-instrumented source comes back verbatim.
    assert!(out.contains("optimizer.step()"), "{out}");
    assert!(!out.contains("skipblock"), "{out}");

    let err = cli(&[
        "runs",
        "show",
        "nope",
        "--registry",
        registry.to_str().unwrap(),
    ])
    .unwrap_err();
    assert!(matches!(err, CliError::Failed(m) if m.contains("unknown run")));
}

#[test]
fn query_materializes_and_second_hit_is_cached() {
    let (registry, script, probed) = setup("query");
    record_into(&registry, &script, "alice-cv");
    let reg = registry.to_str().unwrap();
    let out = cli(&[
        "query",
        "alice-cv",
        probed.to_str().unwrap(),
        "--registry",
        reg,
        "--workers",
        "2",
    ])
    .unwrap();
    assert_eq!(out.matches("hindsight_wnorm\t").count(), 4, "{out}");
    assert!(out.contains("(fresh)"), "{out}");
    assert!(!out.contains("ANOMALY"), "{out}");

    let again = cli(&[
        "query",
        "alice-cv",
        probed.to_str().unwrap(),
        "--registry",
        reg,
    ])
    .unwrap();
    assert!(again.contains("(cached)"), "{again}");
    assert_eq!(again.matches("hindsight_wnorm\t").count(), 4, "{again}");
}

#[test]
fn serve_processes_queued_queries_from_input() {
    let (registry, script, probed) = setup("serve");
    record_into(&registry, &script, "run-a");
    record_into(&registry, &script, "run-b");

    let commands = format!(
        "runs\nquery run-a {p} 1\nquery run-b {p} 0\nquery bogus {p}\nquit\n",
        p = probed.display()
    );
    let mut out = Vec::new();
    serve_io(&registry, 2, commands.as_bytes(), &mut out).unwrap();
    let out = String::from_utf8(out).unwrap();
    assert!(out.contains("# serving"), "{out}");
    assert!(out.contains("run \"run-a\" gen 0"), "{out}");
    assert!(out.contains("queued job 1"), "{out}");
    assert!(out.contains("job 1 done: run \"run-a\""), "{out}");
    assert!(out.contains("job 2 done: run \"run-b\""), "{out}");
    assert!(
        out.contains("job 3 FAILED") && out.contains("unknown run"),
        "{out}"
    );
    assert!(out.contains("# served 3 job(s)"), "{out}");
}

#[test]
fn serve_status_and_cancel_commands() {
    let (registry, script, probed) = setup("serve-ctl");
    record_into(&registry, &script, "run-a");
    let commands = format!(
        "query run-a {p}\ndrain\nstatus 1\ncancel 1\nstatus 99\n\
         cancel notanumber\nquery run-a missing.flr\nquery run-a {p} loud\nquit\n",
        p = probed.display()
    );
    let mut out = Vec::new();
    serve_io(&registry, 1, commands.as_bytes(), &mut out).unwrap();
    let out = String::from_utf8(out).unwrap();
    assert!(out.contains("job 1 done"), "{out}");
    assert!(out.contains("job 1: completed"), "{out}");
    assert!(out.contains("job 1: not cancellable"), "{out}");
    assert!(out.contains("job 99: unknown"), "{out}");
    // Malformed commands report inline and do not kill the server.
    assert!(out.contains("bad job id \"notanumber\""), "{out}");
    assert!(out.contains("cannot read missing.flr"), "{out}");
    assert!(out.contains("bad priority \"loud\""), "{out}");
    assert!(out.contains("# served 1 job(s)"), "{out}");
}

#[test]
fn runs_show_json_parses_and_matches_pretty() {
    let (registry, script, _) = setup("show-json");
    record_into(&registry, &script, "alice-cv");
    let reg = registry.to_str().unwrap();
    let pretty = cli(&["runs", "show", "alice-cv", "--registry", reg]).unwrap();
    let out = cli(&["runs", "show", "alice-cv", "--registry", reg, "--json"]).unwrap();
    let doc = flor_obs::json::parse(out.trim()).expect("--json output parses");
    assert_eq!(
        doc.get("run_id").and_then(|v| v.as_str()),
        Some("alice-cv"),
        "{out}"
    );
    let iters = doc.get("iterations").and_then(|v| v.as_u64()).unwrap();
    assert_eq!(iters, 4);
    // Both surfaces iterate RunRecord::fields(), so the numbers agree.
    assert!(
        pretty.contains(&format!("iterations:      {iters}")),
        "{pretty}"
    );
    for key in ["generation", "source_version", "store_root", "stored_bytes"] {
        assert!(doc.get(key).is_some(), "missing {key}: {out}");
    }
    // The JSON form is machine-facing: one line, no recorded source dump.
    assert_eq!(out.trim().lines().count(), 1, "{out}");
    assert!(!out.contains("optimizer.step()"), "{out}");
}

#[test]
fn serve_metrics_verb_emits_one_parseable_json_line() {
    let (registry, script, probed) = setup("serve-metrics");
    record_into(&registry, &script, "run-a");
    let commands = format!("query run-a {}\ndrain\nmetrics\nquit\n", probed.display());
    let mut out = Vec::new();
    serve_io(&registry, 1, commands.as_bytes(), &mut out).unwrap();
    let out = String::from_utf8(out).unwrap();
    let json_line = out
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("metrics line");
    let doc = flor_obs::json::parse(json_line).expect("metrics JSON parses");
    let counters = doc.get("counters").expect("counters object");
    // The job just drained, so the instrumented subsystems have counted.
    assert!(
        counters.get("registry.queries").and_then(|v| v.as_u64()) >= Some(1),
        "{json_line}"
    );
    assert!(doc.get("histograms").is_some(), "{json_line}");
}

#[test]
fn usage_errors_for_registry_commands() {
    assert!(matches!(
        cli(&["runs", "list"]),
        Err(CliError::Usage(m)) if m.contains("--registry")
    ));
    assert!(matches!(
        cli(&["runs", "bogus", "--registry", "/tmp/x"]),
        Err(CliError::Usage(_))
    ));
    assert!(matches!(
        cli(&["query", "only-run-id", "--registry", "/tmp/x"]),
        Err(CliError::Usage(_) | CliError::Failed(_))
    ));
}

/// True end-to-end: spawn the compiled `flor` binary, pipe `serve` its
/// commands over stdin, and check the streamed output.
#[test]
fn serve_end_to_end_through_the_binary() {
    let (registry, script, probed) = setup("binary");
    let flor = env!("CARGO_BIN_EXE_flor");

    let record = Command::new(flor)
        .args([
            "record",
            script.to_str().unwrap(),
            "--registry",
            registry.to_str().unwrap(),
            "--run-id",
            "e2e-run",
            "--no-adaptive",
        ])
        .output()
        .unwrap();
    assert!(record.status.success(), "{:?}", record);

    let list = Command::new(flor)
        .args(["runs", "list", "--registry", registry.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(list.status.success());
    assert!(String::from_utf8_lossy(&list.stdout).contains("e2e-run"));

    let mut serve = Command::new(flor)
        .args([
            "serve",
            "--registry",
            registry.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    serve
        .stdin
        .take()
        .unwrap()
        .write_all(format!("query e2e-run {}\nquit\n", probed.display()).as_bytes())
        .unwrap();
    let out = serve.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("queued job 1"), "{text}");
    assert!(text.contains("job 1 done: run \"e2e-run\""), "{text}");
}
