//! Implementation of the `flor` command-line tool (library form, so the
//! command surface is unit-testable without spawning processes).

#![warn(missing_docs)]

use flor_analysis::instrument::instrument;
use flor_core::record::{record, run_vanilla, RecordOptions};
use flor_core::replay::{replay, ReplayOptions};
use flor_core::sample::replay_sample;
use flor_core::InitMode;
use flor_lang::{parse, print_program};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Usage text.
pub const USAGE: &str = "\
usage:
  flor run      <script.flr>
  flor record   <script.flr> --store <dir> [--epsilon F] [--no-adaptive]
  flor replay   <script.flr> --store <dir> [--workers N] [--weak]
  flor sample   <script.flr> --store <dir> --iters 3,7,12
  flor inspect  <script.flr>
  flor log      --store <dir>";

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; print usage.
    Usage(String),
    /// The operation itself failed.
    Failed(String),
}

impl From<flor_core::FlorError> for CliError {
    fn from(e: flor_core::FlorError) -> Self {
        CliError::Failed(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Failed(e.to_string())
    }
}

struct Args<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Args<'a> {
    fn parse(raw: &'a [String]) -> Result<Self, CliError> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = raw[i].as_str();
            if let Some(name) = a.strip_prefix("--") {
                let takes_value = ["store", "workers", "iters", "epsilon"].contains(&name);
                if takes_value {
                    let v = raw
                        .get(i + 1)
                        .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
                    flags.push((name, Some(v.as_str())));
                    i += 2;
                } else {
                    flags.push((name, None));
                    i += 1;
                }
            } else {
                positional.push(a);
                i += 1;
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| *n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| *v)
    }

    fn store(&self) -> Result<PathBuf, CliError> {
        self.value("store")
            .map(PathBuf::from)
            .ok_or_else(|| CliError::Usage("missing --store <dir>".into()))
    }

    fn script(&self, idx: usize) -> Result<String, CliError> {
        let path = self
            .positional
            .get(idx)
            .ok_or_else(|| CliError::Usage("missing script path".into()))?;
        std::fs::read_to_string(path)
            .map_err(|e| CliError::Failed(format!("cannot read {path}: {e}")))
    }
}

/// Runs one CLI invocation and returns its stdout text.
pub fn run_cli(raw: &[String]) -> Result<String, CliError> {
    let args = Args::parse(raw)?;
    let cmd = *args
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    match cmd {
        "run" => cmd_run(&args),
        "record" => cmd_record(&args),
        "replay" => cmd_replay(&args),
        "sample" => cmd_sample(&args),
        "inspect" => cmd_inspect(&args),
        "log" => cmd_log(&args),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

fn cmd_run(args: &Args) -> Result<String, CliError> {
    let src = args.script(1)?;
    let (wall_ns, log) = run_vanilla(&src)?;
    let mut out = String::new();
    for e in &log {
        let _ = writeln!(out, "{e}");
    }
    let _ = writeln!(out, "# vanilla run finished in {:.3}s", wall_ns as f64 / 1e9);
    Ok(out)
}

fn cmd_record(args: &Args) -> Result<String, CliError> {
    let store = args.store()?; // flag errors before touching the filesystem
    let src = args.script(1)?;
    let mut opts = RecordOptions::new(store);
    if args.flag("no-adaptive") {
        opts.adaptive = false;
    }
    if let Some(eps) = args.value("epsilon") {
        opts.epsilon = eps
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --epsilon {eps:?}")))?;
    }
    let report = record(&src, &opts)?;
    let mut out = String::new();
    for e in &report.log {
        let _ = writeln!(out, "{e}");
    }
    let _ = writeln!(
        out,
        "# recorded in {:.3}s: {} checkpoints, {} raw bytes ({} on disk)",
        report.wall_ns as f64 / 1e9,
        report.checkpoints,
        report.raw_bytes,
        report.stored_bytes
    );
    for b in &report.blocks {
        let _ = writeln!(out, "# block {}: changeset {{{}}}", b.id, b.static_changeset.join(", "));
    }
    for r in &report.refused {
        let _ = writeln!(out, "# refused {} ({})", r.header, r.reason.reason);
    }
    Ok(out)
}

fn cmd_replay(args: &Args) -> Result<String, CliError> {
    let store = args.store()?;
    let src = args.script(1)?;
    let opts = ReplayOptions {
        workers: args
            .value("workers")
            .map(|w| w.parse().map_err(|_| CliError::Usage(format!("bad --workers {w:?}"))))
            .transpose()?
            .unwrap_or(1),
        init_mode: if args.flag("weak") {
            InitMode::Weak
        } else {
            InitMode::Strong
        },
    };
    let report = replay(&src, store, &opts)?;
    let mut out = String::new();
    for e in &report.log {
        let _ = writeln!(out, "{e}");
    }
    let _ = writeln!(
        out,
        "# replayed in {:.3}s: {} restored, {} re-executed, {} probes",
        report.wall_ns as f64 / 1e9,
        report.stats.restored,
        report.stats.executed,
        report.probes.len()
    );
    for a in &report.anomalies {
        let _ = writeln!(out, "# ANOMALY: {a}");
    }
    Ok(out)
}

fn cmd_sample(args: &Args) -> Result<String, CliError> {
    let store = args.store()?;
    let src = args.script(1)?;
    let iters: Vec<u64> = args
        .value("iters")
        .ok_or_else(|| CliError::Usage("missing --iters".into()))?
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| CliError::Usage(format!("bad iteration {s:?}")))
        })
        .collect::<Result<_, _>>()?;
    let report = replay_sample(&src, store, &iters)?;
    let mut out = String::new();
    for e in &report.log {
        let _ = writeln!(out, "{e}");
    }
    let _ = writeln!(
        out,
        "# sampled {} iteration(s) in {:.3}s: {} restored, {} re-executed",
        iters.len(),
        report.wall_ns as f64 / 1e9,
        report.stats.restored,
        report.stats.executed
    );
    Ok(out)
}

fn cmd_inspect(args: &Args) -> Result<String, CliError> {
    let src = args.script(1)?;
    let prog = parse(&src).map_err(|e| CliError::Failed(e.to_string()))?;
    let report = instrument(&prog);
    let mut out = String::new();
    let _ = writeln!(out, "# instrumented program:");
    out.push_str(&print_program(&report.program));
    for b in &report.blocks {
        let _ = writeln!(out, "# block {}: changeset {{{}}}", b.id, b.static_changeset.join(", "));
        for (stmt, rule) in &b.rule_trace {
            let _ = writeln!(out, "#   rule {rule}: {stmt}");
        }
    }
    for r in &report.refused {
        let _ = writeln!(out, "# refused {} — {}", r.header, r.reason.reason);
    }
    if let Some(m) = &report.main_loop {
        let _ = writeln!(out, "# main loop: for {} in {}", m.var, m.iter);
    }
    Ok(out)
}

fn cmd_log(args: &Args) -> Result<String, CliError> {
    let store = flor_chkpt::CheckpointStore::open(args.store()?)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let bytes = store
        .get_artifact("record_log.txt")
        .map_err(|e| CliError::Failed(e.to_string()))?;
    String::from_utf8(bytes).map_err(|_| CliError::Failed("record log is not UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "\
import flor
data = synth_data(n=40, dim=8, classes=2, seed=5)
loader = dataloader(data, batch_size=20, seed=5)
net = mlp(input=8, hidden=8, classes=2, depth=1, seed=5)
optimizer = sgd(net, lr=0.1)
criterion = cross_entropy()
avg = meter()
for epoch in range(4):
    avg.reset()
    for batch in loader.epoch():
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
";

    fn setup(tag: &str) -> (PathBuf, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "flor-cli-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("train.flr");
        std::fs::write(&script, SCRIPT).unwrap();
        (dir.join("store"), script)
    }

    fn cli(parts: &[&str]) -> Result<String, CliError> {
        let raw: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        run_cli(&raw)
    }

    #[test]
    fn run_executes_script() {
        let (_, script) = setup("run");
        let out = cli(&["run", script.to_str().unwrap()]).unwrap();
        assert_eq!(out.matches("loss\t").count(), 4, "{out}");
    }

    #[test]
    fn record_then_log_then_replay() {
        let (store, script) = setup("pipeline");
        let out = cli(&[
            "record",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--no-adaptive",
        ])
        .unwrap();
        assert!(out.contains("# recorded"), "{out}");
        assert!(out.contains("checkpoints"), "{out}");

        let log_out = cli(&["log", "--store", store.to_str().unwrap()]).unwrap();
        assert_eq!(log_out.matches("loss\t").count(), 4);

        // Probe the script and replay with workers.
        let probed = SCRIPT.replace(
            "    log(\"loss\", avg.mean())\n",
            "    log(\"loss\", avg.mean())\n    log(\"wnorm\", net.weight_norm())\n",
        );
        let probed_path = script.with_file_name("probed.flr");
        std::fs::write(&probed_path, probed).unwrap();
        let out = cli(&[
            "replay",
            probed_path.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .unwrap();
        assert!(out.contains("1 probes"), "{out}");
        assert_eq!(out.matches("wnorm\t").count(), 4, "{out}");
        assert!(!out.contains("ANOMALY"), "{out}");
    }

    #[test]
    fn sample_replays_selected_iterations() {
        let (store, script) = setup("sample");
        cli(&[
            "record",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--no-adaptive",
        ])
        .unwrap();
        let out = cli(&[
            "sample",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--iters",
            "1,3",
        ])
        .unwrap();
        assert!(out.contains("[it000001]"), "{out}");
        assert!(out.contains("[it000003]"), "{out}");
        assert!(!out.contains("[it000002]"), "{out}");
    }

    #[test]
    fn inspect_shows_instrumentation() {
        let (_, script) = setup("inspect");
        let out = cli(&["inspect", script.to_str().unwrap()]).unwrap();
        assert!(out.contains("skipblock \"sb_0\":"), "{out}");
        assert!(out.contains("flor.partition"), "{out}");
        assert!(out.contains("changeset"), "{out}");
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(cli(&[]), Err(CliError::Usage(_))));
        assert!(matches!(cli(&["bogus"]), Err(CliError::Usage(_))));
        assert!(matches!(cli(&["replay", "x.flr"]), Err(CliError::Usage(_))));
        assert!(matches!(
            cli(&["record", "x.flr", "--store"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn missing_script_fails_cleanly() {
        let err = cli(&["run", "/nonexistent/path.flr"]).unwrap_err();
        assert!(matches!(err, CliError::Failed(_)));
    }

    #[test]
    fn replay_weak_init_flag() {
        let (store, script) = setup("weak");
        cli(&[
            "record",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--no-adaptive",
        ])
        .unwrap();
        let out = cli(&[
            "replay",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--workers",
            "2",
            "--weak",
        ])
        .unwrap();
        assert!(out.contains("# replayed"), "{out}");
        assert!(!out.contains("ANOMALY"), "{out}");
    }

    #[test]
    fn record_with_custom_epsilon() {
        let (store, script) = setup("eps");
        let out = cli(&[
            "record",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--epsilon",
            "0.5",
        ])
        .unwrap();
        assert!(out.contains("# recorded"), "{out}");
        let err = cli(&[
            "record",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--epsilon",
            "bogus",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }
}
