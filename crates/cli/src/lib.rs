//! Implementation of the `flor` command-line tool (library form, so the
//! command surface is unit-testable without spawning processes).

#![warn(missing_docs)]

use flor_analysis::instrument::instrument;
use flor_core::record::{record, run_vanilla, RecordOptions};
use flor_core::replay::{replay, ReplayOptions};
use flor_core::sample::replay_sample;
use flor_core::InitMode;
use flor_lang::{parse, print_program};
use flor_net::{ClientConn, Endpoint};
use flor_registry::{
    Registry, ReplayScheduler, ServeSession, Server, ServerConfig, SessionControl,
};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Usage text.
pub const USAGE: &str = "\
usage:
  flor run      <script.flr>
  flor record   <script.flr> --store <dir> [--epsilon F] [--no-adaptive]
                [--registry <dir>] [--run-id <id>] [--delta-keyframe K]
  flor replay   <script.flr> --store <dir> [--workers N] [--weak] [--steal]
                [--no-vm] [--no-slice]
  flor sample   <script.flr> --store <dir> --iters 3,7,12
  flor inspect  <script.flr>
  flor log      --store <dir>
  flor store    stats --store <dir> [--json]
  flor store    compact --store <dir>
  flor runs     list --registry <dir>
  flor runs     show <run-id> --registry <dir> [--json]
  flor runs     prune <run-id> --registry <dir> [--keep N]
  flor query    <run-id> <probed.flr> --registry <dir> [--workers N] [--stream]
                [--no-vm] [--no-slice] [--trace <out.json>]
  flor serve    --registry <dir> [--workers N] [--listen <endpoint>]...
                [--queue-limit N] [--tenant-jobs N] [--tenant-burst N]
                [--tenant-refill PER-SEC] [--max-backlog-ms MS]
  flor connect  <endpoint>

endpoints are tcp:<ip>:<port>, <ip>:<port>, or unix:<path>";

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments; print usage.
    Usage(String),
    /// The operation itself failed.
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<flor_core::FlorError> for CliError {
    fn from(e: flor_core::FlorError) -> Self {
        CliError::Failed(e.to_string())
    }
}

impl From<flor_registry::RegistryError> for CliError {
    fn from(e: flor_registry::RegistryError) -> Self {
        CliError::Failed(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Failed(e.to_string())
    }
}

struct Args<'a> {
    positional: Vec<&'a str>,
    flags: Vec<(&'a str, Option<&'a str>)>,
}

impl<'a> Args<'a> {
    fn parse(raw: &'a [String]) -> Result<Self, CliError> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = raw[i].as_str();
            if let Some(name) = a.strip_prefix("--") {
                let takes_value = [
                    "store",
                    "workers",
                    "iters",
                    "epsilon",
                    "registry",
                    "run-id",
                    "keep",
                    "delta-keyframe",
                    "trace",
                    "listen",
                    "queue-limit",
                    "tenant-jobs",
                    "tenant-burst",
                    "tenant-refill",
                    "max-backlog-ms",
                ]
                .contains(&name);
                if takes_value {
                    let v = raw
                        .get(i + 1)
                        .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
                    flags.push((name, Some(v.as_str())));
                    i += 2;
                } else {
                    flags.push((name, None));
                    i += 1;
                }
            } else {
                positional.push(a);
                i += 1;
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| *n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| *v)
    }

    /// Every occurrence of a repeatable value flag (`--listen` …).
    fn values(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| *n == name)
            .filter_map(|(_, v)| *v)
            .collect()
    }

    /// A numeric flag with a default when absent.
    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        self.value(name)
            .map(|v| {
                v.parse()
                    .map_err(|_| CliError::Usage(format!("bad --{name} {v:?}")))
            })
            .transpose()
            .map(|v| v.unwrap_or(default))
    }

    fn store(&self) -> Result<PathBuf, CliError> {
        self.value("store")
            .map(PathBuf::from)
            .ok_or_else(|| CliError::Usage("missing --store <dir>".into()))
    }

    fn registry(&self) -> Result<Registry, CliError> {
        let root = self
            .value("registry")
            .map(PathBuf::from)
            .ok_or_else(|| CliError::Usage("missing --registry <dir>".into()))?;
        Ok(Registry::open(root)?)
    }

    fn workers(&self, default: usize) -> Result<usize, CliError> {
        self.value("workers")
            .map(|w| {
                w.parse()
                    .map_err(|_| CliError::Usage(format!("bad --workers {w:?}")))
            })
            .transpose()
            .map(|w| w.unwrap_or(default))
    }

    fn script(&self, idx: usize) -> Result<String, CliError> {
        let path = self
            .positional
            .get(idx)
            .ok_or_else(|| CliError::Usage("missing script path".into()))?;
        std::fs::read_to_string(path)
            .map_err(|e| CliError::Failed(format!("cannot read {path}: {e}")))
    }
}

/// Runs one CLI invocation and returns its stdout text.
pub fn run_cli(raw: &[String]) -> Result<String, CliError> {
    let mut buf: Vec<u8> = Vec::new();
    run_cli_to(raw, &mut buf)?;
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// [`run_cli`] writing to `out` as output becomes available — the binary's
/// entry point. Most commands produce their whole output at the end, but a
/// streaming query (`flor query … --stream`) writes record-order entries
/// and progress lines *while the replay runs*, flushed per event.
pub fn run_cli_to(raw: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let args = Args::parse(raw)?;
    let cmd = *args
        .positional
        .first()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    let text = match cmd {
        "run" => cmd_run(&args),
        "record" => cmd_record(&args),
        "replay" => cmd_replay(&args),
        "sample" => cmd_sample(&args),
        "inspect" => cmd_inspect(&args),
        "log" => cmd_log(&args),
        "store" => cmd_store(&args),
        "runs" => cmd_runs(&args),
        "query" => return cmd_query(&args, out),
        "serve" => return cmd_serve(&args, out),
        "connect" => return cmd_connect(&args, out),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }?;
    out.write_all(text.as_bytes())?;
    Ok(())
}

fn cmd_run(args: &Args) -> Result<String, CliError> {
    let src = args.script(1)?;
    let (wall_ns, log) = run_vanilla(&src)?;
    let mut out = String::new();
    for e in &log {
        let _ = writeln!(out, "{e}");
    }
    let _ = writeln!(
        out,
        "# vanilla run finished in {:.3}s",
        wall_ns as f64 / 1e9
    );
    Ok(out)
}

fn cmd_record(args: &Args) -> Result<String, CliError> {
    // Flag errors before touching the filesystem: a store is required
    // unless the run is recorded into a registry-managed store.
    let registry_root = args.value("registry").map(PathBuf::from);
    let store = match &registry_root {
        None => Some(args.store()?),
        Some(_) => args.value("store").map(PathBuf::from),
    };
    let src = args.script(1)?;
    let mut opts = RecordOptions::new(store.clone().unwrap_or_default());
    if args.flag("no-adaptive") {
        opts.adaptive = false;
    }
    if let Some(eps) = args.value("epsilon") {
        opts.epsilon = eps
            .parse()
            .map_err(|_| CliError::Usage(format!("bad --epsilon {eps:?}")))?;
    }
    if let Some(k) = args.value("delta-keyframe") {
        opts.delta_keyframe_interval = Some(
            k.parse()
                .map_err(|_| CliError::Usage(format!("bad --delta-keyframe {k:?}")))?,
        );
    }

    let mut registered = None;
    let report = match registry_root {
        None => record(&src, &opts)?,
        Some(root) => {
            let registry = Registry::open(root)?;
            let run_id = match args.value("run-id") {
                Some(id) => id.to_string(),
                None => default_run_id(args.positional.get(1).copied().unwrap_or("run")),
            };
            match store {
                // Explicit store + registry: record there, then catalog it.
                Some(store_root) => {
                    opts.store_root = store_root.clone();
                    let report = record(&src, &opts)?;
                    let rec = registry.register_report(&run_id, &src, &store_root, &report)?;
                    registered = Some(rec);
                    report
                }
                // Registry-managed store.
                None => {
                    let (report, rec) = registry.record_run(&run_id, &src, |o| {
                        o.adaptive = opts.adaptive;
                        o.epsilon = opts.epsilon;
                        o.delta_keyframe_interval = opts.delta_keyframe_interval;
                    })?;
                    registered = Some(rec);
                    report
                }
            }
        }
    };
    let mut out = String::new();
    for e in &report.log {
        let _ = writeln!(out, "{e}");
    }
    let _ = writeln!(
        out,
        "# recorded in {:.3}s: {} checkpoints, {} raw bytes ({} on disk)",
        report.wall_ns as f64 / 1e9,
        report.checkpoints,
        report.raw_bytes,
        report.stored_bytes
    );
    let _ = writeln!(
        out,
        "# materializer: {:.3}ms caller-blocked over {} submits, {} group commits ({} checkpoints batched)",
        report.materializer.main_thread_ns as f64 / 1e6,
        report.materializer.jobs,
        report.materializer.group_commits,
        report.materializer.group_commit_jobs
    );
    let _ = writeln!(
        out,
        "# delta chains: {} delta checkpoint(s), {} keyframe(s)",
        report.materializer.delta_checkpoints, report.materializer.keyframe_checkpoints
    );
    for b in &report.blocks {
        let _ = writeln!(
            out,
            "# block {}: changeset {{{}}}",
            b.id,
            b.static_changeset.join(", ")
        );
    }
    for r in &report.refused {
        let _ = writeln!(out, "# refused {} ({})", r.header, r.reason.reason);
    }
    if let Some(rec) = registered {
        let _ = writeln!(
            out,
            "# registered run {:?} generation {} (source {})",
            rec.run_id, rec.generation, rec.source_version
        );
    }
    Ok(out)
}

/// Default run id for `record --registry`: the script's file stem.
fn default_run_id(script_path: &str) -> String {
    Path::new(script_path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "run".to_string())
}

fn cmd_replay(args: &Args) -> Result<String, CliError> {
    let store = args.store()?;
    let src = args.script(1)?;
    let opts = ReplayOptions {
        workers: args.workers(1)?,
        init_mode: if args.flag("weak") {
            InitMode::Weak
        } else {
            InitMode::Strong
        },
        steal: args.flag("steal"),
        vm: !args.flag("no-vm"),
        slice: !args.flag("no-slice"),
        module_cache: None,
        cancel: None,
    };
    let report = replay(&src, store, &opts)?;
    let mut out = String::new();
    for e in &report.log {
        let _ = writeln!(out, "{e}");
    }
    let _ = writeln!(
        out,
        "# replayed in {:.3}s: {} restored, {} re-executed, {} probes",
        report.wall_ns as f64 / 1e9,
        report.stats.restored,
        report.stats.executed,
        report.probes.len()
    );
    let _ = writeln!(
        out,
        "# interpreter: {}",
        if opts.vm { "vm" } else { "tree-walk" }
    );
    let _ = writeln!(
        out,
        "# slice: {} statement(s) elided, {:.1}% of program live",
        report.stats.statements_elided,
        report.stats.slice_fraction() * 100.0
    );
    let _ = writeln!(
        out,
        "# scheduler: {} range(s) executed, {} steal(s), first entry streamed after {:.3}ms",
        report.stats.ranges_executed,
        report.stats.steals,
        report.stats.stream_first_entry_ns as f64 / 1e6
    );
    for a in &report.anomalies {
        let _ = writeln!(out, "# ANOMALY: {a}");
    }
    Ok(out)
}

fn cmd_sample(args: &Args) -> Result<String, CliError> {
    let store = args.store()?;
    let src = args.script(1)?;
    let iters: Vec<u64> = args
        .value("iters")
        .ok_or_else(|| CliError::Usage("missing --iters".into()))?
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| CliError::Usage(format!("bad iteration {s:?}")))
        })
        .collect::<Result<_, _>>()?;
    let report = replay_sample(&src, store, &iters)?;
    let mut out = String::new();
    for e in &report.log {
        let _ = writeln!(out, "{e}");
    }
    let _ = writeln!(
        out,
        "# sampled {} iteration(s) in {:.3}s: {} restored, {} re-executed",
        iters.len(),
        report.wall_ns as f64 / 1e9,
        report.stats.restored,
        report.stats.executed
    );
    Ok(out)
}

fn cmd_inspect(args: &Args) -> Result<String, CliError> {
    let src = args.script(1)?;
    let prog = parse(&src).map_err(|e| CliError::Failed(e.to_string()))?;
    let report = instrument(&prog);
    let mut out = String::new();
    let _ = writeln!(out, "# instrumented program:");
    out.push_str(&print_program(&report.program));
    for b in &report.blocks {
        let _ = writeln!(
            out,
            "# block {}: changeset {{{}}}",
            b.id,
            b.static_changeset.join(", ")
        );
        for (stmt, rule) in &b.rule_trace {
            let _ = writeln!(out, "#   rule {rule}: {stmt}");
        }
    }
    for r in &report.refused {
        let _ = writeln!(out, "# refused {} — {}", r.header, r.reason.reason);
    }
    if let Some(m) = &report.main_loop {
        let _ = writeln!(out, "# main loop: for {} in {}", m.var, m.iter);
    }
    Ok(out)
}

fn cmd_log(args: &Args) -> Result<String, CliError> {
    let store = flor_chkpt::CheckpointStore::open(args.store()?)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let bytes = store
        .get_artifact("record_log.txt")
        .map_err(|e| CliError::Failed(e.to_string()))?;
    String::from_utf8(bytes).map_err(|_| CliError::Failed("record log is not UTF-8".into()))
}

/// `flor store stats|compact --store <dir>`: the storage-engine operator
/// surface — segment layout, dead bytes, zero-copy read counters, and
/// on-demand compaction/GC.
fn cmd_store(args: &Args) -> Result<String, CliError> {
    // `stats` is pure inspection and must be safe to run while another
    // process records into the store: open read-only (no repairs, no
    // deletes). `compact` mutates by design and takes a writable handle.
    let sub = args.positional.get(1).copied();
    let store = if sub == Some("compact") {
        flor_chkpt::CheckpointStore::open(args.store()?)
    } else {
        flor_chkpt::CheckpointStore::open_read_only(args.store()?)
    }
    .map_err(|e| CliError::Failed(e.to_string()))?;
    let render_stats = |s: &flor_chkpt::StoreStats| -> String {
        // Prose over the same `(name, value)` list `StoreStats::to_json`
        // serializes — a counter renamed or dropped on one side panics
        // here instead of silently drifting between the two surfaces.
        let fields = s.fields();
        let f = |name: &str| -> u64 {
            fields
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("StoreStats::fields lost {name:?}"))
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "entries:      {} ({} in segments, {} legacy files)",
            f("entries"),
            f("segment_entries"),
            f("legacy_entries")
        );
        let _ = writeln!(
            out,
            "segments:     {} ({} sealed), {} bytes on disk",
            f("segments"),
            f("sealed_segments"),
            f("segment_disk_bytes")
        );
        let _ = writeln!(
            out,
            "bytes:        {} raw, {} stored, {} dead in segments",
            f("raw_bytes"),
            f("stored_bytes"),
            f("dead_segment_bytes")
        );
        let _ = writeln!(
            out,
            "compression:  {:.2}x (raw/stored)",
            s.compression_ratio()
        );
        let _ = writeln!(
            out,
            "delta chains: {} delta entr{}, {} keyframe(s)",
            f("delta_entries"),
            if f("delta_entries") == 1 { "y" } else { "ies" },
            f("keyframe_entries")
        );
        // Depth histogram, trimmed at the deepest populated bucket.
        let deepest = s.chain_depth_hist.iter().rposition(|&c| c > 0).unwrap_or(0);
        let hist = s.chain_depth_hist[..=deepest]
            .iter()
            .enumerate()
            .map(|(d, c)| format!("{d}:{c}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(out, "chain depths: {hist}");
        let _ = writeln!(
            out,
            "reads:        {} ({} zero-copy; segment cache {} hits / {} misses)",
            f("reads"),
            f("zero_copy_reads"),
            f("segment_cache_hits"),
            f("segment_cache_misses")
        );
        if f("delta_reads") > 0 {
            let _ = writeln!(
                out,
                "delta reads:  {} ({} links resolved, {} restore-cache hits)",
                f("delta_reads"),
                f("chain_links_resolved"),
                f("restore_cache_hits")
            );
        }
        let _ = writeln!(
            out,
            "compactions:  {} ({} bytes reclaimed)",
            f("compactions"),
            f("compaction_reclaimed_bytes")
        );
        let _ = writeln!(
            out,
            "tiering:      {} cold segment(s), {} cold reads, {} demotions, {} mmap faults",
            f("tier_cold_segments"),
            f("tier_cold_reads"),
            f("tier_demotions"),
            f("mmap_faults")
        );
        let _ = writeln!(
            out,
            "dedup:        {} arena-backed entr{}, {} hits",
            f("dedup_entries"),
            if f("dedup_entries") == 1 { "y" } else { "ies" },
            f("dedup_hits")
        );
        let _ = writeln!(out, "effort:       level {}", f("compression_effort"));
        out
    };
    match sub {
        Some("stats") if args.flag("json") => {
            let mut out = store.stats().to_json();
            out.push('\n');
            Ok(out)
        }
        Some("stats") => {
            let mut out = render_stats(&store.stats());
            let r = store.recovery_report();
            if r.is_clean() {
                let _ = writeln!(out, "recovery:     clean");
            } else {
                let _ = writeln!(
                    out,
                    "recovery:     {} missing entr{} dropped, {} orphaned segment(s), \
                     {} orphaned file(s), {} stale temp file(s){}{}",
                    r.missing_entries.len(),
                    if r.missing_entries.len() == 1 {
                        "y"
                    } else {
                        "ies"
                    },
                    r.orphaned_segments.len(),
                    r.orphaned_files.len(),
                    r.stale_temp_files,
                    if r.dropped_torn_tail {
                        ", torn manifest tail dropped"
                    } else {
                        ""
                    },
                    if r.repaired_manifest {
                        ", manifest repaired"
                    } else if r.repair_pending {
                        ", manifest repair pending (read-only open)"
                    } else {
                        ""
                    },
                );
                for m in &r.missing_entries {
                    let _ = writeln!(out, "  missing: {}.{} at {}", m.block_id, m.seq, m.location);
                }
            }
            Ok(out)
        }
        Some("compact") => {
            let report = store
                .compact()
                .map_err(|e| CliError::Failed(e.to_string()))?;
            let mut out = String::new();
            let _ = writeln!(
                out,
                "# compacted: {} entries rewritten ({} migrated from legacy files), \
                 {} segment(s) + {} legacy file(s) removed, {} bytes reclaimed",
                report.rewritten_entries,
                report.migrated_files,
                report.segments_removed,
                report.legacy_files_removed,
                report.reclaimed_bytes
            );
            let _ = writeln!(
                out,
                "# delta chains: {} re-encoded, {} chain(s) folded into fresh keyframes",
                report.reencoded_entries, report.chains_folded
            );
            out.push_str(&render_stats(&store.stats()));
            Ok(out)
        }
        other => Err(CliError::Usage(format!(
            "store expects stats|compact, got {other:?}"
        ))),
    }
}

fn cmd_runs(args: &Args) -> Result<String, CliError> {
    let registry = args.registry()?;
    match args.positional.get(1).copied() {
        Some("list") => {
            let mut out = String::new();
            let runs = registry.runs();
            let _ = writeln!(
                out,
                "{:<20} {:>3} {:>6} {:>6} {:>12} {:>9} {:>8}  source",
                "run", "gen", "iters", "ckpts", "stored_bytes", "overhead", "scale_c"
            );
            for r in &runs {
                let _ = writeln!(
                    out,
                    "{:<20} {:>3} {:>6} {:>6} {:>12} {:>8.2}% {:>8.2}  {}",
                    r.run_id,
                    r.generation,
                    r.iterations,
                    r.checkpoints,
                    r.stored_bytes,
                    r.record_overhead * 100.0,
                    r.scaling_c,
                    r.source_version,
                );
            }
            let _ = writeln!(out, "# {} run(s) cataloged", runs.len());
            Ok(out)
        }
        Some("show") => {
            let id = args
                .positional
                .get(2)
                .copied()
                .ok_or_else(|| CliError::Usage("missing run id".into()))?;
            let rec = registry.run(id)?;
            if args.flag("json") {
                let mut out = rec.to_json();
                out.push('\n');
                return Ok(out);
            }
            // Prose over the same field list `RunRecord::to_json`
            // serializes — a field renamed on one side panics here
            // instead of drifting between the two surfaces.
            let (strs, nums) = rec.fields();
            let fs = |name: &str| -> &str {
                strs.iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, v)| v.as_str())
                    .unwrap_or_else(|| panic!("RunRecord::fields lost {name:?}"))
            };
            let fnum = |name: &str| -> f64 {
                nums.iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or_else(|| panic!("RunRecord::fields lost {name:?}"))
            };
            let mut out = String::new();
            let _ = writeln!(out, "run:             {}", fs("run_id"));
            let _ = writeln!(out, "generation:      {}", fnum("generation"));
            let _ = writeln!(out, "source version:  {}", fs("source_version"));
            let _ = writeln!(out, "store root:      {}", fs("store_root"));
            let _ = writeln!(out, "iterations:      {}", fnum("iterations"));
            let _ = writeln!(out, "checkpoints:     {}", fnum("checkpoints"));
            let _ = writeln!(
                out,
                "bytes:           {} raw, {} stored",
                fnum("raw_bytes"),
                fnum("stored_bytes")
            );
            let _ = writeln!(
                out,
                "record overhead: {:.2}% (scaling c {:.3})",
                fnum("record_overhead") * 100.0,
                fnum("scaling_c")
            );
            let history = registry.catalog().history(id);
            if history.len() > 1 {
                let _ = writeln!(out, "generations:     {}", history.len());
            }
            let _ = writeln!(out, "--- recorded source ---");
            out.push_str(&registry.run_source(id)?);
            Ok(out)
        }
        Some("prune") => {
            let id = args
                .positional
                .get(2)
                .copied()
                .ok_or_else(|| CliError::Usage("missing run id".into()))?;
            let keep: usize = args
                .value("keep")
                .map(|k| {
                    k.parse()
                        .map_err(|_| CliError::Usage(format!("bad --keep {k:?}")))
                })
                .transpose()?
                .unwrap_or(flor_registry::RetentionPolicy::default().keep_latest);
            let pruned = registry
                .apply_retention(id, &flor_registry::RetentionPolicy { keep_latest: keep })?;
            let mut out = String::new();
            for r in &pruned {
                let _ = writeln!(
                    out,
                    "pruned generation {} ({} stored bytes at {})",
                    r.generation,
                    r.stored_bytes,
                    r.store_root.display()
                );
            }
            let _ = writeln!(
                out,
                "# {} generation(s) pruned, newest {keep} kept (metadata retained in catalog)",
                pruned.len()
            );
            Ok(out)
        }
        other => Err(CliError::Usage(format!(
            "runs expects list|show|prune, got {other:?}"
        ))),
    }
}

fn cmd_query(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let registry = args.registry()?;
    registry.set_vm(!args.flag("no-vm"));
    registry.set_slice(!args.flag("no-slice"));
    let run_id = args
        .positional
        .get(1)
        .copied()
        .ok_or_else(|| CliError::Usage("missing run id".into()))?;
    let probed_src = args.script(2)?;
    let workers = args.workers(1)?;
    // `--trace out.json` wraps the whole query in a tracing window and
    // writes a Chrome trace_event file: one lane per replay worker plus
    // the merge driver and materializer/scheduler roles.
    let trace_path = args.value("trace").map(PathBuf::from);
    let session = trace_path.as_ref().map(|_| flor_obs::TraceSession::start());
    let outcome = if args.flag("stream") {
        // Streaming mode: entries and progress are written (and flushed)
        // the moment the replay delivers them — leading iterations reach
        // the terminal while trailing workers are still replaying. I/O
        // errors inside the observer are deferred to the end (the replay
        // itself must not be torn down mid-range by a closed pipe).
        let mut io_err: Option<std::io::Error> = None;
        let outcome = registry.query_streaming(
            run_id,
            &probed_src,
            workers,
            &mut |ev: flor_registry::QueryEvent| {
                if io_err.is_some() {
                    return;
                }
                let result = (|| -> std::io::Result<()> {
                    match ev {
                        flor_registry::QueryEvent::Entries(chunk) => {
                            for e in &chunk {
                                writeln!(out, "{e}")?;
                            }
                        }
                        flor_registry::QueryEvent::Progress {
                            iterations_done,
                            iterations_total,
                            steals,
                        } => writeln!(
                            out,
                            "# progress {iterations_done}/{iterations_total} iterations, \
                             {steals} steal(s)"
                        )?,
                        flor_registry::QueryEvent::Anomaly(a) => {
                            writeln!(out, "# ANOMALY: {a}")?;
                        }
                    }
                    out.flush()
                })();
                io_err = result.err();
            },
        )?;
        if let Some(e) = io_err {
            return Err(e.into());
        }
        writeln!(
            out,
            "# stream: first entry after {:.3}ms, {} steal(s)",
            outcome.stream_first_entry_ns as f64 / 1e6,
            outcome.steals
        )?;
        outcome
    } else {
        let outcome = registry.query(run_id, &probed_src, workers)?;
        for e in &outcome.log {
            writeln!(out, "{e}")?;
        }
        for a in &outcome.anomalies {
            writeln!(out, "# ANOMALY: {a}")?;
        }
        outcome
    };
    writeln!(
        out,
        "# query {} ({}): {} probes, {} entries, {} restored, {} re-executed, {} steal(s)",
        outcome.key,
        if outcome.cached { "cached" } else { "fresh" },
        outcome.probes,
        outcome.log.len(),
        outcome.restored,
        outcome.executed,
        outcome.steals
    )?;
    writeln!(
        out,
        "# slice: {} statement(s) elided ({} permille live), {} slice-cache hit(s)",
        outcome.statements_elided, outcome.slice_permille, outcome.slice_cache_hits
    )?;
    if let (Some(path), Some(session)) = (trace_path, session) {
        let trace = session.finish();
        std::fs::write(&path, trace.to_chrome_json())?;
        let cats: Vec<&str> = trace.categories().iter().map(|c| c.as_str()).collect();
        writeln!(
            out,
            "# trace: {} event(s) on {} lane(s) [{}] -> {}",
            trace.events.len(),
            trace.lanes().len(),
            cats.join(","),
            path.display()
        )?;
    }
    Ok(())
}

/// The `serve` loop over explicit I/O — a thin, byte-compatible adapter
/// over [`flor_registry::ServeSession`] (the same state machine the epoll
/// socket server runs; `cmd_serve` wires this one to stdin/stdout, or to
/// listening sockets with `--listen`). Protocol: one command per line —
///
/// ```text
/// query <run-id> <probed.flr path> [priority]   enqueue a hindsight query
/// stream <run-id> <probed.flr path> [priority]  enqueue + stream +entry/+done lines
/// watch <job-id>                                stream +progress/+done for a job
/// status <job-id>                               poll a job
/// cancel <job-id>                               cancel a queued or running job
/// tenant <name>                                 tag later submissions for quotas
/// runs                                          list cataloged runs
/// metrics [tenant]                              metrics as one JSON line
/// drain                                         report all finished jobs
/// quit                                          drain and exit (EOF works too)
/// ```
pub fn serve_io(
    registry_root: &Path,
    pool_workers: usize,
    input: impl std::io::BufRead,
    mut out: impl std::io::Write,
) -> Result<(), CliError> {
    let registry = Arc::new(Registry::open(registry_root)?);
    let scheduler = Arc::new(ReplayScheduler::new(registry.clone(), pool_workers));
    writeln!(
        out,
        "{}",
        flor_registry::session::banner(registry_root, scheduler.pool_size())
    )?;
    let admission = Arc::new(flor_registry::AdmissionController::new(
        flor_registry::AdmissionPolicy::unlimited(),
    ));
    let mut session = ServeSession::new(registry, scheduler, admission, true, 1024, || {});
    let mut lines: Vec<String> = Vec::new();
    for line in input.lines() {
        let line = line?;
        lines.clear();
        let ctl = session.handle_line(&line, &mut lines)?;
        for l in &lines {
            writeln!(out, "{l}")?;
        }
        if ctl == SessionControl::Quit {
            return Ok(());
        }
    }
    lines.clear();
    session.finish(&mut lines)?;
    for l in &lines {
        writeln!(out, "{l}")?;
    }
    Ok(())
}

fn parse_endpoints(specs: &[&str]) -> Result<Vec<Endpoint>, CliError> {
    specs
        .iter()
        .map(|s| {
            Endpoint::parse(s).map_err(|e| CliError::Usage(format!("bad --listen {s:?}: {e}")))
        })
        .collect()
}

fn cmd_serve(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let root = args
        .value("registry")
        .map(PathBuf::from)
        .ok_or_else(|| CliError::Usage("missing --registry <dir>".into()))?;
    let workers = args.workers(2)?;
    let listens = args.values("listen");
    if listens.is_empty() {
        // Stdin mode: the original single-client protocol, byte-for-byte.
        let stdin = std::io::stdin();
        return serve_io(&root, workers, stdin.lock(), out);
    }
    let config = ServerConfig {
        endpoints: parse_endpoints(&listens)?,
        pool_workers: workers,
        queue_limit: args.num("queue-limit", 0usize)?,
        admission: flor_registry::AdmissionPolicy {
            max_queue_depth: args.num("queue-limit", 0usize)?,
            max_tenant_jobs: args.num("tenant-jobs", 0usize)?,
            tenant_burst: args.num("tenant-burst", 0u64)?,
            tenant_refill_per_sec: args.num("tenant-refill", 0.0f64)?,
            max_backlog_ms: args.num("max-backlog-ms", 0u64)?,
        },
        ..ServerConfig::default()
    };
    let handle = Server::start(Arc::new(Registry::open(&root)?), config)?;
    for ep in handle.local_endpoints() {
        writeln!(out, "# listening on {ep}")?;
    }
    out.flush()?;
    // Serve until the process is killed (ctrl-C); the handle's Drop then
    // aborts connections and drains the scheduler.
    loop {
        std::thread::park();
    }
}

/// `flor connect <endpoint>`: bridges stdin/stdout to a serve socket —
/// the interactive client for `flor serve --listen`. Lines typed on
/// stdin go to the server; everything the server sends (including async
/// `+entry`/`+done` stream lines) is printed as it arrives. EOF on stdin
/// half-closes the socket, and the session's final report drains before
/// exit.
fn cmd_connect(args: &Args, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let spec = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::Usage("missing endpoint".into()))?;
    let ep = Endpoint::parse(spec).map_err(|e| CliError::Usage(format!("bad endpoint: {e}")))?;
    let conn = Arc::new(
        ClientConn::connect(&ep).map_err(|e| CliError::Failed(format!("connect {ep}: {e}")))?,
    );
    let writer = {
        let conn = conn.clone();
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            let _ = std::io::copy(&mut stdin.lock(), &mut &*conn);
            let _ = conn.shutdown_write();
        })
    };
    let mut sock = std::io::BufReader::new(&*conn);
    std::io::copy(&mut sock, out)?;
    let _ = writer.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = "\
import flor
data = synth_data(n=40, dim=8, classes=2, seed=5)
loader = dataloader(data, batch_size=20, seed=5)
net = mlp(input=8, hidden=8, classes=2, depth=1, seed=5)
optimizer = sgd(net, lr=0.1)
criterion = cross_entropy()
avg = meter()
for epoch in range(4):
    avg.reset()
    for batch in loader.epoch():
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
";

    fn setup(tag: &str) -> (PathBuf, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "flor-cli-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("train.flr");
        std::fs::write(&script, SCRIPT).unwrap();
        (dir.join("store"), script)
    }

    fn cli(parts: &[&str]) -> Result<String, CliError> {
        let raw: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
        run_cli(&raw)
    }

    #[test]
    fn run_executes_script() {
        let (_, script) = setup("run");
        let out = cli(&["run", script.to_str().unwrap()]).unwrap();
        assert_eq!(out.matches("loss\t").count(), 4, "{out}");
    }

    #[test]
    fn record_then_log_then_replay() {
        let (store, script) = setup("pipeline");
        let out = cli(&[
            "record",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--no-adaptive",
        ])
        .unwrap();
        assert!(out.contains("# recorded"), "{out}");
        assert!(out.contains("checkpoints"), "{out}");

        let log_out = cli(&["log", "--store", store.to_str().unwrap()]).unwrap();
        assert_eq!(log_out.matches("loss\t").count(), 4);

        // Probe the script and replay with workers.
        let probed = SCRIPT.replace(
            "    log(\"loss\", avg.mean())\n",
            "    log(\"loss\", avg.mean())\n    log(\"wnorm\", net.weight_norm())\n",
        );
        let probed_path = script.with_file_name("probed.flr");
        std::fs::write(&probed_path, probed).unwrap();
        let out = cli(&[
            "replay",
            probed_path.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .unwrap();
        assert!(out.contains("1 probes"), "{out}");
        assert_eq!(out.matches("wnorm\t").count(), 4, "{out}");
        assert!(!out.contains("ANOMALY"), "{out}");
    }

    #[test]
    fn sample_replays_selected_iterations() {
        let (store, script) = setup("sample");
        cli(&[
            "record",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--no-adaptive",
        ])
        .unwrap();
        let out = cli(&[
            "sample",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--iters",
            "1,3",
        ])
        .unwrap();
        assert!(out.contains("[it000001]"), "{out}");
        assert!(out.contains("[it000003]"), "{out}");
        assert!(!out.contains("[it000002]"), "{out}");
    }

    #[test]
    fn inspect_shows_instrumentation() {
        let (_, script) = setup("inspect");
        let out = cli(&["inspect", script.to_str().unwrap()]).unwrap();
        assert!(out.contains("skipblock \"sb_0\":"), "{out}");
        assert!(out.contains("flor.partition"), "{out}");
        assert!(out.contains("changeset"), "{out}");
    }

    #[test]
    fn store_stats_and_compact_commands() {
        let (store, script) = setup("store-cmd");
        cli(&[
            "record",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--no-adaptive",
        ])
        .unwrap();
        let out = cli(&["store", "stats", "--store", store.to_str().unwrap()]).unwrap();
        assert!(out.contains("entries:"), "{out}");
        assert!(out.contains("segments:"), "{out}");
        assert!(out.contains("compression:"), "{out}");
        assert!(out.contains("delta chains:"), "{out}");
        assert!(out.contains("chain depths: 0:"), "{out}");
        assert!(out.contains("tiering:"), "{out}");
        assert!(out.contains("dedup:"), "{out}");
        assert!(out.contains("effort:       level"), "{out}");
        assert!(out.contains("recovery:     clean"), "{out}");

        let out = cli(&["store", "compact", "--store", store.to_str().unwrap()]).unwrap();
        assert!(out.contains("# compacted:"), "{out}");
        assert!(out.contains("chain(s) folded"), "{out}");
        assert!(out.contains("compactions:  1"), "{out}");

        // Compacted store still replays cleanly.
        let out = cli(&[
            "replay",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("# replayed"), "{out}");
        assert!(!out.contains("ANOMALY"), "{out}");

        assert!(matches!(
            cli(&["store", "bogus", "--store", store.to_str().unwrap()]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn store_stats_json_parses_and_matches_pretty() {
        let (store, script) = setup("stats-json");
        cli(&[
            "record",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--no-adaptive",
        ])
        .unwrap();
        let pretty = cli(&["store", "stats", "--store", store.to_str().unwrap()]).unwrap();
        let out = cli(&[
            "store",
            "stats",
            "--store",
            store.to_str().unwrap(),
            "--json",
        ])
        .unwrap();
        let doc = flor_obs::json::parse(out.trim()).expect("--json output parses");
        let entries = doc.get("entries").and_then(|v| v.as_u64()).unwrap();
        assert!(entries > 0);
        // Same source list on both surfaces: the pretty line carries the
        // exact value the JSON reports.
        assert!(
            pretty.contains(&format!("entries:      {entries} (")),
            "{pretty}"
        );
        assert!(
            doc.get("compression_ratio")
                .and_then(|v| v.as_f64())
                .unwrap()
                > 0.0
        );
        assert!(doc
            .get("chain_depth_hist")
            .and_then(|v| v.as_arr())
            .is_some());
        for key in ["segments", "raw_bytes", "stored_bytes", "reads"] {
            assert!(doc.get(key).is_some(), "missing {key}: {out}");
        }
    }

    #[test]
    fn runs_prune_applies_retention() {
        let (dir, script) = setup("prune");
        let registry = dir.with_file_name("prune-registry");
        for _ in 0..3 {
            cli(&[
                "record",
                script.to_str().unwrap(),
                "--registry",
                registry.to_str().unwrap(),
                "--run-id",
                "train",
                "--no-adaptive",
            ])
            .unwrap();
        }
        let out = cli(&[
            "runs",
            "prune",
            "train",
            "--registry",
            registry.to_str().unwrap(),
            "--keep",
            "1",
        ])
        .unwrap();
        assert!(out.contains("# 2 generation(s) pruned"), "{out}");
        // History metadata survives; the live generation still queries.
        let out = cli(&[
            "runs",
            "show",
            "train",
            "--registry",
            registry.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("generations:     3"), "{out}");
        let probed = SCRIPT.replace(
            "    log(\"loss\", avg.mean())\n",
            "    log(\"loss\", avg.mean())\n    log(\"wn\", net.weight_norm())\n",
        );
        let probed_path = script.with_file_name("probed-prune.flr");
        std::fs::write(&probed_path, probed).unwrap();
        let out = cli(&[
            "query",
            "train",
            probed_path.to_str().unwrap(),
            "--registry",
            registry.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(out.matches("wn\t").count(), 4, "{out}");
    }

    #[test]
    fn query_stream_interleaves_progress() {
        let (dir, script) = setup("stream");
        let registry = dir.with_file_name("stream-registry");
        cli(&[
            "record",
            script.to_str().unwrap(),
            "--registry",
            registry.to_str().unwrap(),
            "--run-id",
            "train",
            "--no-adaptive",
        ])
        .unwrap();
        let probed = SCRIPT.replace(
            "    log(\"loss\", avg.mean())\n",
            "    log(\"loss\", avg.mean())\n    log(\"wn\", net.weight_norm())\n",
        );
        let probed_path = script.with_file_name("probed-stream.flr");
        std::fs::write(&probed_path, probed).unwrap();
        let out = cli(&[
            "query",
            "train",
            probed_path.to_str().unwrap(),
            "--registry",
            registry.to_str().unwrap(),
            "--workers",
            "2",
            "--stream",
        ])
        .unwrap();
        assert_eq!(out.matches("wn\t").count(), 4, "{out}");
        assert!(out.contains("# progress "), "{out}");
        assert!(out.contains("4/4 iterations"), "{out}");
        assert!(out.contains("# stream: first entry after"), "{out}");
        assert!(out.contains("(fresh)"), "{out}");
        // The cached repeat still streams: one chunk, full progress.
        let out = cli(&[
            "query",
            "train",
            probed_path.to_str().unwrap(),
            "--registry",
            registry.to_str().unwrap(),
            "--stream",
        ])
        .unwrap();
        assert!(out.contains("(cached)"), "{out}");
        assert_eq!(out.matches("wn\t").count(), 4, "{out}");
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(cli(&[]), Err(CliError::Usage(_))));
        assert!(matches!(cli(&["bogus"]), Err(CliError::Usage(_))));
        assert!(matches!(cli(&["replay", "x.flr"]), Err(CliError::Usage(_))));
        assert!(matches!(
            cli(&["record", "x.flr", "--store"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn missing_script_fails_cleanly() {
        let err = cli(&["run", "/nonexistent/path.flr"]).unwrap_err();
        assert!(matches!(err, CliError::Failed(_)));
    }

    #[test]
    fn replay_weak_init_flag() {
        let (store, script) = setup("weak");
        cli(&[
            "record",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--no-adaptive",
        ])
        .unwrap();
        let out = cli(&[
            "replay",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--workers",
            "2",
            "--weak",
        ])
        .unwrap();
        assert!(out.contains("# replayed"), "{out}");
        assert!(!out.contains("ANOMALY"), "{out}");
    }

    #[test]
    fn replay_no_vm_flag_matches_vm_output() {
        let (store, script) = setup("no-vm");
        cli(&[
            "record",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--no-adaptive",
        ])
        .unwrap();
        let vm = cli(&[
            "replay",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
        ])
        .unwrap();
        assert!(vm.contains("# interpreter: vm"), "{vm}");
        let tree = cli(&[
            "replay",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--no-vm",
        ])
        .unwrap();
        assert!(tree.contains("# interpreter: tree-walk"), "{tree}");
        // Same log lines from both executors.
        let logs = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.starts_with('#'))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(logs(&vm), logs(&tree));
    }

    #[test]
    fn record_with_custom_epsilon() {
        let (store, script) = setup("eps");
        let out = cli(&[
            "record",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--epsilon",
            "0.5",
        ])
        .unwrap();
        assert!(out.contains("# recorded"), "{out}");
        let err = cli(&[
            "record",
            script.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
            "--epsilon",
            "bogus",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }
}
