//! The `flor` command-line tool.
//!
//! ```text
//! flor run      <script.flr>                     vanilla execution
//! flor record   <script.flr> --store <dir>       record with checkpointing
//! flor replay   <script.flr> --store <dir>       replay (probes auto-detected)
//!               [--workers N] [--weak]
//! flor sample   <script.flr> --store <dir> --iters 3,7,12
//! flor inspect  <script.flr>                     show instrumentation
//! flor log      --store <dir>                    print the recorded log
//! ```

use flor_cli::{run_cli_to, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    match run_cli_to(&args, &mut stdout.lock()) {
        Ok(()) => {}
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            eprintln!("{}", flor_cli::USAGE);
            std::process::exit(2);
        }
        Err(CliError::Failed(msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
