//! Quickstart: hindsight logging from native Rust in ~60 lines.
//!
//! Run with: `cargo run -p flor-bench --example quickstart`
//!
//! The flow mirrors the paper's §3: a record pass checkpoints each loop
//! iteration's end state; later, a replay pass answers a question you
//! forgot to log — here, the weight norm per epoch — by *restoring*
//! checkpoints instead of re-training.

use flor_chkpt::CVal;
use flor_core::native::{Checkpointable, Session};
use flor_tensor::{Pcg64, Tensor};

/// The training state we want Flor to memoize: a weight vector and the RNG.
struct TrainState {
    weights: Tensor,
    rng: Pcg64,
}

impl Checkpointable for TrainState {
    fn to_cval(&self) -> CVal {
        let (s, i) = self.rng.state();
        CVal::map(vec![
            ("weights", CVal::bytes(self.weights.to_bytes())),
            ("rng_s", CVal::I64(s as i64)),
            ("rng_i", CVal::I64(i as i64)),
        ])
    }

    fn from_cval(&mut self, v: &CVal) -> Result<(), String> {
        let bytes = match v.get("weights").and_then(CVal::as_bytes) {
            Some(b) => b,
            None => return Err("missing weights".into()),
        };
        self.weights = Tensor::from_bytes(bytes.as_ref()).ok_or("corrupt weights")?;
        let (s, i) = match (v.get("rng_s"), v.get("rng_i")) {
            (Some(CVal::I64(s)), Some(CVal::I64(i))) => (*s as u64, *i as u64),
            _ => return Err("missing rng".into()),
        };
        self.rng = Pcg64::restore(s, i);
        Ok(())
    }
}

fn train_epoch(state: &mut TrainState) {
    // A toy "training" step: noisy decay toward a target.
    for w in state.weights.data_mut() {
        *w = 0.9 * *w + 0.1 * state.rng.normal();
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("flor-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let epochs = 10u64;

    // ---- Record: train as usual; Flor checkpoints in the background. ----
    let mut state = TrainState {
        weights: Tensor::ones([64]),
        rng: Pcg64::seeded(42),
    };
    let mut session = Session::record_with(&dir, 1.0 / 15.0, false).expect("open store");
    for epoch in 0..epochs {
        session.begin_iter(epoch);
        session
            .skip_block("train_epoch", &mut state, train_epoch)
            .expect("record epoch");
        session.log("epoch", &epoch.to_string());
    }
    session.end_loop();
    let record_log = session.finish().expect("finish record");
    println!(
        "recorded {} epochs, {} log entries",
        epochs,
        record_log.len()
    );
    println!(
        "final weight norm (recorded run): {:.4}",
        state.weights.norm()
    );

    // ---- Hindsight: what was the weight norm after *every* epoch? -------
    // We never logged it. Replay restores each epoch's end state from its
    // checkpoint — no training is re-executed.
    let mut state = TrainState {
        weights: Tensor::ones([64]),
        rng: Pcg64::seeded(42),
    };
    let mut session = Session::replay(&dir, &[]).expect("open replay");
    println!("\nhindsight log (weight norm per epoch):");
    for epoch in 0..epochs {
        session.begin_iter(epoch);
        let executed = session
            .skip_block("train_epoch", &mut state, train_epoch)
            .expect("replay epoch");
        // The probe: any expression over the restored state.
        println!(
            "  epoch {epoch}: |w| = {:.4}   ({})",
            state.weights.norm(),
            if executed {
                "re-executed"
            } else {
                "restored from checkpoint"
            }
        );
    }
    println!(
        "\nreplay restored {} of {} epochs physically (no recomputation)",
        session.restored(),
        epochs
    );
}
