//! Sampling replay and replay-time binary search (paper §8).
//!
//! Run with: `cargo run -p flor-bench --example sampling_search --release`
//!
//! "By analogy to query processing, Flor is currently sequentially scanning
//! the past; we want to augment it with techniques for searching and
//! approximate query processing." The paper implemented iteration sampling
//! as a proof of concept; this example uses it two ways:
//!
//! 1. **spot checks** — replay just iterations {2, 9} of a 16-epoch run,
//! 2. **binary search** — find the first epoch where the loss converged
//!    below a threshold, in O(log n) single-iteration replays.

use flor_core::record::{record, RecordOptions};
use flor_core::sample::{binary_search, iteration_entries, replay_sample};

const TRAIN: &str = "\
import flor
data = synth_data(n=96, dim=12, classes=4, spread=0.3, seed=29)
loader = dataloader(data, batch_size=24, seed=29)
net = mlp(input=12, hidden=24, classes=4, depth=2, seed=29)
optimizer = sgd(net, lr=0.05, momentum=0.9)
criterion = cross_entropy()
avg = meter()
for epoch in range(16):
    avg.reset()
    for batch in loader.epoch():
        waste = busy(2)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
";

fn main() {
    let store = std::env::temp_dir().join(format!("flor-sampling-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let mut opts = RecordOptions::new(&store);
    opts.adaptive = false; // every epoch checkpointed → O(1) jumps
    let rec = record(TRAIN, &opts).expect("record");
    println!(
        "recorded 16 epochs in {:.2}s ({} checkpoints)",
        rec.wall_ns as f64 / 1e9,
        rec.checkpoints
    );

    // ---- Spot checks: hindsight-probe two specific epochs. ----------------
    let probed = TRAIN.replace(
        "    log(\"loss\", avg.mean())\n",
        "    log(\"loss\", avg.mean())\n    log(\"wnorm\", net.weight_norm())\n",
    );
    let sampled = replay_sample(&probed, &store, &[2, 9]).expect("sample");
    println!(
        "\nspot-checked epochs 2 and 9 in {:.3}s ({} restored, {} executed):",
        sampled.wall_ns as f64 / 1e9,
        sampled.stats.restored,
        sampled.stats.executed
    );
    for g in [2u64, 9] {
        for e in iteration_entries(&sampled, g) {
            println!("  {e}");
        }
    }

    // ---- Binary search: when did the loss first drop below 0.2? -----------
    let mut probes = 0u32;
    let threshold = 0.2f64;
    let found = binary_search(TRAIN, &store, 16, |entries| {
        probes += 1;
        entries
            .iter()
            .find(|e| e.key == "loss")
            .and_then(|e| e.value.parse::<f64>().ok())
            .map(|l| l < threshold)
            .unwrap_or(false)
    })
    .expect("search");
    match found {
        Some(epoch) => println!(
            "\nloss first dropped below {threshold} at epoch {epoch} \
             (found with {probes} sampled replays instead of a 16-epoch scan)"
        ),
        None => println!("\nloss never dropped below {threshold} ({probes} probes)"),
    }
}
