//! The paper's §2.1 debugging scenario, end to end.
//!
//! Run with: `cargo run -p flor-bench --example alice_scenario --release`
//!
//! Alice trains a baseline, then implements stochastic weight averaging
//! (SWA) with two latent problems: her averaging code transposes weight
//! matrices ("averaged along the wrong dimension"), and SWA's high cyclic
//! learning-rate bounds interact badly with weight decay
//! (over-regularization → exploding-then-vanishing gradients).
//!
//! In the paper, Alice diagnoses this by *re-running one-hour training
//! jobs* with more logging, three times. Here, Flor records her failed run
//! once; every follow-up question is a hindsight probe answered by replay.

use flor_core::record::{record, run_vanilla, RecordOptions};
use flor_core::replay::{replay, ReplayOptions};

const BASELINE: &str = "\
import flor
data = synth_data(n=128, dim=16, classes=16, spread=0.25, seed=31)
loader = dataloader(data, batch_size=32, seed=31)
net = mlp(input=16, hidden=16, classes=16, depth=1, seed=31)
optimizer = sgd(net, lr=0.1, momentum=0.9, weight_decay=0.01)
criterion = cross_entropy()
avg = meter()
for epoch in range(12):
    avg.reset()
    for batch in loader.epoch():
        waste = busy(1)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
acc = evaluate(net, data)
log(\"accuracy\", acc)
";

/// Alice's SWA attempt: cyclic LR with high bounds + weight decay + the
/// wrong-dimension averaging bug (square layers make it silent corruption).
const SWA_BUGGY: &str = "\
import flor
data = synth_data(n=128, dim=16, classes=16, spread=0.25, seed=31)
loader = dataloader(data, batch_size=32, seed=31)
net = mlp(input=16, hidden=16, classes=16, depth=1, seed=31)
optimizer = sgd(net, lr=0.1, momentum=0.9, weight_decay=0.08)
sched = cyclic_lr(optimizer, min_lr=0.05, max_lr=0.9, period=4)
criterion = cross_entropy()
swa = swa_averager()
avg = meter()
for epoch in range(12):
    avg.reset()
    for batch in loader.epoch():
        waste = busy(1)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    sched.step()
    swa.update_buggy(net)
    log(\"loss\", avg.mean())
swa.apply(net)
acc = evaluate(net, data)
log(\"accuracy\", acc)
";

fn accuracy_of(log: &[flor_core::LogEntry]) -> f64 {
    log.iter()
        .find(|e| e.key == "accuracy")
        .map(|e| e.value.parse().unwrap_or(0.0))
        .unwrap_or(0.0)
}

fn main() {
    let store = std::env::temp_dir().join(format!("flor-alice-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    // ---- Act 1: the baseline works. --------------------------------------
    let (_, baseline_log) = run_vanilla(BASELINE).expect("baseline");
    let baseline_acc = accuracy_of(&baseline_log);
    println!("baseline accuracy: {baseline_acc:.3}");

    // ---- Act 2: Alice tries SWA; Flor records it (import flor is already
    //      there, so this costs ~nothing extra). The run fails.
    let rec = record(SWA_BUGGY, &RecordOptions::new(&store)).expect("record SWA run");
    let swa_acc = accuracy_of(&rec.log);
    println!("SWA attempt accuracy: {swa_acc:.3}  ← collapsed (bug!)");
    assert!(swa_acc < baseline_acc, "the bug should hurt accuracy");

    // ---- Act 3: hindsight question #1 (outer probe, cheap) ---------------
    // "What were the weight magnitudes over time?" — Alice never logged
    // them. Outer probes let every training loop restore from checkpoints.
    let probed_outer = SWA_BUGGY.replace(
        "    log(\"loss\", avg.mean())\n",
        "    log(\"loss\", avg.mean())\n    log(\"w_norm\", net.weight_norm())\n",
    );
    let rep = replay(&probed_outer, &store, &ReplayOptions::default()).expect("outer replay");
    println!(
        "\nhindsight probe 1 — weight norms (partial replay: {} restored, {} re-executed):",
        rep.stats.restored, rep.stats.executed
    );
    for e in rep.log.iter().filter(|e| e.key == "w_norm") {
        println!("  {e}");
    }

    // ---- Act 4: hindsight question #2 (inner probe, parallel) ------------
    // "And the gradient magnitudes?" — needs the training loop's internals,
    // so the loops re-execute; hindsight parallelism spreads them over 4
    // workers.
    let probed_inner = SWA_BUGGY.replace(
        "        optimizer.step()\n",
        "        optimizer.step()\n        log(\"g_norm\", net.grad_norm())\n",
    );
    let rep = replay(&probed_inner, &store, &ReplayOptions::with_workers(4)).expect("inner replay");
    let norms: Vec<f64> = rep
        .log
        .iter()
        .filter(|e| e.key == "g_norm")
        .map(|e| e.value.parse().unwrap_or(0.0))
        .collect();
    let early: f64 = norms.iter().take(8).sum::<f64>() / 8.0;
    let late: f64 = norms.iter().rev().take(8).sum::<f64>() / 8.0;
    println!(
        "\nhindsight probe 2 — gradient norms over 4 workers ({} batches probed):",
        norms.len()
    );
    println!("  early-training mean |g| = {early:.4}");
    println!("  late-training  mean |g| = {late:.4}");
    println!("  → high LR bounds + weight decay destabilize training (over-regularization),");
    println!("    and the SWA average itself was corrupted (wrong-dimension bug).");
    assert!(rep.anomalies.is_empty(), "replay must match the record");

    // ---- Act 5: the fix — correct averaging, no weight decay. ------------
    let fixed = SWA_BUGGY
        .replace("update_buggy", "update")
        .replace("weight_decay=0.08", "weight_decay=0.0")
        .replace("max_lr=0.9", "max_lr=0.4");
    let (_, fixed_log) = run_vanilla(&fixed).expect("fixed run");
    let fixed_acc = accuracy_of(&fixed_log);
    println!("\nfixed SWA accuracy: {fixed_acc:.3}  (baseline {baseline_acc:.3})");
    assert!(
        fixed_acc > swa_acc,
        "the fix must recover from the collapapsed run"
    );
}
