//! FlorScript end to end: record a training script from disk, then answer
//! hindsight questions from a probed copy of the script.
//!
//! Run with: `cargo run -p flor-bench --example script_training --release`
//!
//! This is the paper's workflow verbatim: the user writes a training script
//! whose only Flor-specific line is `import flor`; instrumentation,
//! checkpoint placement, probe detection (source diff), and replay are all
//! automatic.

use flor_analysis::instrument::instrument;
use flor_core::record::{record, RecordOptions};
use flor_core::replay::{replay, ReplayOptions};
use flor_lang::{parse, print_program};

const TRAIN: &str = include_str!("scripts/train_basic.flr");
const PROBED: &str = include_str!("scripts/train_probed.flr");

fn main() {
    let store = std::env::temp_dir().join(format!("flor-script-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    // Show what Flor's instrumentation does to the user's script.
    let report = instrument(&parse(TRAIN).expect("parse"));
    println!("--- instrumented source (what record executes) ---");
    print!("{}", print_program(&report.program));
    println!("--- blocks ---");
    for b in &report.blocks {
        println!(
            "  {}: changeset {{{}}}",
            b.id,
            b.static_changeset.join(", ")
        );
    }
    for r in &report.refused {
        println!("  refused {} — {}", r.header, r.reason.reason);
    }

    // Record.
    let rec = record(TRAIN, &RecordOptions::new(&store)).expect("record");
    println!(
        "\nrecorded: {:.2}s wall, {} checkpoints, {} KiB",
        rec.wall_ns as f64 / 1e9,
        rec.checkpoints,
        rec.stored_bytes / 1024
    );
    for e in &rec.log {
        println!("  {e}");
    }

    // Hindsight: the probed script adds two outer-loop log statements.
    let rep = replay(PROBED, &store, &ReplayOptions::with_workers(2)).expect("replay");
    println!(
        "\nreplayed with probes: {:.2}s wall, {} restored / {} re-executed, {} anomalies",
        rep.wall_ns as f64 / 1e9,
        rep.stats.restored,
        rep.stats.executed,
        rep.anomalies.len()
    );
    println!("probes detected: {}", rep.probes.len());
    println!("\n--- hindsight log ---");
    for e in rep.log.iter().filter(|e| e.key.starts_with("hindsight_")) {
        println!("  {e}");
    }
    assert!(rep.anomalies.is_empty());
}
