//! Hindsight parallelism: one recorded run, replayed across worker pools.
//!
//! Run with: `cargo run -p flor-bench --example parallel_replay --release`
//!
//! Records a 12-epoch training job once, then asks an inner-loop hindsight
//! question (per-batch gradient norms) with 1, 2 and 4 replay workers.
//! Checkpoints break the cross-epoch dependencies, so workers re-execute
//! disjoint epoch ranges coordination-free (paper §5.4), and the merged
//! log is identical regardless of worker count.

use flor_core::record::{record, RecordOptions};
use flor_core::replay::{replay, ReplayOptions};

const TRAIN: &str = "\
import flor
data = synth_data(n=96, dim=12, classes=4, spread=0.3, seed=11)
loader = dataloader(data, batch_size=24, seed=11)
net = mlp(input=12, hidden=24, classes=4, depth=2, seed=11)
optimizer = sgd(net, lr=0.1, momentum=0.9)
criterion = cross_entropy()
avg = meter()
for epoch in range(12):
    avg.reset()
    for batch in loader.epoch():
        waste = busy(4)
        optimizer.zero_grad()
        preds = net.forward(batch)
        loss = criterion.forward(preds, batch)
        grad = criterion.backward()
        net.backward(grad)
        optimizer.step()
        avg.update(loss)
    log(\"loss\", avg.mean())
acc = evaluate(net, data)
log(\"accuracy\", acc)
";

fn main() {
    let store = std::env::temp_dir().join(format!("flor-parallel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    let rec = record(TRAIN, &RecordOptions::new(&store)).expect("record");
    println!(
        "recorded 12 epochs in {:.2}s ({} checkpoints, {} KiB on disk)",
        rec.wall_ns as f64 / 1e9,
        rec.checkpoints,
        rec.stored_bytes / 1024
    );

    // The hindsight question lives inside the training loop, so replay must
    // re-execute it — in parallel.
    let probed = TRAIN.replace(
        "        optimizer.step()\n",
        "        optimizer.step()\n        log(\"g_norm\", net.grad_norm())\n",
    );

    let mut reference: Option<Vec<flor_core::LogEntry>> = None;
    for workers in [1usize, 2, 4] {
        let rep = replay(&probed, &store, &ReplayOptions::with_workers(workers)).expect("replay");
        let plans: Vec<String> = rep
            .worker_plans
            .iter()
            .flatten()
            .map(|p| format!("[{}, {})", p.work_start, p.work_end))
            .collect();
        println!(
            "\n{workers} worker(s): {:.2}s wall, partitions {}",
            rep.wall_ns as f64 / 1e9,
            plans.join(" ")
        );
        println!(
            "  blocks re-executed: {}, restored: {}, anomalies: {}",
            rep.stats.executed,
            rep.stats.restored,
            rep.anomalies.len()
        );
        assert!(rep.anomalies.is_empty());
        match &reference {
            None => reference = Some(rep.log),
            Some(reference) => {
                assert_eq!(
                    &rep.log, reference,
                    "merged log must be identical for any worker count"
                );
                println!("  merged log identical to sequential replay ✓");
            }
        }
    }

    let reference = reference.unwrap();
    let probes = reference.iter().filter(|e| e.key == "g_norm").count();
    println!(
        "\nhindsight log contains {probes} per-batch gradient norms (never logged at record time)"
    );
}
